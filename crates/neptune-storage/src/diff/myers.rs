//! Myers O(ND) shortest-edit-script diff over token sequences.
//!
//! The classic greedy algorithm from Myers, "An O(ND) Difference Algorithm
//! and Its Variations" (1986 — contemporaneous with the Neptune paper). We
//! keep the full trace to reconstruct the script, and bail out to a trivial
//! whole-replacement script if the edit distance grows past a budget, which
//! bounds memory to O(budget²) for pathological binary inputs.

/// One primitive diff operation over token indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOp {
    /// Token `a[i]` matches token `b[j]`.
    Equal {
        /// Index into the left sequence.
        a: usize,
        /// Index into the right sequence.
        b: usize,
    },
    /// Token `a[i]` is absent from `b`.
    Delete {
        /// Index into the left sequence.
        a: usize,
    },
    /// Token `b[j]` is absent from `a`.
    Insert {
        /// Index into the right sequence.
        b: usize,
    },
}

/// Edit-distance budget past which we fall back to delete-all/insert-all.
/// 8192 edits covers any plausible text node; beyond it the delta would be
/// nearly a full copy anyway.
const MAX_D: usize = 8192;

/// Diff two token sequences, returning ops in order.
///
/// The result is a minimal edit script when the edit distance is within the
/// internal budget, and a correct (whole-replacement) script otherwise.
pub fn diff_tokens(a: &[u32], b: &[u32]) -> Vec<DiffOp> {
    // Strip common prefix/suffix first: cheap and makes the common case
    // (small edit in a large node) fast regardless of node size.
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }

    let core_a = &a[prefix..a.len() - suffix];
    let core_b = &b[prefix..b.len() - suffix];

    let mut ops = Vec::with_capacity(a.len().max(b.len()));
    for i in 0..prefix {
        ops.push(DiffOp::Equal { a: i, b: i });
    }
    let core_ops = myers_core(core_a, core_b);
    for op in core_ops {
        ops.push(match op {
            DiffOp::Equal { a: i, b: j } => DiffOp::Equal {
                a: i + prefix,
                b: j + prefix,
            },
            DiffOp::Delete { a: i } => DiffOp::Delete { a: i + prefix },
            DiffOp::Insert { b: j } => DiffOp::Insert { b: j + prefix },
        });
    }
    for k in 0..suffix {
        ops.push(DiffOp::Equal {
            a: a.len() - suffix + k,
            b: b.len() - suffix + k,
        });
    }
    ops
}

fn trivial_script(n: usize, m: usize) -> Vec<DiffOp> {
    let mut ops = Vec::with_capacity(n + m);
    ops.extend((0..n).map(|i| DiffOp::Delete { a: i }));
    ops.extend((0..m).map(|j| DiffOp::Insert { b: j }));
    ops
}

fn myers_core(a: &[u32], b: &[u32]) -> Vec<DiffOp> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return trivial_script(n, m);
    }

    let max = (n + m).min(MAX_D);
    let offset = max as isize;
    // v[k + offset] = furthest x along diagonal k.
    let mut v = vec![0usize; 2 * max + 1];
    let mut trace: Vec<Vec<usize>> = Vec::new();

    let mut found_d = None;
    'outer: for d in 0..=max {
        trace.push(v.clone());
        let d_i = d as isize;
        let mut k = -d_i;
        while k <= d_i {
            let idx = (k + offset) as usize;
            let mut x = if k == -d_i || (k != d_i && v[idx - 1] < v[idx + 1]) {
                v[idx + 1] // move down (insert from b)
            } else {
                v[idx - 1] + 1 // move right (delete from a)
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                found_d = Some(d);
                break 'outer;
            }
            k += 2;
        }
    }

    let Some(d_final) = found_d else {
        // Edit distance exceeded the budget; emit a correct, non-minimal script.
        return trivial_script(n, m);
    };

    // Backtrack through the trace to recover the path.
    let mut ops_rev: Vec<DiffOp> = Vec::new();
    let mut x = n;
    let mut y = m;
    for d in (0..=d_final).rev() {
        let v = &trace[d];
        let d_i = d as isize;
        let k = x as isize - y as isize;
        let idx = (k + offset) as usize;
        let (prev_k, down) = if k == -d_i || (k != d_i && v[idx - 1] < v[idx + 1]) {
            (k + 1, true)
        } else {
            (k - 1, false)
        };
        let prev_x = if d == 0 {
            0
        } else {
            v[(prev_k + offset) as usize]
        };
        let prev_y = (prev_x as isize - prev_k) as usize;

        // Snake: trailing matches on this diagonal. At d == 0 the whole path
        // from (0,0) is one snake with no preceding edit.
        let snake_end_x = if d == 0 {
            0
        } else if down {
            prev_x
        } else {
            prev_x + 1
        };
        let snake_end_y = if d == 0 {
            0
        } else if down {
            prev_y + 1
        } else {
            prev_y
        };
        while x > snake_end_x && y > snake_end_y {
            x -= 1;
            y -= 1;
            ops_rev.push(DiffOp::Equal { a: x, b: y });
        }
        if d > 0 {
            if down {
                y -= 1;
                ops_rev.push(DiffOp::Insert { b: y });
            } else {
                x -= 1;
                ops_rev.push(DiffOp::Delete { a: x });
            }
            debug_assert_eq!(x, prev_x);
            debug_assert_eq!(y, prev_y);
        }
    }
    debug_assert_eq!(x, 0);
    debug_assert_eq!(y, 0);
    ops_rev.reverse();
    ops_rev
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apply a script to `a`, checking indices walk both inputs in order.
    fn apply(a: &[u32], b: &[u32], ops: &[DiffOp]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut ai = 0;
        let mut bi = 0;
        for op in ops {
            match *op {
                DiffOp::Equal { a: i, b: j } => {
                    assert_eq!(i, ai);
                    assert_eq!(j, bi);
                    assert_eq!(a[i], b[j]);
                    out.push(a[i]);
                    ai += 1;
                    bi += 1;
                }
                DiffOp::Delete { a: i } => {
                    assert_eq!(i, ai);
                    ai += 1;
                }
                DiffOp::Insert { b: j } => {
                    assert_eq!(j, bi);
                    out.push(b[j]);
                    bi += 1;
                }
            }
        }
        assert_eq!(ai, a.len());
        assert_eq!(bi, b.len());
        out
    }

    fn edit_count(ops: &[DiffOp]) -> usize {
        ops.iter()
            .filter(|o| !matches!(o, DiffOp::Equal { .. }))
            .count()
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA -> CBABAC, minimal edit distance 5.
        let a = [0u32, 1, 2, 0, 1, 1, 0];
        let b = [2u32, 1, 0, 1, 0, 2];
        let ops = diff_tokens(&a, &b);
        assert_eq!(apply(&a, &b, &ops), b.to_vec());
        assert_eq!(edit_count(&ops), 5);
    }

    #[test]
    fn equal_sequences() {
        let a = [1u32, 2, 3];
        let ops = diff_tokens(&a, &a);
        assert_eq!(edit_count(&ops), 0);
        assert_eq!(apply(&a, &a, &ops), a.to_vec());
    }

    #[test]
    fn empty_cases() {
        assert_eq!(diff_tokens(&[], &[]), vec![]);
        let ops = diff_tokens(&[], &[1, 2]);
        assert_eq!(edit_count(&ops), 2);
        let ops = diff_tokens(&[1, 2], &[]);
        assert_eq!(edit_count(&ops), 2);
    }

    #[test]
    fn single_substitution_costs_two() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [1u32, 2, 9, 4, 5];
        let ops = diff_tokens(&a, &b);
        assert_eq!(apply(&a, &b, &ops), b.to_vec());
        assert_eq!(edit_count(&ops), 2);
    }

    #[test]
    fn disjoint_sequences() {
        let a = [1u32, 2, 3];
        let b = [4u32, 5];
        let ops = diff_tokens(&a, &b);
        assert_eq!(apply(&a, &b, &ops), b.to_vec());
        assert_eq!(edit_count(&ops), 5);
    }

    #[test]
    fn long_common_prefix_and_suffix() {
        let mut a: Vec<u32> = (0..1000).collect();
        let mut b = a.clone();
        b[500] = 9999;
        a.push(42);
        b.push(42);
        let ops = diff_tokens(&a, &b);
        assert_eq!(apply(&a, &b, &ops), b);
        assert_eq!(edit_count(&ops), 2);
    }

    #[test]
    fn randomized_scripts_always_apply() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = (next() % 40) as usize;
            let m = (next() % 40) as usize;
            let a: Vec<u32> = (0..n).map(|_| (next() % 6) as u32).collect();
            let b: Vec<u32> = (0..m).map(|_| (next() % 6) as u32).collect();
            let ops = diff_tokens(&a, &b);
            assert_eq!(apply(&a, &b, &ops), b);
        }
    }
}
