//! Line splitting and interning for the diff engine.

use std::collections::HashMap;

/// Split `data` into lines, each retaining its trailing `\n` (the final line
/// may lack one). Concatenating the slices yields `data` exactly.
pub fn split_lines(data: &[u8]) -> Vec<&[u8]> {
    let mut lines = Vec::new();
    let mut start = 0;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            lines.push(&data[start..=i]);
            start = i + 1;
        }
    }
    if start < data.len() {
        lines.push(&data[start..]);
    }
    lines
}

/// Interns line contents so the diff core compares small integer tokens
/// instead of byte slices. Identical lines — wherever they occur in either
/// input — receive the same token.
#[derive(Debug, Default)]
pub struct Interner {
    table: HashMap<Vec<u8>, u32>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern every line of `data`, returning one token per line.
    pub fn intern_lines(&mut self, data: &[u8]) -> Vec<u32> {
        split_lines(data)
            .into_iter()
            .map(|line| {
                let next = self.table.len() as u32;
                *self.table.entry(line.to_vec()).or_insert(next)
            })
            .collect()
    }

    /// Number of distinct lines seen so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no lines have been interned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_bytes() {
        for data in [
            &b"a\nb\nc\n"[..],
            b"no newline",
            b"",
            b"\n",
            b"\n\n",
            b"trailing\npartial",
            b"\x00\x01\n\xFF",
        ] {
            let joined: Vec<u8> = split_lines(data).concat();
            assert_eq!(joined, data);
        }
    }

    #[test]
    fn split_counts() {
        assert_eq!(split_lines(b"").len(), 0);
        assert_eq!(split_lines(b"x").len(), 1);
        assert_eq!(split_lines(b"x\n").len(), 1);
        assert_eq!(split_lines(b"x\ny").len(), 2);
        assert_eq!(split_lines(b"\n\n\n").len(), 3);
    }

    #[test]
    fn interning_is_stable_across_inputs() {
        let mut i = Interner::new();
        let a = i.intern_lines(b"same\ndiff_a\n");
        let b = i.intern_lines(b"same\ndiff_b\n");
        assert_eq!(a[0], b[0], "identical lines share a token");
        assert_ne!(a[1], b[1]);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn line_with_and_without_newline_differ() {
        let mut i = Interner::new();
        let a = i.intern_lines(b"x\n");
        let b = i.intern_lines(b"x");
        assert_ne!(a[0], b[0]);
    }
}
