//! Backward-delta version archives.
//!
//! Paper §A.2: *"Each node is either an archive or a file. Complete version
//! histories are maintained for archives; only the current version is
//! available for files."* An [`Archive`] keeps the **current** contents in
//! full and, for every older version, a backward [`Delta`] that rebuilds it
//! from the next-newer version — exactly RCS's reverse-delta scheme \[Tic82\],
//! which the paper cites. Check-out of the head is O(size); check-out of a
//! version `k` steps back applies `k` deltas.
//!
//! To keep deep-history reads cheap, an archive lazily remembers
//! **keyframes**: full materializations of every [`KEYFRAME_INTERVAL`]-th
//! version, captured as a side effect of replay. A warm [`Archive::checkout`]
//! therefore applies at most `KEYFRAME_INTERVAL - 1` deltas no matter how
//! long the chain is. Keyframes are derived, in-memory state only: they are
//! excluded from the wire format, from equality, and are rebuilt on demand
//! after a reload. [`Archive::checkout_uncached`] performs the original full
//! replay for benchmarks and cross-checking.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::delta::Delta;
use crate::error::{Result, StorageError};

/// Every this-many versions along the backward chain, replay retains a full
/// materialization so later checkouts start from a nearby keyframe instead
/// of the head.
pub const KEYFRAME_INTERVAL: usize = 16;

/// Record how many backward deltas one checkout had to apply into the
/// `neptune_storage_delta_replay_depth` histogram — the first-class signal
/// for whether keyframes/caching are doing their job.
fn observe_replay_depth(depth: usize) {
    static HIST: std::sync::OnceLock<Arc<neptune_obs::Histogram>> = std::sync::OnceLock::new();
    if neptune_obs::enabled() {
        HIST.get_or_init(|| {
            neptune_obs::registry().histogram("neptune_storage_delta_replay_depth")
        })
        .observe(depth as u64);
    }
}

/// One historical version's metadata plus the backward delta to reach it
/// from its successor.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BackEntry {
    /// Logical time at which this version was checked in.
    time: u64,
    /// Rebuilds this version's contents from the next-newer version.
    back_delta: Delta,
}

/// A versioned byte container storing the head in full and older versions as
/// backward deltas.
#[derive(Debug)]
pub struct Archive {
    /// Current contents, stored whole and shared: readers get a refcount
    /// bump, never a copy. Immutable once published — check-in replaces the
    /// `Arc`, it never mutates through it.
    head: Arc<[u8]>,
    /// Check-in time of the head.
    head_time: u64,
    /// Older versions, most recent last; `entries[i].back_delta` applied to
    /// version `i+1` (or to the head for the last entry) yields version `i`.
    entries: Vec<BackEntry>,
    /// Lazily captured full materializations: entry index → contents of that
    /// version. Derived state — see the module docs. Interior mutability lets
    /// `checkout(&self)` warm it; the mutex keeps `Archive: Sync` so whole
    /// graphs can sit behind the server's reader lock.
    keyframes: Mutex<HashMap<usize, Arc<[u8]>>>,
}

impl Clone for Archive {
    fn clone(&self) -> Self {
        // Keyframes are Arc'd, so cloning the map is cheap and keeps
        // context forks warm.
        let frames = self.lock_keyframes().clone();
        Archive {
            head: self.head.clone(),
            head_time: self.head_time,
            entries: self.entries.clone(),
            keyframes: Mutex::new(frames),
        }
    }
}

impl PartialEq for Archive {
    fn eq(&self, other: &Self) -> bool {
        // Canonical state only: keyframes are derived and never observable.
        self.head == other.head
            && self.head_time == other.head_time
            && self.entries == other.entries
    }
}

impl Eq for Archive {}

impl Archive {
    /// Create an archive whose first version is `contents` at `time`.
    ///
    /// ```
    /// use neptune_storage::Archive;
    /// let mut a = Archive::new(b"v1".to_vec(), 1);
    /// a.checkin(b"v2".to_vec(), 2).unwrap();
    /// assert_eq!(&a.checkout(1).unwrap()[..], b"v1");
    /// assert_eq!(&a.checkout(0).unwrap()[..], b"v2"); // 0 = current
    /// ```
    pub fn new(contents: impl Into<Arc<[u8]>>, time: u64) -> Self {
        Archive {
            head: contents.into(),
            head_time: time,
            entries: Vec::new(),
            keyframes: Mutex::new(HashMap::new()),
        }
    }

    fn lock_keyframes(&self) -> MutexGuard<'_, HashMap<usize, Arc<[u8]>>> {
        // A panic while holding the lock leaves only derived state behind;
        // recover it rather than poisoning every future checkout.
        self.keyframes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Check in a new current version at `time`.
    ///
    /// `time` must exceed the head's time: version history is append-only and
    /// totally ordered, as the HAM's version clock guarantees.
    pub fn checkin(&mut self, contents: impl Into<Arc<[u8]>>, time: u64) -> Result<()> {
        if time <= self.head_time {
            return Err(StorageError::NoSuchVersion { time });
        }
        let contents = contents.into();
        let back_delta = Delta::compute(&contents, &self.head);
        let old_head = std::mem::replace(&mut self.head, contents);
        debug_assert_eq!(back_delta.target_len() as usize, old_head.len());
        self.entries.push(BackEntry {
            time: self.head_time,
            back_delta,
        });
        self.head_time = time;
        Ok(())
    }

    /// Contents of the current version.
    pub fn head(&self) -> &[u8] {
        &self.head
    }

    /// Shared handle to the current version's contents — a refcount bump,
    /// never a copy.
    pub fn head_shared(&self) -> Arc<[u8]> {
        self.head.clone()
    }

    /// Check-in time of the current version.
    pub fn head_time(&self) -> u64 {
        self.head_time
    }

    /// Number of stored versions (history plus head).
    pub fn version_count(&self) -> usize {
        self.entries.len() + 1
    }

    /// Times of every version, oldest first.
    pub fn version_times(&self) -> Vec<u64> {
        let mut times: Vec<u64> = self.entries.iter().map(|e| e.time).collect();
        times.push(self.head_time);
        times
    }

    /// The version time in effect *at* logical time `t`: the newest version
    /// whose check-in time is ≤ `t`. Time `0` means "current" throughout the
    /// HAM (paper §A.2).
    pub fn resolve_time(&self, t: u64) -> Result<u64> {
        if t == 0 || t >= self.head_time {
            return Ok(self.head_time);
        }
        let times = self.version_times();
        match times.binary_search(&t) {
            Ok(_) => Ok(t),
            Err(0) => Err(StorageError::NoSuchVersion { time: t }),
            Err(pos) => Ok(times[pos - 1]),
        }
    }

    /// Contents as of logical time `t` (`0` = current).
    ///
    /// Starts from the nearest keyframe at or above the target version (the
    /// head if none is warm yet) and applies the delta suffix down to it,
    /// capturing new keyframes along the way. Cold cost is proportional to
    /// how far back `t` lies; warm cost is at most [`KEYFRAME_INTERVAL`]
    /// delta applications.
    pub fn checkout(&self, t: u64) -> Result<Arc<[u8]>> {
        let resolved = self.resolve_time(t)?;
        if resolved == self.head_time {
            return Ok(self.head.clone());
        }
        let idx = self
            .entries
            .binary_search_by_key(&resolved, |e| e.time)
            .map_err(|_| StorageError::NoSuchVersion { time: t })?;
        let (mut current, from) = {
            let frames = self.lock_keyframes();
            if let Some(data) = frames.get(&idx) {
                observe_replay_depth(0);
                return Ok(data.clone());
            }
            // Nearest warm keyframe newer than the target, else the head.
            match frames
                .iter()
                .filter(|(&k, _)| k > idx && k <= self.entries.len())
                .min_by_key(|(&k, _)| k)
            {
                Some((&k, data)) => (data.to_vec(), k),
                None => (self.head.to_vec(), self.entries.len()),
            }
        };
        observe_replay_depth(from - idx);
        for m in (idx..from).rev() {
            current = self.entries[m].back_delta.apply(&current)?;
            if m % KEYFRAME_INTERVAL == 0 {
                self.lock_keyframes().insert(m, Arc::from(&current[..]));
            }
        }
        Ok(current.into())
    }

    /// Contents as of logical time `t`, always replaying the full backward
    /// chain from the head and never touching keyframes. This is the
    /// reference implementation [`Archive::checkout`] must agree with, and
    /// what "cache disabled" means in the read-scaling benchmarks.
    pub fn checkout_uncached(&self, t: u64) -> Result<Arc<[u8]>> {
        let resolved = self.resolve_time(t)?;
        if resolved == self.head_time {
            return Ok(self.head.clone());
        }
        let idx = self
            .entries
            .binary_search_by_key(&resolved, |e| e.time)
            .map_err(|_| StorageError::NoSuchVersion { time: t })?;
        observe_replay_depth(self.entries.len() - idx);
        let mut current = self.head.to_vec();
        for entry in self.entries[idx..].iter().rev() {
            current = entry.back_delta.apply(&current)?;
        }
        Ok(current.into())
    }

    /// Discard every version checked in after logical time `t`, restoring
    /// the newest remaining version as the head. Supports transaction
    /// rollback, where aborting truncates all versioned state back to the
    /// transaction's start time. Errors if no version at or before `t`
    /// exists (the archive itself should be deleted in that case).
    pub fn truncate_after(&mut self, t: u64) -> Result<()> {
        if self.head_time <= t {
            return Ok(());
        }
        let resolved = self.resolve_time(t)?; // newest surviving version
        let new_head = self.checkout(resolved)?;
        let idx = self
            .entries
            .binary_search_by_key(&resolved, |e| e.time)
            .map_err(|_| StorageError::NoSuchVersion { time: t })?;
        self.entries.truncate(idx);
        self.head = new_head;
        self.head_time = resolved;
        // Keyframes at or past the cut refer to discarded versions; a later
        // checkin would reuse those entry indices with different contents.
        self.lock_keyframes().retain(|&k, _| k < idx);
        Ok(())
    }

    /// Walk the entire backward-delta chain verifying structural integrity:
    /// version times must be strictly increasing, every delta must apply
    /// cleanly to its successor's contents, and the bytes each delta
    /// produces must have the length the delta itself claims. `checkout`
    /// does none of these length checks, so a corrupted `target_len` is
    /// silent without this. Returns a description of the first problem.
    pub fn verify_chain(&self) -> std::result::Result<(), String> {
        let times = self.version_times();
        if let Some(w) = times.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!(
                "version times out of order: {} then {}",
                w[0], w[1]
            ));
        }
        let mut current = self.head.to_vec();
        for entry in self.entries.iter().rev() {
            let rebuilt = entry.back_delta.apply(&current).map_err(|e| {
                format!(
                    "delta for version at time {} fails to apply: {e}",
                    entry.time
                )
            })?;
            if rebuilt.len() as u64 != entry.back_delta.target_len() {
                return Err(format!(
                    "delta for version at time {} produced {} bytes but claims {}",
                    entry.time,
                    rebuilt.len(),
                    entry.back_delta.target_len()
                ));
            }
            current = rebuilt;
        }
        Ok(())
    }

    /// Total bytes of stored state: head plus all encoded deltas. This is
    /// the quantity the paper's backward-delta design minimizes relative to
    /// keeping every version in full.
    pub fn storage_bytes(&self) -> u64 {
        self.head.len() as u64
            + self
                .entries
                .iter()
                .map(|e| e.back_delta.storage_size())
                .sum::<u64>()
    }

    /// Sum of the lengths of every version in full — what naive full-copy
    /// storage would cost. Used by the E1 storage-efficiency experiment.
    pub fn full_copy_bytes(&self) -> Result<u64> {
        let mut total = self.head.len() as u64;
        let mut current = self.head.to_vec();
        for entry in self.entries.iter().rev() {
            current = entry.back_delta.apply(&current)?;
            total += current.len() as u64;
        }
        Ok(total)
    }
}

impl Encode for Archive {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.head);
        w.put_u64(self.head_time);
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            w.put_u64(e.time);
            e.back_delta.encode(w);
        }
    }
}

impl Decode for Archive {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let head: Arc<[u8]> = r.get_bytes()?.into();
        let head_time = r.get_u64()?;
        let count = r.get_u64()? as usize;
        let mut entries = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            let time = r.get_u64()?;
            let back_delta = Delta::decode(r)?;
            entries.push(BackEntry { time, back_delta });
        }
        Ok(Archive {
            head,
            head_time,
            entries,
            keyframes: Mutex::new(HashMap::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn version(i: usize) -> Vec<u8> {
        (0..100)
            .map(|line| {
                if line == i % 100 {
                    format!("line {line} edited at version {i}\n")
                } else {
                    format!("line {line}\n")
                }
            })
            .collect::<String>()
            .into_bytes()
    }

    fn build(n: usize) -> Archive {
        let mut a = Archive::new(version(0), 1);
        for i in 1..n {
            a.checkin(version(i), (i + 1) as u64).unwrap();
        }
        a
    }

    #[test]
    fn every_version_is_recoverable() {
        let a = build(25);
        assert_eq!(a.version_count(), 25);
        for i in 0..25 {
            assert_eq!(
                &a.checkout((i + 1) as u64).unwrap()[..],
                version(i),
                "version {i}"
            );
        }
    }

    #[test]
    fn time_zero_means_current() {
        let a = build(5);
        assert_eq!(&a.checkout(0).unwrap()[..], version(4));
        assert_eq!(a.resolve_time(0).unwrap(), 5);
    }

    #[test]
    fn times_between_versions_resolve_downward() {
        // Versions at times 1 and 10; time 5 sees version-at-1.
        let mut a = Archive::new(b"v1".to_vec(), 1);
        a.checkin(b"v2".to_vec(), 10).unwrap();
        assert_eq!(&a.checkout(5).unwrap()[..], b"v1");
        assert_eq!(&a.checkout(10).unwrap()[..], b"v2");
        assert_eq!(&a.checkout(99).unwrap()[..], b"v2");
        assert_eq!(a.resolve_time(5).unwrap(), 1);
    }

    #[test]
    fn time_before_creation_is_an_error() {
        let mut a = Archive::new(b"v1".to_vec(), 5);
        a.checkin(b"v2".to_vec(), 10).unwrap();
        assert!(matches!(
            a.checkout(3),
            Err(StorageError::NoSuchVersion { time: 3 })
        ));
    }

    #[test]
    fn checkin_requires_monotonic_time() {
        let mut a = Archive::new(b"v1".to_vec(), 5);
        assert!(a.checkin(b"v2".to_vec(), 5).is_err());
        assert!(a.checkin(b"v2".to_vec(), 4).is_err());
        assert!(a.checkin(b"v2".to_vec(), 6).is_ok());
    }

    #[test]
    fn storage_is_much_smaller_than_full_copies() {
        let a = build(100);
        let delta_bytes = a.storage_bytes();
        let full_bytes = a.full_copy_bytes().unwrap();
        assert!(
            delta_bytes * 4 < full_bytes,
            "deltas {delta_bytes} should be far below full copies {full_bytes}"
        );
    }

    #[test]
    fn version_times_sorted() {
        let a = build(10);
        let times = a.version_times();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(times.len(), 10);
    }

    #[test]
    fn codec_roundtrip_preserves_history() {
        let a = build(12);
        let decoded = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(decoded, a);
        for i in 0..12 {
            assert_eq!(&decoded.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
    }

    #[test]
    fn truncate_after_restores_older_head() {
        let mut a = build(10);
        a.truncate_after(4).unwrap();
        assert_eq!(a.version_count(), 4);
        assert_eq!(a.head(), version(3).as_slice());
        assert_eq!(a.head_time(), 4);
        for i in 0..4 {
            assert_eq!(&a.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        // Truncating at or past the head is a no-op.
        a.truncate_after(4).unwrap();
        assert_eq!(a.version_count(), 4);
        a.truncate_after(99).unwrap();
        assert_eq!(a.version_count(), 4);
        // Truncating before the first version is an error.
        assert!(a.truncate_after(0).is_err());
    }

    #[test]
    fn truncate_then_checkin_continues_history() {
        let mut a = build(5);
        a.truncate_after(2).unwrap();
        a.checkin(b"new branch tip".to_vec(), 9).unwrap();
        assert_eq!(&a.checkout(0).unwrap()[..], b"new branch tip");
        assert_eq!(&a.checkout(1).unwrap()[..], version(0));
        assert_eq!(&a.checkout(2).unwrap()[..], version(1));
        assert_eq!(
            &a.checkout(5).unwrap()[..],
            version(1),
            "times 3..8 resolve to v2"
        );
    }

    #[test]
    fn keyframes_accelerate_without_changing_results() {
        let a = build(100);
        // Cold pass populates keyframes; warm pass must reread identically.
        for i in (0..100).rev() {
            assert_eq!(&a.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        assert!(
            !a.lock_keyframes().is_empty(),
            "deep replay should have captured keyframes"
        );
        for i in 0..100 {
            let t = (i + 1) as u64;
            assert_eq!(a.checkout(t).unwrap(), a.checkout_uncached(t).unwrap());
        }
    }

    #[test]
    fn keyframes_are_dropped_by_truncate() {
        let mut a = build(64);
        a.checkout(1).unwrap(); // warm keyframes along the whole chain
        a.truncate_after(40).unwrap();
        assert!(a.lock_keyframes().keys().all(|&k| k < 39));
        // Regrow the history past the cut; the reused entry indices must not
        // resurrect pre-truncation contents.
        for i in 40..64 {
            a.checkin(version(i), (i + 10) as u64).unwrap();
        }
        for i in 0..40 {
            assert_eq!(&a.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        for i in 40..64 {
            assert_eq!(&a.checkout((i + 10) as u64).unwrap()[..], version(i));
        }
    }

    #[test]
    fn clones_and_codec_ignore_keyframes() {
        let a = build(40);
        a.checkout(1).unwrap();
        let b = a.clone();
        assert_eq!(a, b, "equality must ignore derived keyframes");
        let decoded = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(decoded, a);
        assert!(
            decoded.lock_keyframes().is_empty(),
            "keyframes must not travel through the wire format"
        );
    }

    #[test]
    fn property_cached_checkout_matches_uncached_replay() {
        use crate::testutil::XorShift;
        for seed in 1..=8u64 {
            let mut rng = XorShift::new(seed);
            let initial_len = 64 + rng.index(256);
            let mut contents = rng.bytes(initial_len);
            let mut a = Archive::new(contents.clone(), 1);
            let mut clock = 1u64;
            let mut live: Vec<u64> = vec![1];
            for _ in 0..rng.index(60) + 20 {
                if rng.chance(1, 10) && live.len() > 1 {
                    // Rewind to a random surviving version, like an abort.
                    let cut = live[rng.index(live.len())];
                    a.truncate_after(cut).unwrap();
                    live.retain(|&t| t <= cut);
                    contents = a.head().to_vec();
                    clock = cut;
                } else {
                    // Random splice edit, then check in.
                    let at = rng.index(contents.len().max(1));
                    let del = rng.index(contents.len() - at + 1);
                    let ins_len = rng.index(64);
                    let ins = rng.bytes(ins_len);
                    contents.splice(at..at + del, ins);
                    clock += 1 + rng.below(3);
                    a.checkin(contents.clone(), clock).unwrap();
                    live.push(clock);
                }
                // Probe a few random historical times each step.
                for _ in 0..3 {
                    let t = live[rng.index(live.len())];
                    assert_eq!(
                        a.checkout(t).unwrap(),
                        a.checkout_uncached(t).unwrap(),
                        "seed {seed} time {t}"
                    );
                }
            }
            a.verify_chain().unwrap();
        }
    }

    #[test]
    fn empty_contents_are_fine() {
        let mut a = Archive::new(Vec::new(), 1);
        a.checkin(b"now nonempty\n".to_vec(), 2).unwrap();
        a.checkin(Vec::new(), 3).unwrap();
        assert_eq!(&a.checkout(1).unwrap()[..], b"");
        assert_eq!(&a.checkout(2).unwrap()[..], b"now nonempty\n");
        assert_eq!(&a.checkout(3).unwrap()[..], b"");
    }
}
