//! Backward-delta version archives with a hierarchical temporal index.
//!
//! Paper §A.2: *"Each node is either an archive or a file. Complete version
//! histories are maintained for archives; only the current version is
//! available for files."* An [`Archive`] keeps the **current** contents in
//! full and, for every older version, a backward [`Delta`] that rebuilds it
//! from the next-newer version — exactly RCS's reverse-delta scheme \[Tic82\],
//! which the paper cites. Check-out of the head is O(size); naive check-out
//! of a version `k` steps back applies `k` deltas.
//!
//! To make *any* historical checkout cheap — not just ones near a warm
//! cache — the archive maintains a **skip-delta ladder** in the DeltaGraph
//! style (Khurana & Deshpande, "Efficient Snapshot Retrieval over Historical
//! Graph Data"): at level `ℓ ∈ 1..=4`, every [`SKIP_SPANS`]`[ℓ-1]`-th version
//! stores one extra backward delta that rebuilds it directly from the
//! version a whole span newer. Checkout descends greedily — coarsest ladder
//! rung first, unit deltas for the remainder — so reaching any of `n`
//! versions applies O(log n) deltas instead of O(distance-to-head). The
//! ladder is *persistent* derived data: it rides the v2 archive encoding
//! ([`Archive::encode_with_index`]) so a fresh process gets sublinear cold
//! checkout, yet it is excluded from equality and validated defensively —
//! every skip application is checksummed, and a corrupt or stale skip is
//! dropped on the spot with replay falling back to finer steps.
//!
//! Alongside the ladder, a byte-bounded **anchor cache** (the successor of
//! the old unbounded keyframe map) retains full materializations captured
//! at every [`KEYFRAME_INTERVAL`]-th version during replay, with LRU
//! eviction under [`DEFAULT_ANCHOR_BUDGET`]. Anchors are in-memory only.
//! [`Archive::checkout_uncached`] performs the original full replay for
//! benchmarks and cross-checking; [`Archive::verify_index`] audits every
//! persisted skip against the canonical delta chain.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::checksum::crc32;
use crate::codec::{Decode, Encode, Reader, Writer};
use crate::delta::Delta;
use crate::error::{Result, StorageError};

/// Every this-many versions along the backward chain, replay retains a full
/// materialization in the anchor cache so later checkouts start nearby.
/// Also the grain of the finest skip-ladder level.
pub const KEYFRAME_INTERVAL: usize = 16;

/// Number of skip-ladder levels.
pub const SKIP_LEVELS: usize = 4;

/// Version span covered by one skip delta at each level: level `ℓ` (1-based)
/// spans `16^ℓ` versions, so four levels cover histories past 10^6 versions
/// with ≤ 15 applications per level — O(log n) total.
pub const SKIP_SPANS: [usize; SKIP_LEVELS] = [16, 256, 4096, 65536];

/// Default per-archive byte budget for the anchor cache.
pub const DEFAULT_ANCHOR_BUDGET: usize = 256 * 1024;

/// Record how many backward deltas (unit or skip) one checkout had to apply
/// into the `neptune_storage_delta_replay_depth` histogram — the first-class
/// signal for whether the ladder and anchors are doing their job.
fn observe_replay_depth(depth: usize) {
    static HIST: std::sync::OnceLock<Arc<neptune_obs::Histogram>> = std::sync::OnceLock::new();
    if neptune_obs::enabled() {
        HIST.get_or_init(|| {
            neptune_obs::registry().histogram("neptune_storage_delta_replay_depth")
        })
        .observe(depth as u64);
    }
}

/// Record one materialization's use of the temporal index: whether it was
/// served by an anchor or skip at all, and the coarsest ladder level used.
fn observe_index_usage(hit: bool, max_level: usize) {
    static HITS: std::sync::OnceLock<Arc<neptune_obs::Counter>> = std::sync::OnceLock::new();
    static LEVELS: std::sync::OnceLock<Arc<neptune_obs::Histogram>> = std::sync::OnceLock::new();
    if !neptune_obs::enabled() {
        return;
    }
    if hit {
        HITS.get_or_init(|| neptune_obs::registry().counter("neptune_storage_index_hits_total"))
            .inc();
    }
    LEVELS
        .get_or_init(|| neptune_obs::registry().histogram("neptune_storage_index_levels_depth"))
        .observe(max_level as u64);
}

/// Process-wide occupancy of every live anchor cache, in bytes. Kept
/// balanced across insert/evict/clone/drop rather than gated on the obs
/// kill-switch, so the gauge never drifts when tracing is toggled mid-run.
fn anchor_bytes_gauge() -> &'static Arc<neptune_obs::Gauge> {
    static GAUGE: std::sync::OnceLock<Arc<neptune_obs::Gauge>> = std::sync::OnceLock::new();
    GAUGE.get_or_init(|| neptune_obs::registry().gauge("neptune_storage_index_anchor_bytes"))
}

/// One historical version's metadata plus the backward delta to reach it
/// from its successor.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BackEntry {
    /// Logical time at which this version was checked in.
    time: u64,
    /// Rebuilds this version's contents from the next-newer version.
    back_delta: Delta,
}

/// Per-level lazy-backfill buffer: the newest (position, bytes) pair a
/// descent materialized on each level's span grid.
type PendingBoundaries = [Option<(usize, Arc<[u8]>)>; SKIP_LEVELS];

/// One rung of the skip ladder: applied to the contents of version index
/// `start + span(level)`, `delta` rebuilds version index `start` directly.
/// `crc` is the checksum of the target bytes, verified on every application
/// so a corrupt skip can never change what a checkout returns.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SkipDelta {
    start: usize,
    crc: u32,
    delta: Delta,
}

/// Byte-bounded LRU cache of full materializations keyed by entry index.
#[derive(Debug)]
struct AnchorCache {
    frames: HashMap<usize, (Arc<[u8]>, u64)>,
    tick: u64,
    held: usize,
    budget: usize,
}

impl AnchorCache {
    fn new(budget: usize) -> Self {
        AnchorCache {
            frames: HashMap::new(),
            tick: 0,
            held: 0,
            budget,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, idx: usize) -> Option<Arc<[u8]>> {
        let tick = self.next_tick();
        self.frames.get_mut(&idx).map(|(bytes, used)| {
            *used = tick;
            bytes.clone()
        })
    }

    /// Nearest anchor strictly newer than `idx` and no newer than `max`,
    /// touched for LRU purposes.
    fn nearest_above(&mut self, idx: usize, max: usize) -> Option<(usize, Arc<[u8]>)> {
        let key = self
            .frames
            .keys()
            .copied()
            .filter(|&k| k > idx && k <= max)
            .min()?;
        self.get(key).map(|bytes| (key, bytes))
    }

    fn insert(&mut self, idx: usize, bytes: Arc<[u8]>) {
        if bytes.len() > self.budget {
            return; // would evict everything and still bust the budget
        }
        let tick = self.next_tick();
        if let Some((old, _)) = self.frames.insert(idx, (bytes.clone(), tick)) {
            self.held -= old.len();
            anchor_bytes_gauge().add(-(old.len() as i64));
        }
        self.held += bytes.len();
        anchor_bytes_gauge().add(bytes.len() as i64);
        if self.held > self.budget {
            // Evict past the budget down to a low-water mark: the O(n log n)
            // age sort is then paid once per budget/8 bytes of churn rather
            // than once per insert, which matters when a deep checkout
            // inserts dozens of boundary anchors back to back. The
            // just-inserted entry has the newest tick, so it goes last.
            self.evict_to(self.budget - self.budget / 8);
        }
    }

    /// Evict least-recently-used frames until at most `target` bytes are
    /// held.
    fn evict_to(&mut self, target: usize) {
        if self.held <= target {
            return;
        }
        let mut by_age: Vec<(u64, usize)> = self
            .frames
            .iter()
            .map(|(&idx, &(_, used))| (used, idx))
            .collect();
        by_age.sort_unstable();
        for (_, idx) in by_age {
            if self.held <= target {
                break;
            }
            self.remove(idx);
        }
    }

    fn remove(&mut self, idx: usize) {
        if let Some((old, _)) = self.frames.remove(&idx) {
            self.held -= old.len();
            anchor_bytes_gauge().add(-(old.len() as i64));
        }
    }

    fn retain_below(&mut self, cut: usize) {
        let dropped: Vec<usize> = self.frames.keys().copied().filter(|&k| k >= cut).collect();
        for k in dropped {
            self.remove(k);
        }
    }

    fn clear(&mut self) {
        anchor_bytes_gauge().add(-(self.held as i64));
        self.frames.clear();
        self.held = 0;
    }

    fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
        self.evict_to(budget);
    }
}

impl Clone for AnchorCache {
    fn clone(&self) -> Self {
        // Frames are Arc'd so cloning is refcount bumps; the gauge counts
        // bytes held per cache instance, so a clone adds its share.
        anchor_bytes_gauge().add(self.held as i64);
        AnchorCache {
            frames: self.frames.clone(),
            tick: self.tick,
            held: self.held,
            budget: self.budget,
        }
    }
}

impl Drop for AnchorCache {
    fn drop(&mut self) {
        anchor_bytes_gauge().add(-(self.held as i64));
    }
}

/// The derived temporal index of one archive: the persistent skip ladder
/// plus the in-memory anchor cache. Everything here can be rebuilt from the
/// canonical chain; nothing here may change what a checkout returns.
#[derive(Debug, Clone)]
struct ArchiveIndex {
    /// Skip deltas per level, each sorted by `start`.
    levels: [Vec<SkipDelta>; SKIP_LEVELS],
    anchors: AnchorCache,
}

impl ArchiveIndex {
    fn new(budget: usize) -> Self {
        ArchiveIndex {
            levels: Default::default(),
            anchors: AnchorCache::new(budget),
        }
    }

    fn find_skip(&self, level: usize, start: usize) -> Option<&SkipDelta> {
        let skips = &self.levels[level];
        skips
            .binary_search_by_key(&start, |s| s.start)
            .ok()
            .map(|i| &skips[i])
    }

    fn insert_skip(&mut self, level: usize, skip: SkipDelta) {
        let skips = &mut self.levels[level];
        if let Err(pos) = skips.binary_search_by_key(&skip.start, |s| s.start) {
            skips.insert(pos, skip);
        }
    }

    fn remove_skip(&mut self, level: usize, start: usize) {
        let skips = &mut self.levels[level];
        if let Ok(pos) = skips.binary_search_by_key(&start, |s| s.start) {
            skips.remove(pos);
        }
    }

    fn skip_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Drop skips whose source version no longer exists after the history
    /// was truncated to `len` entries. Surviving skips reference only
    /// versions `0..=len`, which truncation never rewrites.
    fn retain_skips_for_len(&mut self, len: usize) {
        for (level, skips) in self.levels.iter_mut().enumerate() {
            let span = SKIP_SPANS[level];
            skips.retain(|s| s.start + span <= len);
        }
    }
}

/// A versioned byte container storing the head in full and older versions as
/// backward deltas.
#[derive(Debug)]
pub struct Archive {
    /// Current contents, stored whole and shared: readers get a refcount
    /// bump, never a copy. Immutable once published — check-in replaces the
    /// `Arc`, it never mutates through it.
    head: Arc<[u8]>,
    /// Check-in time of the head.
    head_time: u64,
    /// Older versions, most recent last; `entries[i].back_delta` applied to
    /// version `i+1` (or to the head for the last entry) yields version `i`.
    entries: Vec<BackEntry>,
    /// Skip ladder plus anchor cache. Derived state — see the module docs.
    /// Interior mutability lets `checkout(&self)` warm anchors and backfill
    /// skips; the mutex keeps `Archive: Sync` so whole graphs can sit
    /// behind the server's reader lock.
    index: Mutex<ArchiveIndex>,
}

impl Clone for Archive {
    fn clone(&self) -> Self {
        // Skips and anchors are Arc'd/owned-small, so cloning the index
        // keeps context forks warm.
        let index = self.lock_index().clone();
        Archive {
            head: self.head.clone(),
            head_time: self.head_time,
            entries: self.entries.clone(),
            index: Mutex::new(index),
        }
    }
}

impl PartialEq for Archive {
    fn eq(&self, other: &Self) -> bool {
        // Canonical state only: the index is derived and never observable.
        self.head == other.head
            && self.head_time == other.head_time
            && self.entries == other.entries
    }
}

impl Eq for Archive {}

impl Archive {
    /// Create an archive whose first version is `contents` at `time`.
    ///
    /// ```
    /// use neptune_storage::Archive;
    /// let mut a = Archive::new(b"v1".to_vec(), 1);
    /// a.checkin(b"v2".to_vec(), 2).unwrap();
    /// assert_eq!(&a.checkout(1).unwrap()[..], b"v1");
    /// assert_eq!(&a.checkout(0).unwrap()[..], b"v2"); // 0 = current
    /// ```
    pub fn new(contents: impl Into<Arc<[u8]>>, time: u64) -> Self {
        Archive {
            head: contents.into(),
            head_time: time,
            entries: Vec::new(),
            index: Mutex::new(ArchiveIndex::new(DEFAULT_ANCHOR_BUDGET)),
        }
    }

    fn lock_index(&self) -> MutexGuard<'_, ArchiveIndex> {
        // A panic while holding the lock leaves only derived state behind;
        // recover it rather than poisoning every future checkout.
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Check in a new current version at `time`.
    ///
    /// `time` must exceed the head's time: version history is append-only and
    /// totally ordered, as the HAM's version clock guarantees. Whenever the
    /// entry count crosses a skip-span boundary the matching ladder rung is
    /// built eagerly — amortized O(1) extra delta work per check-in.
    pub fn checkin(&mut self, contents: impl Into<Arc<[u8]>>, time: u64) -> Result<()> {
        if time <= self.head_time {
            return Err(StorageError::NoSuchVersion { time });
        }
        let contents = contents.into();
        let back_delta = Delta::compute(&contents, &self.head);
        let old_head = std::mem::replace(&mut self.head, contents);
        debug_assert_eq!(back_delta.target_len() as usize, old_head.len());
        self.entries.push(BackEntry {
            time: self.head_time,
            back_delta,
        });
        self.head_time = time;
        self.maintain_skips();
        Ok(())
    }

    /// Build any ladder rung that ends at the current entry count. Finest
    /// level first, so coarser builds can descend via the rungs just laid.
    /// Best-effort: a build failure only costs future replay speed.
    fn maintain_skips(&mut self) {
        let n = self.entries.len();
        for (level, &span) in SKIP_SPANS.iter().enumerate() {
            if n < span || !n.is_multiple_of(span) {
                continue;
            }
            let start = n - span;
            if self.lock_index().find_skip(level, start).is_some() {
                continue;
            }
            let Ok(target) = self.materialize_idx(start) else {
                continue;
            };
            let skip = SkipDelta {
                start,
                crc: crc32(&target),
                delta: Delta::compute(&self.head, &target),
            };
            self.lock_index().insert_skip(level, skip);
        }
    }

    /// Contents of the current version.
    pub fn head(&self) -> &[u8] {
        &self.head
    }

    /// Shared handle to the current version's contents — a refcount bump,
    /// never a copy.
    pub fn head_shared(&self) -> Arc<[u8]> {
        self.head.clone()
    }

    /// Check-in time of the current version.
    pub fn head_time(&self) -> u64 {
        self.head_time
    }

    /// Number of stored versions (history plus head).
    pub fn version_count(&self) -> usize {
        self.entries.len() + 1
    }

    /// Times of every version, oldest first.
    pub fn version_times(&self) -> Vec<u64> {
        let mut times: Vec<u64> = self.entries.iter().map(|e| e.time).collect();
        times.push(self.head_time);
        times
    }

    /// The version time in effect *at* logical time `t`: the newest version
    /// whose check-in time is ≤ `t`. Time `0` means "current" throughout the
    /// HAM (paper §A.2). Binary-searches the entries in place — no
    /// allocation on this path, which every checkout crosses.
    pub fn resolve_time(&self, t: u64) -> Result<u64> {
        if t == 0 || t >= self.head_time {
            return Ok(self.head_time);
        }
        match self.entries.binary_search_by_key(&t, |e| e.time) {
            Ok(_) => Ok(t),
            Err(0) => Err(StorageError::NoSuchVersion { time: t }),
            Err(pos) => Ok(self.entries[pos - 1].time),
        }
    }

    /// Contents as of logical time `t` (`0` = current).
    ///
    /// Starts from the nearest anchor at or above the target version (the
    /// head if none is warm) and descends the skip ladder greedily —
    /// coarsest rung first, unit deltas for the remainder — so both cold
    /// and warm checkouts apply O(log n) deltas. Anchors are captured at
    /// every [`KEYFRAME_INTERVAL`]-th version passed, and missing ladder
    /// rungs (e.g. after migrating a v1 store) are backfilled from the
    /// materializations the walk produces anyway.
    pub fn checkout(&self, t: u64) -> Result<Arc<[u8]>> {
        let resolved = self.resolve_time(t)?;
        if resolved == self.head_time {
            return Ok(self.head.clone());
        }
        let idx = self
            .entries
            .binary_search_by_key(&resolved, |e| e.time)
            .map_err(|_| StorageError::NoSuchVersion { time: t })?;
        self.materialize_idx(idx)
    }

    /// Rebuild the contents of entry index `idx` (`entries.len()` = head).
    fn materialize_idx(&self, idx: usize) -> Result<Arc<[u8]>> {
        let (bytes, depth, used_index, max_level) = self.materialize_stats(idx)?;
        observe_replay_depth(depth);
        observe_index_usage(used_index, max_level);
        Ok(bytes)
    }

    /// The hierarchical descent itself, reporting (contents, deltas
    /// applied, whether any anchor or skip served the walk, coarsest ladder
    /// level used) so callers and tests can observe replay cost.
    fn materialize_stats(&self, idx: usize) -> Result<(Arc<[u8]>, usize, bool, usize)> {
        let len = self.entries.len();
        debug_assert!(idx <= len);
        if idx == len {
            return Ok((self.head.clone(), 0, false, 0));
        }
        // Exact anchor hit: zero deltas applied.
        if let Some(bytes) = self.lock_index().anchors.get(idx) {
            return Ok((bytes, 0, true, 0));
        }
        let (start_bytes, start_pos, from_anchor) =
            match self.lock_index().anchors.nearest_above(idx, len) {
                Some((k, bytes)) => (bytes, k, true),
                None => (self.head.clone(), len, false),
            };
        // Per-level source buffers for lazy ladder backfill: the newest
        // materialization this walk produced at a span boundary.
        let mut pending: PendingBoundaries = [None, None, None, None];
        self.note_boundary(&mut pending, start_pos, &start_bytes);
        let mut current: Vec<u8> = start_bytes.to_vec();
        let mut pos = start_pos;
        let mut depth = 0usize;
        let mut max_level = 0usize;
        while pos > idx {
            let mut stepped = 0usize;
            if pos % SKIP_SPANS[0] == 0 {
                let mut ix = self.lock_index();
                for level in (0..SKIP_LEVELS).rev() {
                    let span = SKIP_SPANS[level];
                    if pos % span != 0 || pos < span || pos - span < idx {
                        continue;
                    }
                    let start = pos - span;
                    let Some(skip) = ix.find_skip(level, start) else {
                        continue;
                    };
                    match skip.delta.apply(&current) {
                        Ok(next) if crc32(&next) == skip.crc => {
                            current = next;
                            stepped = span;
                            max_level = max_level.max(level + 1);
                            break;
                        }
                        // A skip that fails to apply or produces the wrong
                        // bytes is corrupt derived data: drop it and let the
                        // descent fall back to finer rungs or unit deltas.
                        _ => ix.remove_skip(level, start),
                    }
                }
            }
            if stepped == 0 {
                current = self.entries[pos - 1].back_delta.apply(&current)?;
                stepped = 1;
            }
            pos -= stepped;
            depth += 1;
            if pos % KEYFRAME_INTERVAL == 0 {
                let shared: Arc<[u8]> = Arc::from(&current[..]);
                self.note_boundary(&mut pending, pos, &shared);
                self.lock_index().anchors.insert(pos, shared);
            }
        }
        Ok((
            current.into(),
            depth,
            from_anchor || max_level > 0,
            max_level,
        ))
    }

    /// Record that this walk holds the contents of version index `pos`, and
    /// backfill any missing ladder rung whose source was the previous
    /// boundary one span newer — this is how an index-less store migrated
    /// from the v1 format regrows its ladder from ordinary reads.
    fn note_boundary(&self, pending: &mut PendingBoundaries, pos: usize, bytes: &Arc<[u8]>) {
        for level in 0..SKIP_LEVELS {
            let span = SKIP_SPANS[level];
            if !pos.is_multiple_of(span) {
                continue;
            }
            if let Some((source_pos, source_bytes)) = pending[level].take() {
                if source_pos == pos + span && self.lock_index().find_skip(level, pos).is_none() {
                    let skip = SkipDelta {
                        start: pos,
                        crc: crc32(bytes),
                        delta: Delta::compute(&source_bytes, bytes),
                    };
                    self.lock_index().insert_skip(level, skip);
                }
            }
            pending[level] = Some((pos, bytes.clone()));
        }
    }

    /// Contents as of logical time `t`, always replaying the full backward
    /// chain from the head and never touching the temporal index. This is
    /// the reference implementation [`Archive::checkout`] must agree with,
    /// and what "cache disabled" means in the scaling benchmarks.
    pub fn checkout_uncached(&self, t: u64) -> Result<Arc<[u8]>> {
        let resolved = self.resolve_time(t)?;
        if resolved == self.head_time {
            return Ok(self.head.clone());
        }
        let idx = self
            .entries
            .binary_search_by_key(&resolved, |e| e.time)
            .map_err(|_| StorageError::NoSuchVersion { time: t })?;
        observe_replay_depth(self.entries.len() - idx);
        let mut current = self.head.to_vec();
        for entry in self.entries[idx..].iter().rev() {
            current = entry.back_delta.apply(&current)?;
        }
        Ok(current.into())
    }

    /// Discard every version checked in after logical time `t`, restoring
    /// the newest remaining version as the head. Supports transaction
    /// rollback, where aborting truncates all versioned state back to the
    /// transaction's start time. Errors if no version at or before `t`
    /// exists (the archive itself should be deleted in that case).
    pub fn truncate_after(&mut self, t: u64) -> Result<()> {
        if self.head_time <= t {
            return Ok(());
        }
        let resolved = self.resolve_time(t)?; // newest surviving version
        let new_head = self.checkout(resolved)?;
        let idx = self
            .entries
            .binary_search_by_key(&resolved, |e| e.time)
            .map_err(|_| StorageError::NoSuchVersion { time: t })?;
        self.entries.truncate(idx);
        self.head = new_head;
        self.head_time = resolved;
        // Anchors at or past the cut refer to discarded versions; a later
        // checkin would reuse those entry indices with different contents.
        // Skips whose source version was cut away go with them.
        let mut ix = self.lock_index();
        ix.anchors.retain_below(idx);
        ix.retain_skips_for_len(idx);
        Ok(())
    }

    /// Per-archive anchor-cache byte budget, for benchmarks and tests.
    pub fn set_anchor_budget(&self, budget: usize) {
        self.lock_index().anchors.set_budget(budget);
    }

    /// Bytes currently held by this archive's anchor cache.
    pub fn anchor_bytes(&self) -> usize {
        self.lock_index().anchors.held
    }

    /// Drop every cached anchor, forcing the next checkout to be cold.
    pub fn clear_anchors(&self) {
        self.lock_index().anchors.clear();
    }

    /// Number of skip deltas currently in the ladder, across all levels.
    pub fn skip_count(&self) -> usize {
        self.lock_index().skip_count()
    }

    /// Walk the entire backward-delta chain verifying structural integrity:
    /// version times must be strictly increasing, every delta must apply
    /// cleanly to its successor's contents, and the bytes each delta
    /// produces must have the length the delta itself claims. `checkout`
    /// does none of these length checks, so a corrupted `target_len` is
    /// silent without this. Returns a description of the first problem.
    pub fn verify_chain(&self) -> std::result::Result<(), String> {
        let times = self.version_times();
        if let Some(w) = times.windows(2).find(|w| w[0] >= w[1]) {
            return Err(format!(
                "version times out of order: {} then {}",
                w[0], w[1]
            ));
        }
        let mut current = self.head.to_vec();
        for entry in self.entries.iter().rev() {
            let rebuilt = entry.back_delta.apply(&current).map_err(|e| {
                format!(
                    "delta for version at time {} fails to apply: {e}",
                    entry.time
                )
            })?;
            if rebuilt.len() as u64 != entry.back_delta.target_len() {
                return Err(format!(
                    "delta for version at time {} produced {} bytes but claims {}",
                    entry.time,
                    rebuilt.len(),
                    entry.back_delta.target_len()
                ));
            }
            current = rebuilt;
        }
        Ok(())
    }

    /// Audit the persisted skip ladder against the canonical delta chain:
    /// every skip must sit on its level's span grid inside the live history,
    /// apply cleanly to its true source version, match its own checksum, and
    /// reproduce the exact bytes the unit chain yields at its target. One
    /// head-to-oldest walk; at most one outstanding buffer per level.
    /// Returns a description of the first problem.
    pub fn verify_index(&self) -> std::result::Result<(), String> {
        let ix = self.lock_index();
        let len = self.entries.len();
        for (level, skips) in ix.levels.iter().enumerate() {
            let span = SKIP_SPANS[level];
            let mut prev: Option<usize> = None;
            for s in skips {
                if s.start % span != 0 || s.start + span > len {
                    return Err(format!(
                        "level-{} skip at version index {} is off-grid or out of range \
                         (history has {len} entries)",
                        level + 1,
                        s.start
                    ));
                }
                if prev.is_some_and(|p| p >= s.start) {
                    return Err(format!(
                        "level-{} skips unsorted or duplicated at version index {}",
                        level + 1,
                        s.start
                    ));
                }
                prev = Some(s.start);
            }
        }
        // (level, target index, bytes the skip produced) — compared when the
        // unit walk reaches the target.
        let mut outstanding: Vec<(usize, usize, Vec<u8>)> = Vec::new();
        let mut current = self.head.to_vec();
        let mut pos = len;
        loop {
            for (level, skips) in ix.levels.iter().enumerate() {
                let span = SKIP_SPANS[level];
                if pos < span || !pos.is_multiple_of(span) {
                    continue;
                }
                let start = pos - span;
                if let Ok(i) = skips.binary_search_by_key(&start, |s| s.start) {
                    let skip = &skips[i];
                    let applied = skip.delta.apply(&current).map_err(|e| {
                        format!(
                            "level-{} skip for version index {start} fails to apply: {e}",
                            level + 1
                        )
                    })?;
                    if crc32(&applied) != skip.crc {
                        return Err(format!(
                            "level-{} skip for version index {start} fails its checksum",
                            level + 1
                        ));
                    }
                    outstanding.push((level, start, applied));
                }
            }
            if let Some(i) = outstanding.iter().position(|(_, start, _)| *start == pos) {
                let (level, start, applied) = outstanding.swap_remove(i);
                if applied != current {
                    return Err(format!(
                        "level-{} skip for version index {start} disagrees with the delta chain",
                        level + 1
                    ));
                }
            }
            if pos == 0 {
                break;
            }
            current = self.entries[pos - 1]
                .back_delta
                .apply(&current)
                .map_err(|e| {
                    format!(
                        "delta for version at time {} fails to apply: {e}",
                        self.entries[pos - 1].time
                    )
                })?;
            pos -= 1;
        }
        Ok(())
    }

    /// Total bytes of stored state: head plus all encoded deltas. This is
    /// the quantity the paper's backward-delta design minimizes relative to
    /// keeping every version in full. The skip ladder is derived state and
    /// intentionally not counted here.
    pub fn storage_bytes(&self) -> u64 {
        self.head.len() as u64
            + self
                .entries
                .iter()
                .map(|e| e.back_delta.storage_size())
                .sum::<u64>()
    }

    /// Encoded size of the skip ladder alone — the storage price of
    /// sublinear cold checkout, reported by the history-depth benchmark.
    pub fn index_bytes(&self) -> u64 {
        let ix = self.lock_index();
        ix.levels
            .iter()
            .flatten()
            .map(|s| 12 + s.delta.storage_size())
            .sum()
    }

    /// Sum of the lengths of every version in full — what naive full-copy
    /// storage would cost. Used by the E1 storage-efficiency experiment.
    pub fn full_copy_bytes(&self) -> Result<u64> {
        let mut total = self.head.len() as u64;
        let mut current = self.head.to_vec();
        for entry in self.entries.iter().rev() {
            current = entry.back_delta.apply(&current)?;
            total += current.len() as u64;
        }
        Ok(total)
    }

    /// Encode canonical state plus the skip ladder — the v2 archive format
    /// used by snapshots, so a reopened store starts with its temporal index
    /// already built. The ladder travels as one length-prefixed blob that
    /// [`Archive::decode_with_index`] parses defensively: derived data must
    /// never make a store unopenable.
    pub fn encode_with_index(&self, w: &mut Writer) {
        self.encode(w);
        let mut iw = Writer::new();
        let ix = self.lock_index();
        iw.put_u64(SKIP_LEVELS as u64);
        for skips in ix.levels.iter() {
            iw.put_u64(skips.len() as u64);
            for s in skips {
                iw.put_u64(s.start as u64);
                iw.put_u64(s.crc as u64);
                s.delta.encode(&mut iw);
            }
        }
        drop(ix);
        w.put_bytes(iw.as_slice());
    }

    /// Decode the v2 format written by [`Archive::encode_with_index`]. A
    /// malformed or implausible index blob is discarded wholesale — the
    /// archive opens with an empty ladder and rebuilds it from reads — and
    /// individual skips are still checksum-verified on every application,
    /// so nothing decoded here is trusted to change checkout results.
    pub fn decode_with_index(r: &mut Reader<'_>) -> Result<Self> {
        let archive = Archive::decode(r)?;
        let blob = r.get_bytes()?;
        if let Some(levels) = decode_index_blob(blob, archive.entries.len()) {
            archive.lock_index().levels = levels;
        }
        Ok(archive)
    }
}

/// Parse a skip-ladder blob, returning `None` — an empty ladder — on any
/// structural problem: truncated data, trailing garbage, unknown level
/// layout, off-grid or out-of-range starts, or unsorted entries.
fn decode_index_blob(blob: &[u8], len: usize) -> Option<[Vec<SkipDelta>; SKIP_LEVELS]> {
    let mut r = Reader::new(blob);
    if r.get_u64().ok()? as usize != SKIP_LEVELS {
        return None;
    }
    let mut levels: [Vec<SkipDelta>; SKIP_LEVELS] = Default::default();
    for (level, slot) in levels.iter_mut().enumerate() {
        let span = SKIP_SPANS[level];
        let count = r.get_u64().ok()? as usize;
        let mut skips = Vec::with_capacity(count.min(r.remaining()));
        let mut prev: Option<usize> = None;
        for _ in 0..count {
            let start = r.get_u64().ok()? as usize;
            let crc = u32::try_from(r.get_u64().ok()?).ok()?;
            let delta = Delta::decode(&mut r).ok()?;
            if !start.is_multiple_of(span) || start.checked_add(span)? > len {
                return None;
            }
            if prev.is_some_and(|p| p >= start) {
                return None;
            }
            prev = Some(start);
            skips.push(SkipDelta { start, crc, delta });
        }
        *slot = skips;
    }
    if !r.is_at_end() {
        return None;
    }
    Some(levels)
}

impl Encode for Archive {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.head);
        w.put_u64(self.head_time);
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            w.put_u64(e.time);
            e.back_delta.encode(w);
        }
    }
}

impl Decode for Archive {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let head: Arc<[u8]> = r.get_bytes()?.into();
        let head_time = r.get_u64()?;
        let count = r.get_u64()? as usize;
        let mut entries = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            let time = r.get_u64()?;
            let back_delta = Delta::decode(r)?;
            entries.push(BackEntry { time, back_delta });
        }
        Ok(Archive {
            head,
            head_time,
            entries,
            index: Mutex::new(ArchiveIndex::new(DEFAULT_ANCHOR_BUDGET)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn version(i: usize) -> Vec<u8> {
        (0..100)
            .map(|line| {
                if line == i % 100 {
                    format!("line {line} edited at version {i}\n")
                } else {
                    format!("line {line}\n")
                }
            })
            .collect::<String>()
            .into_bytes()
    }

    fn build(n: usize) -> Archive {
        let mut a = Archive::new(version(0), 1);
        for i in 1..n {
            a.checkin(version(i), (i + 1) as u64).unwrap();
        }
        a
    }

    /// Round-trip through the v2 wire format, as a reopen would.
    fn reopen(a: &Archive) -> Archive {
        let mut w = Writer::new();
        a.encode_with_index(&mut w);
        Archive::decode_with_index(&mut Reader::new(&w.into_bytes())).unwrap()
    }

    #[test]
    fn every_version_is_recoverable() {
        let a = build(25);
        assert_eq!(a.version_count(), 25);
        for i in 0..25 {
            assert_eq!(
                &a.checkout((i + 1) as u64).unwrap()[..],
                version(i),
                "version {i}"
            );
        }
    }

    #[test]
    fn time_zero_means_current() {
        let a = build(5);
        assert_eq!(&a.checkout(0).unwrap()[..], version(4));
        assert_eq!(a.resolve_time(0).unwrap(), 5);
    }

    #[test]
    fn times_between_versions_resolve_downward() {
        // Versions at times 1 and 10; time 5 sees version-at-1.
        let mut a = Archive::new(b"v1".to_vec(), 1);
        a.checkin(b"v2".to_vec(), 10).unwrap();
        assert_eq!(&a.checkout(5).unwrap()[..], b"v1");
        assert_eq!(&a.checkout(10).unwrap()[..], b"v2");
        assert_eq!(&a.checkout(99).unwrap()[..], b"v2");
        assert_eq!(a.resolve_time(5).unwrap(), 1);
    }

    #[test]
    fn time_before_creation_is_an_error() {
        let mut a = Archive::new(b"v1".to_vec(), 5);
        a.checkin(b"v2".to_vec(), 10).unwrap();
        assert!(matches!(
            a.checkout(3),
            Err(StorageError::NoSuchVersion { time: 3 })
        ));
    }

    #[test]
    fn checkin_requires_monotonic_time() {
        let mut a = Archive::new(b"v1".to_vec(), 5);
        assert!(a.checkin(b"v2".to_vec(), 5).is_err());
        assert!(a.checkin(b"v2".to_vec(), 4).is_err());
        assert!(a.checkin(b"v2".to_vec(), 6).is_ok());
    }

    #[test]
    fn storage_is_much_smaller_than_full_copies() {
        let a = build(100);
        let delta_bytes = a.storage_bytes();
        let full_bytes = a.full_copy_bytes().unwrap();
        assert!(
            delta_bytes * 4 < full_bytes,
            "deltas {delta_bytes} should be far below full copies {full_bytes}"
        );
    }

    #[test]
    fn version_times_sorted() {
        let a = build(10);
        let times = a.version_times();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(times.len(), 10);
    }

    #[test]
    fn codec_roundtrip_preserves_history() {
        let a = build(12);
        let decoded = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(decoded, a);
        for i in 0..12 {
            assert_eq!(&decoded.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
    }

    #[test]
    fn truncate_after_restores_older_head() {
        let mut a = build(10);
        a.truncate_after(4).unwrap();
        assert_eq!(a.version_count(), 4);
        assert_eq!(a.head(), version(3).as_slice());
        assert_eq!(a.head_time(), 4);
        for i in 0..4 {
            assert_eq!(&a.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        // Truncating at or past the head is a no-op.
        a.truncate_after(4).unwrap();
        assert_eq!(a.version_count(), 4);
        a.truncate_after(99).unwrap();
        assert_eq!(a.version_count(), 4);
        // Truncating before the first version is an error.
        assert!(a.truncate_after(0).is_err());
    }

    #[test]
    fn truncate_then_checkin_continues_history() {
        let mut a = build(5);
        a.truncate_after(2).unwrap();
        a.checkin(b"new branch tip".to_vec(), 9).unwrap();
        assert_eq!(&a.checkout(0).unwrap()[..], b"new branch tip");
        assert_eq!(&a.checkout(1).unwrap()[..], version(0));
        assert_eq!(&a.checkout(2).unwrap()[..], version(1));
        assert_eq!(
            &a.checkout(5).unwrap()[..],
            version(1),
            "times 3..8 resolve to v2"
        );
    }

    #[test]
    fn anchors_accelerate_without_changing_results() {
        let a = build(100);
        // Cold pass populates anchors; warm pass must reread identically.
        for i in (0..100).rev() {
            assert_eq!(&a.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        assert!(
            a.anchor_bytes() > 0,
            "deep replay should have captured anchors"
        );
        for i in 0..100 {
            let t = (i + 1) as u64;
            assert_eq!(a.checkout(t).unwrap(), a.checkout_uncached(t).unwrap());
        }
    }

    #[test]
    fn anchors_are_dropped_by_truncate() {
        let mut a = build(64);
        a.checkout(1).unwrap(); // warm anchors along the whole chain
        a.truncate_after(40).unwrap();
        assert!(a.lock_index().anchors.frames.keys().all(|&k| k < 39));
        // Regrow the history past the cut; the reused entry indices must not
        // resurrect pre-truncation contents.
        for i in 40..64 {
            a.checkin(version(i), (i + 10) as u64).unwrap();
        }
        for i in 0..40 {
            assert_eq!(&a.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        for i in 40..64 {
            assert_eq!(&a.checkout((i + 10) as u64).unwrap()[..], version(i));
        }
        a.verify_index().unwrap();
    }

    #[test]
    fn clones_and_canonical_codec_ignore_the_index() {
        let a = build(40);
        a.checkout(1).unwrap();
        let b = a.clone();
        assert_eq!(a, b, "equality must ignore the derived index");
        let decoded = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(decoded, a);
        assert_eq!(
            decoded.skip_count(),
            0,
            "the ladder must not travel through the canonical format"
        );
        assert_eq!(decoded.anchor_bytes(), 0);
    }

    #[test]
    fn checkin_builds_the_skip_ladder_eagerly() {
        let a = build(257);
        // 256 entries: level-1 rungs at 0,16,..,240 and one level-2 rung.
        assert_eq!(a.skip_count(), 17);
        a.verify_index().unwrap();
    }

    #[test]
    fn skip_ladder_bounds_cold_replay_depth() {
        let a = build(1200);
        assert!(
            a.skip_count() >= 1199 / 16,
            "eager maintenance should have built every level-1 rung"
        );
        // Cold walk to the oldest of 1200 versions: 15 unit steps to the
        // 16-grid, ≤15 level-1 rungs to the 256-grid, ≤4 level-2 rungs to
        // zero — logarithmic, nowhere near the 1199 of linear replay.
        a.clear_anchors();
        let (bytes, depth, used_index, max_level) = a.materialize_stats(0).unwrap();
        assert_eq!(&bytes[..], version(0));
        assert!(depth <= 40, "cold replay depth {depth} is not logarithmic");
        assert!(used_index);
        assert!(max_level >= 2, "the level-2 rungs should have been used");
        a.clear_anchors();
        assert_eq!(a.checkout(1).unwrap(), a.checkout_uncached(1).unwrap());
        a.verify_index().unwrap();
    }

    #[test]
    fn index_survives_reopen_and_serves_cold_checkouts() {
        let a = build(600);
        let d = reopen(&a);
        assert_eq!(d, a);
        assert_eq!(d.skip_count(), a.skip_count());
        assert!(d.skip_count() >= 599 / 16);
        // Cold process, cold anchors: contents must still be exact.
        for i in [0usize, 1, 17, 255, 256, 300, 599] {
            assert_eq!(&d.checkout((i + 1) as u64).unwrap()[..], version(i));
        }
        d.verify_index().unwrap();
    }

    #[test]
    fn corrupt_skip_is_detected_and_replay_falls_back() {
        let a = build(300);
        a.clear_anchors();
        // Sabotage the level-2 rung (spans entries 0..256).
        {
            let mut ix = a.lock_index();
            ix.levels[1][0].crc ^= 0xDEAD_BEEF;
        }
        assert!(
            a.verify_index().unwrap_err().contains("checksum"),
            "the audit must flag the tampered rung"
        );
        // Checkout must still return exact bytes: the corrupt rung is
        // dropped mid-descent, the walk falls back to finer steps, and the
        // boundary backfill lays a fresh, correct rung in its place.
        let before = a.skip_count();
        assert_eq!(&a.checkout(1).unwrap()[..], version(0));
        assert_eq!(
            a.skip_count(),
            before,
            "rung should be dropped then rebuilt"
        );
        a.verify_index().unwrap();
    }

    #[test]
    fn garbage_index_blob_is_discarded_not_fatal() {
        let a = build(80);
        let mut w = Writer::new();
        a.encode(&mut w);
        w.put_bytes(b"this is not a skip ladder");
        let d = Archive::decode_with_index(&mut Reader::new(&w.into_bytes())).unwrap();
        assert_eq!(d, a, "canonical state must survive a garbage index");
        assert_eq!(d.skip_count(), 0);
        assert_eq!(&d.checkout(1).unwrap()[..], version(0));
        // Out-of-range rung claims are rejected wholesale too.
        let mut w = Writer::new();
        a.encode(&mut w);
        let mut iw = Writer::new();
        iw.put_u64(SKIP_LEVELS as u64);
        iw.put_u64(1); // one level-1 skip...
        iw.put_u64(9999 * 16); // ...far past the 79 real entries
        iw.put_u64(0);
        Delta::compute(b"a", b"b").encode(&mut iw);
        for _ in 1..SKIP_LEVELS {
            iw.put_u64(0);
        }
        w.put_bytes(iw.as_slice());
        let d = Archive::decode_with_index(&mut Reader::new(&w.into_bytes())).unwrap();
        assert_eq!(d.skip_count(), 0);
        assert_eq!(d, a);
    }

    #[test]
    fn lazy_backfill_regrows_ladder_from_reads() {
        // A canonical-only decode (a migrated v1 store) has no ladder; a
        // deep cold read rebuilds the rungs it walks past.
        let a = build(200);
        let d = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(d.skip_count(), 0);
        assert_eq!(&d.checkout(1).unwrap()[..], version(0));
        assert!(
            d.skip_count() >= 199 / 16,
            "a full walk should backfill every level-1 rung it crossed"
        );
        d.verify_index().unwrap();
        assert_eq!(d.checkout(1).unwrap(), d.checkout_uncached(1).unwrap());
    }

    #[test]
    fn anchor_cache_is_byte_bounded_with_lru_eviction() {
        let a = build(400);
        let budget = 4 * 1024;
        a.set_anchor_budget(budget);
        for i in (0..400).step_by(7) {
            a.checkout((i + 1) as u64).unwrap();
            assert!(
                a.anchor_bytes() <= budget,
                "anchor cache exceeded its budget at probe {i}"
            );
        }
        assert!(a.anchor_bytes() > 0, "some anchors should fit the budget");
        // Shrinking the budget evicts down to the new bound immediately.
        a.set_anchor_budget(1024);
        assert!(a.anchor_bytes() <= 1024);
        // Oversized contents are simply not cached.
        a.set_anchor_budget(16);
        a.clear_anchors();
        a.checkout(1).unwrap();
        assert_eq!(a.anchor_bytes(), 0);
        assert_eq!(&a.checkout(1).unwrap()[..], version(0));
    }

    #[test]
    fn property_cached_checkout_matches_uncached_replay() {
        use crate::testutil::XorShift;
        for seed in 1..=8u64 {
            let mut rng = XorShift::new(seed);
            let initial_len = 64 + rng.index(256);
            let mut contents = rng.bytes(initial_len);
            let mut a = Archive::new(contents.clone(), 1);
            // Small budgets keep eviction hot in the property runs.
            a.set_anchor_budget([usize::MAX, 8 * 1024, 64 * 1024][rng.index(3)]);
            let mut clock = 1u64;
            let mut live: Vec<u64> = vec![1];
            for step in 0..rng.index(60) + 20 {
                if rng.chance(1, 10) && live.len() > 1 {
                    // Rewind to a random surviving version, like an abort.
                    let cut = live[rng.index(live.len())];
                    a.truncate_after(cut).unwrap();
                    live.retain(|&t| t <= cut);
                    contents = a.head().to_vec();
                    clock = cut;
                } else {
                    // Random splice edit, then check in.
                    let at = rng.index(contents.len().max(1));
                    let del = rng.index(contents.len() - at + 1);
                    let ins_len = rng.index(64);
                    let ins = rng.bytes(ins_len);
                    contents.splice(at..at + del, ins);
                    clock += 1 + rng.below(3);
                    a.checkin(contents.clone(), clock).unwrap();
                    live.push(clock);
                }
                if step % 13 == 7 {
                    // Reopen from disk mid-history: the persisted ladder
                    // must keep agreeing with the chain it rode in with.
                    let d = reopen(&a);
                    assert_eq!(d, a, "seed {seed} reopen at step {step}");
                    a = d;
                }
                // Probe a few random historical times each step.
                for _ in 0..3 {
                    let t = live[rng.index(live.len())];
                    assert_eq!(
                        a.checkout(t).unwrap(),
                        a.checkout_uncached(t).unwrap(),
                        "seed {seed} time {t}"
                    );
                }
            }
            a.verify_chain().unwrap();
            a.verify_index().unwrap();
        }
    }

    #[test]
    fn empty_contents_are_fine() {
        let mut a = Archive::new(Vec::new(), 1);
        a.checkin(b"now nonempty\n".to_vec(), 2).unwrap();
        a.checkin(Vec::new(), 3).unwrap();
        assert_eq!(&a.checkout(1).unwrap()[..], b"");
        assert_eq!(&a.checkout(2).unwrap()[..], b"now nonempty\n");
        assert_eq!(&a.checkout(3).unwrap()[..], b"");
    }
}
