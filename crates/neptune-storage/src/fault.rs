//! Fault-injecting [`Vfs`] for crash-consistency testing.
//!
//! [`FaultVfs`] wraps a real directory (the *working tree* — what the
//! process sees) and maintains, in memory, a shadow *durable image*: the
//! bytes that would survive a power cut at this instant. The model follows
//! the POSIX rules the storage layer's durability contract (DESIGN.md §12)
//! is written against:
//!
//! * file writes, truncations, and creations live only in the working tree
//!   until the file is fsync'd — a sync copies the file's current bytes
//!   into the durable image;
//! * a rename or remove is a *pending directory operation* until its
//!   directory is fsync'd — only then is it applied to the durable image;
//! * a rename whose source was never synced durably produces an *empty*
//!   file (the adversarial reading of "metadata durable, data not").
//!
//! A scripted fault plan ([`FaultVfs::arm`]) picks an operation class and a
//! step index; the N-th matching operation after arming misbehaves:
//!
//! * [`FaultKind::FailWrite`] — the write/create/truncate/remove errors
//!   cleanly, changing nothing;
//! * [`FaultKind::ShortWrite`] — an append writes only a prefix, then
//!   errors (a torn frame in the working tree);
//! * [`FaultKind::FailSync`] — the fsync errors; the durable image is not
//!   updated (fsyncgate: the data may be gone, not merely late);
//! * [`FaultKind::TornRename`] — the rename lands in the working tree and
//!   power dies immediately, so the durable image never sees it;
//! * [`FaultKind::PowerCut`] — the operation never happens and every
//!   subsequent operation fails: the machine is off.
//!
//! After a simulated power loss, [`FaultVfs::materialize_durable`] rewrites
//! the real directory from the durable image so the store can be reopened
//! with the production [`StdVfs`](crate::vfs::StdVfs) and checked against
//! what a real crash would have left behind.

use std::collections::BTreeMap;
use std::ffi::OsString;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::vfs::{Vfs, VfsFile};

/// The kinds of I/O failure [`FaultVfs`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A write-shaped operation (create, append, truncate, remove, chmod)
    /// fails cleanly without applying.
    FailWrite,
    /// An append writes a prefix of its data, then fails.
    ShortWrite,
    /// A file or directory fsync fails; nothing new becomes durable.
    FailSync,
    /// A rename is applied to the working tree and the power dies before
    /// the directory entry becomes durable.
    TornRename,
    /// The power dies: the operation does not happen and every later
    /// operation fails.
    PowerCut,
}

impl FaultKind {
    /// All injectable kinds, in matrix-sweep order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::FailWrite,
        FaultKind::ShortWrite,
        FaultKind::FailSync,
        FaultKind::TornRename,
        FaultKind::PowerCut,
    ];

    fn matches(self, class: OpClass) -> bool {
        match self {
            FaultKind::FailWrite => matches!(
                class,
                OpClass::Create
                    | OpClass::Append
                    | OpClass::SetLen
                    | OpClass::Remove
                    | OpClass::SetPerm
            ),
            FaultKind::ShortWrite => matches!(class, OpClass::Append),
            FaultKind::FailSync => matches!(class, OpClass::SyncFile | OpClass::SyncDir),
            FaultKind::TornRename => matches!(class, OpClass::Rename),
            FaultKind::PowerCut => true,
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultKind::FailWrite => "fail_write",
            FaultKind::ShortWrite => "short_write",
            FaultKind::FailSync => "fail_sync",
            FaultKind::TornRename => "torn_rename",
            FaultKind::PowerCut => "power_cut",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Create,
    Append,
    SetLen,
    Remove,
    SetPerm,
    SyncFile,
    SyncDir,
    Rename,
}

impl OpClass {
    fn name(self) -> &'static str {
        match self {
            OpClass::Create => "create",
            OpClass::Append => "append",
            OpClass::SetLen => "set_len",
            OpClass::Remove => "remove",
            OpClass::SetPerm => "set_permissions",
            OpClass::SyncFile => "sync",
            OpClass::SyncDir => "sync_dir",
            OpClass::Rename => "rename",
        }
    }
}

#[derive(Debug)]
enum DirOp {
    Rename { from: PathBuf, to: PathBuf },
    Remove(PathBuf),
}

impl DirOp {
    fn dir(&self) -> PathBuf {
        match self {
            DirOp::Rename { to, .. } => crate::vfs::parent_dir(to),
            DirOp::Remove(p) => crate::vfs::parent_dir(p),
        }
    }
}

#[derive(Debug)]
struct Plan {
    kind: FaultKind,
    remaining: u64,
}

#[derive(Debug, Default)]
struct FaultState {
    plan: Option<Plan>,
    durable: BTreeMap<PathBuf, Vec<u8>>,
    pending: Vec<DirOp>,
    powered_off: bool,
    injected: u64,
    op_log: Vec<String>,
}

enum Step {
    Go,
    Fault(FaultKind),
}

impl FaultState {
    fn power_err() -> io::Error {
        io::Error::other("simulated power loss: storage is offline")
    }

    fn fault_err(kind: FaultKind, class: OpClass) -> io::Error {
        io::Error::other(format!("injected fault: {kind} at {}", class.name()))
    }

    /// Decide whether this operation proceeds, faults, or is refused
    /// because the power is already off. Also appends to the op log.
    fn step(&mut self, class: OpClass, path: &Path) -> io::Result<Step> {
        if self.powered_off {
            return Err(Self::power_err());
        }
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        self.op_log.push(format!("{} {file}", class.name()));
        if let Some(plan) = &mut self.plan {
            if plan.kind.matches(class) {
                if plan.remaining == 0 {
                    let kind = plan.kind;
                    self.plan = None;
                    self.injected += 1;
                    if neptune_obs::enabled() {
                        neptune_obs::registry()
                            .counter(&neptune_obs::labeled(
                                "neptune_storage_faults_injected_total",
                                "kind",
                                kind.label(),
                            ))
                            .inc();
                    }
                    return Ok(Step::Fault(kind));
                }
                plan.remaining -= 1;
            }
        }
        Ok(Step::Go)
    }

    /// Apply the pending directory operations under `dir` to the durable
    /// image, in the order they were issued.
    fn apply_pending(&mut self, dir: &Path) {
        let mut remaining = Vec::new();
        for op in self.pending.drain(..) {
            if op.dir() != dir {
                remaining.push(op);
                continue;
            }
            match op {
                DirOp::Rename { from, to } => {
                    // A source that was never synced leaves an empty file:
                    // the directory entry is durable, the data is not.
                    let bytes = self.durable.remove(&from).unwrap_or_default();
                    self.durable.insert(to, bytes);
                }
                DirOp::Remove(path) => {
                    self.durable.remove(&path);
                }
            }
        }
        self.pending = remaining;
    }

    fn mark_file_durable(&mut self, path: &Path) -> io::Result<()> {
        let bytes = fs::read(path)?;
        self.durable.insert(path.to_path_buf(), bytes);
        Ok(())
    }
}

/// A [`Vfs`] that injects one scripted fault and models what survives it.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl Default for FaultVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultVfs {
    /// A fresh, disarmed fault Vfs with an empty durable image.
    pub fn new() -> FaultVfs {
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault vfs poisoned")
    }

    /// Arm the fault: the `at`-th operation (0-based) matching `kind`'s
    /// class from now on misbehaves. Replaces any previous plan.
    pub fn arm(&self, kind: FaultKind, at: u64) {
        self.lock().plan = Some(Plan {
            kind,
            remaining: at,
        });
    }

    /// Remove any armed fault plan.
    pub fn disarm(&self) {
        self.lock().plan = None;
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// Whether a simulated power loss has occurred.
    pub fn is_powered_off(&self) -> bool {
        self.lock().powered_off
    }

    /// Cut the power now: later operations fail, and the durable image is
    /// frozen as-is (pending renames/removes are lost).
    pub fn power_off(&self) {
        self.lock().powered_off = true;
    }

    /// The operations issued so far, as `"op file_name"` strings.
    pub fn op_log(&self) -> Vec<String> {
        self.lock().op_log.clone()
    }

    /// Clear the operation log (e.g. between phases of a test).
    pub fn clear_op_log(&self) {
        self.lock().op_log.clear();
    }

    /// Rewrite the real directory tree under `root` from the durable
    /// image: exactly what a machine restarting after a power cut at the
    /// frozen instant would find on disk.
    pub fn materialize_durable(&self, root: &Path) -> io::Result<()> {
        let st = self.lock();
        if root.exists() {
            fs::remove_dir_all(root)?;
        }
        fs::create_dir_all(root)?;
        for (path, bytes) in &st.durable {
            if !path.starts_with(root) {
                continue;
            }
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)?;
            }
            fs::write(path, bytes)?;
        }
        Ok(())
    }

    /// Paths currently present in the durable image (for diagnostics).
    pub fn durable_paths(&self) -> Vec<PathBuf> {
        self.lock().durable.keys().cloned().collect()
    }
}

#[derive(Debug)]
struct FaultVfsFile {
    path: PathBuf,
    file: File,
    append_mode: bool,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfsFile {
    fn write_at_end(&mut self, data: &[u8]) -> io::Result<()> {
        if !self.append_mode {
            self.file.seek(SeekFrom::End(0))?;
        }
        self.file.write_all(data)
    }
}

impl VfsFile for FaultVfsFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs poisoned");
        match st.step(OpClass::Append, &self.path)? {
            Step::Go => {}
            Step::Fault(FaultKind::ShortWrite) => {
                // Half the data reaches the working tree; none of it is
                // durable until a (never-coming) successful sync.
                drop(st);
                self.write_at_end(&data[..data.len() / 2])?;
                return Err(FaultState::fault_err(
                    FaultKind::ShortWrite,
                    OpClass::Append,
                ));
            }
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::Append)),
        }
        drop(st);
        self.write_at_end(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs poisoned");
        match st.step(OpClass::SyncFile, &self.path)? {
            Step::Go => {}
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::SyncFile)),
        }
        self.file.sync_data()?;
        st.mark_file_durable(&self.path)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs poisoned");
        match st.step(OpClass::SetLen, &self.path)? {
            Step::Go => {}
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::SetLen)),
        }
        drop(st);
        self.file.set_len(len)
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        if self.state.lock().expect("fault vfs poisoned").powered_off {
            return Err(FaultState::power_err());
        }
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn len(&self) -> io::Result<u64> {
        if self.state.lock().expect("fault vfs poisoned").powered_off {
            return Err(FaultState::power_err());
        }
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for FaultVfs {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.lock().powered_off {
            return Err(FaultState::power_err());
        }
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(FaultVfsFile {
            path: path.to_path_buf(),
            file,
            append_mode: true,
            state: Arc::clone(&self.state),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.lock();
        match st.step(OpClass::Create, path)? {
            Step::Go => {}
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::Create)),
        }
        drop(st);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(FaultVfsFile {
            path: path.to_path_buf(),
            file,
            append_mode: false,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.lock().powered_off {
            return Err(FaultState::power_err());
        }
        fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        match st.step(OpClass::Rename, to)? {
            Step::Go => {
                drop(st);
                fs::rename(from, to)?;
                let mut st = self.lock();
                st.pending.push(DirOp::Rename {
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                });
                Ok(())
            }
            Step::Fault(FaultKind::TornRename) => {
                // The rename reaches the working tree, then the machine
                // dies: the caller sees success, the durable image never
                // records the swap.
                fs::rename(from, to)?;
                st.powered_off = true;
                Ok(())
            }
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                Err(FaultState::power_err())
            }
            Step::Fault(kind) => Err(FaultState::fault_err(kind, OpClass::Rename)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        match st.step(OpClass::Remove, path)? {
            Step::Go => {}
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::Remove)),
        }
        drop(st);
        fs::remove_file(path)?;
        self.lock().pending.push(DirOp::Remove(path.to_path_buf()));
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        match st.step(OpClass::SyncDir, dir)? {
            Step::Go => {}
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::SyncDir)),
        }
        File::open(dir)?.sync_all()?;
        st.apply_pending(dir);
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation happens only at store creation time and is
        // not a fault point; the durable image tracks files, not dirs.
        if self.lock().powered_off {
            return Err(FaultState::power_err());
        }
        fs::create_dir_all(dir)
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Whole-store teardown (destroyGraph): not a crash-sweep fault
        // point, but the shadow durable image must forget the subtree too
        // or a later materialize_durable would resurrect destroyed files.
        let mut st = self.lock();
        if st.powered_off {
            return Err(FaultState::power_err());
        }
        st.durable.retain(|p, _| !p.starts_with(dir));
        st.pending.retain(|op| {
            let touched = match op {
                DirOp::Rename { from, to } => from.starts_with(dir) || to.starts_with(dir),
                DirOp::Remove(p) => p.starts_with(dir),
            };
            !touched
        });
        drop(st);
        fs::remove_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<OsString>> {
        if self.lock().powered_off {
            return Err(FaultState::power_err());
        }
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name());
        }
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        if self.lock().powered_off {
            return false;
        }
        path.exists()
    }

    fn set_permissions(&self, path: &Path, mode: u32) -> io::Result<()> {
        let mut st = self.lock();
        match st.step(OpClass::SetPerm, path)? {
            Step::Go => {}
            Step::Fault(FaultKind::PowerCut) => {
                st.powered_off = true;
                return Err(FaultState::power_err());
            }
            Step::Fault(kind) => return Err(FaultState::fault_err(kind, OpClass::SetPerm)),
        }
        drop(st);
        crate::vfs::StdVfs.set_permissions(path, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-fault-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unsynced_data_does_not_survive_power_cut() {
        let dir = tmpdir("unsynced");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" lost").unwrap();
        // No sync: the tail exists only in the working tree.
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"durable");
    }

    #[test]
    fn rename_needs_dir_sync_to_survive() {
        let dir = tmpdir("rename");
        let vfs = FaultVfs::new();
        let tmp = dir.join("x.tmp");
        let real = dir.join("x");
        let mut f = vfs.create(&tmp).unwrap();
        f.append(b"v1").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&tmp, &real).unwrap();
        // Working tree sees the rename...
        assert!(real.exists() && !tmp.exists());
        // ...but power dies before the directory fsync.
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert!(tmp.exists(), "unsynced rename must roll back to the source");
        assert!(!real.exists());
        assert_eq!(fs::read(&tmp).unwrap(), b"v1");
    }

    #[test]
    fn dir_sync_makes_rename_durable() {
        let dir = tmpdir("rename-sync");
        let vfs = FaultVfs::new();
        let tmp = dir.join("x.tmp");
        let real = dir.join("x");
        let mut f = vfs.create(&tmp).unwrap();
        f.append(b"v1").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&tmp, &real).unwrap();
        vfs.sync_dir(&dir).unwrap();
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert!(!tmp.exists());
        assert_eq!(fs::read(&real).unwrap(), b"v1");
    }

    #[test]
    fn short_write_tears_the_working_tree_only() {
        let dir = tmpdir("short");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"base").unwrap();
        f.sync().unwrap();
        vfs.arm(FaultKind::ShortWrite, 0);
        let err = f.append(b"12345678").unwrap_err();
        assert!(err.to_string().contains("short_write"), "{err}");
        assert_eq!(vfs.injected(), 1);
        // Working tree has the torn prefix; the durable image does not.
        assert_eq!(fs::read(&path).unwrap(), b"base1234");
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"base");
    }

    #[test]
    fn failed_sync_leaves_durable_image_stale() {
        let dir = tmpdir("failsync");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"old").unwrap();
        f.sync().unwrap();
        f.set_len(0).unwrap();
        f.append(b"new").unwrap();
        vfs.arm(FaultKind::FailSync, 0);
        assert!(f.sync().is_err());
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"old");
    }

    #[test]
    fn torn_rename_reports_success_but_is_not_durable() {
        let dir = tmpdir("torn-rename");
        let vfs = FaultVfs::new();
        let tmp = dir.join("s.tmp");
        let real = dir.join("s");
        let mut f = vfs.create(&tmp).unwrap();
        f.append(b"snap").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.arm(FaultKind::TornRename, 0);
        vfs.rename(&tmp, &real).unwrap(); // reports success!
        assert!(vfs.is_powered_off());
        assert!(vfs.sync_dir(&dir).is_err(), "power is off");
        vfs.materialize_durable(&dir).unwrap();
        assert!(tmp.exists() && !real.exists());
    }

    #[test]
    fn power_cut_freezes_everything() {
        let dir = tmpdir("powercut");
        let vfs = FaultVfs::new();
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"kept").unwrap();
        f.sync().unwrap();
        vfs.arm(FaultKind::PowerCut, 0);
        assert!(f
            .append(b"never")
            .unwrap_err()
            .to_string()
            .contains("power"));
        assert!(f.sync().is_err());
        assert!(vfs.create(&dir.join("g")).is_err());
        assert!(vfs.read(&path).is_err());
        vfs.materialize_durable(&dir).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"kept");
    }

    #[test]
    fn step_counting_targets_the_nth_matching_op() {
        let dir = tmpdir("nth");
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&dir.join("f")).unwrap();
        vfs.arm(FaultKind::ShortWrite, 2);
        f.append(b"aa").unwrap();
        f.sync().unwrap(); // not an append: does not advance the counter
        f.append(b"bb").unwrap();
        assert!(f.append(b"cc").is_err());
        assert_eq!(vfs.injected(), 1);
        // Plan consumed: later appends succeed again.
        f.append(b"dd").unwrap();
    }

    #[test]
    fn op_log_records_order() {
        let dir = tmpdir("oplog");
        let vfs = FaultVfs::new();
        let mut f = vfs.create(&dir.join("w")).unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.sync_dir(&dir).unwrap();
        let log = vfs.op_log();
        let names: Vec<&str> = log.iter().map(|s| s.split(' ').next().unwrap()).collect();
        assert_eq!(names, vec!["create", "append", "sync", "sync_dir"]);
    }

    #[test]
    fn unsynced_rename_source_materializes_empty() {
        // fsync(file) was skipped before rename + dir sync: the directory
        // entry is durable but the data is not.
        let dir = tmpdir("empty-rename");
        let vfs = FaultVfs::new();
        let tmp = dir.join("x.tmp");
        let real = dir.join("x");
        vfs.create(&tmp).unwrap().append(b"data").unwrap();
        vfs.rename(&tmp, &real).unwrap();
        vfs.sync_dir(&dir).unwrap();
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert_eq!(fs::read(&real).unwrap(), b"");
    }
}
