//! Directory-backed blob store with Unix-style protections.
//!
//! The HAM's `createGraph` takes a `Directory × Protections` and
//! `changeNodeProtection` sets *"the protections for the file storing the
//! contents of node NodeIndex"* (paper §A.2). A [`BlobStore`] maps u64
//! object ids onto files inside a graph directory and carries the paper's
//! `Protections` domain through to the filesystem where the platform
//! supports it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::vfs::{StdVfs, Vfs};

/// The paper's `Protections` domain: "one of the possible file protection
/// modes". Modeled as the classic owner/group/other read-write triplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Protections {
    /// Unix-style permission bits (e.g. `0o644`).
    pub mode: u32,
}

impl Protections {
    /// Owner read/write, group and world read.
    pub const DEFAULT: Protections = Protections { mode: 0o644 };
    /// Owner read/write only.
    pub const PRIVATE: Protections = Protections { mode: 0o600 };
    /// Read-only for everyone.
    pub const READ_ONLY: Protections = Protections { mode: 0o444 };

    /// Whether the owner may write under these protections.
    pub fn owner_writable(&self) -> bool {
        self.mode & 0o200 != 0
    }
}

impl Default for Protections {
    fn default() -> Self {
        Protections::DEFAULT
    }
}

impl crate::codec::Encode for Protections {
    fn encode(&self, w: &mut crate::codec::Writer) {
        w.put_u64(self.mode as u64);
    }
}

impl crate::codec::Decode for Protections {
    fn decode(r: &mut crate::codec::Reader<'_>) -> Result<Self> {
        Ok(Protections {
            mode: r.get_u64()? as u32,
        })
    }
}

/// A store of uninterpreted blobs, one file per object id.
#[derive(Debug)]
pub struct BlobStore {
    vfs: Arc<dyn Vfs>,
    root: PathBuf,
    protections: Protections,
}

impl BlobStore {
    /// Open (creating if needed) a blob store rooted at `root` on the
    /// standard filesystem.
    pub fn open(root: impl AsRef<Path>, protections: Protections) -> Result<BlobStore> {
        Self::open_with(StdVfs::arc(), root, protections)
    }

    /// Open (creating if needed) a blob store rooted at `root` through
    /// `vfs`.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        root: impl AsRef<Path>,
        protections: Protections,
    ) -> Result<BlobStore> {
        let root = root.as_ref().to_path_buf();
        vfs.create_dir_all(&root)?;
        Ok(BlobStore {
            vfs,
            root,
            protections,
        })
    }

    fn path_for(&self, id: u64) -> PathBuf {
        self.root.join(format!("{id:016x}.blob"))
    }

    /// Write (or overwrite) the blob for `id`.
    ///
    /// The blob's contents are synced and the file renamed into place, but
    /// the *directory entry* is not synced here: blobs are a mirror of
    /// state the snapshot + WAL already own, and callers batching many puts
    /// (checkpointing) make them all durable with one [`BlobStore::sync_root`].
    pub fn put(&self, id: u64, contents: &[u8]) -> Result<()> {
        let path = self.path_for(id);
        let tmp = path.with_extension("blob.tmp");
        {
            let mut f = self.vfs.create(&tmp)?;
            f.append(contents)?;
            f.sync()?;
        }
        self.vfs.rename(&tmp, &path)?;
        self.vfs.set_permissions(&path, self.protections.mode)?;
        Ok(())
    }

    /// Fsync the store's directory, making every completed put/delete
    /// durable. Errors propagate — a swallowed failure here would let a
    /// checkpoint truncate the WAL with the mirror not actually on disk.
    pub fn sync_root(&self) -> Result<()> {
        self.vfs.sync_dir(&self.root)?;
        Ok(())
    }

    /// Read the blob for `id`.
    pub fn get(&self, id: u64) -> Result<Vec<u8>> {
        match self.vfs.read(&self.path_for(id)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound { id })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a blob exists for `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.vfs.exists(&self.path_for(id))
    }

    /// Delete the blob for `id` (idempotent).
    pub fn delete(&self, id: u64) -> Result<()> {
        match self.vfs.remove_file(&self.path_for(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Apply `protections` to the blob for `id` — the HAM's
    /// `changeNodeProtection`.
    pub fn set_protections(&self, id: u64, protections: Protections) -> Result<()> {
        let path = self.path_for(id);
        if !self.vfs.exists(&path) {
            return Err(StorageError::NotFound { id });
        }
        self.vfs.set_permissions(&path, protections.mode)?;
        Ok(())
    }

    /// All object ids currently stored, unsorted.
    pub fn ids(&self) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for name in self.vfs.read_dir(&self.root)? {
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".blob") {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    ids.push(id);
                }
            }
        }
        Ok(ids)
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn store(name: &str) -> BlobStore {
        let dir = std::env::temp_dir().join(format!("neptune-blob-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        BlobStore::open(dir, Protections::DEFAULT).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store("rt");
        s.put(1, b"node one").unwrap();
        s.put(2, b"").unwrap();
        assert_eq!(s.get(1).unwrap(), b"node one".to_vec());
        assert_eq!(s.get(2).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_replaces() {
        let s = store("ow");
        s.put(7, b"old").unwrap();
        s.put(7, b"new contents").unwrap();
        assert_eq!(s.get(7).unwrap(), b"new contents".to_vec());
    }

    #[test]
    fn missing_blob_is_not_found() {
        let s = store("missing");
        assert!(matches!(s.get(99), Err(StorageError::NotFound { id: 99 })));
        assert!(!s.contains(99));
    }

    #[test]
    fn delete_is_idempotent() {
        let s = store("del");
        s.put(3, b"x").unwrap();
        s.delete(3).unwrap();
        s.delete(3).unwrap();
        assert!(!s.contains(3));
    }

    #[test]
    fn ids_lists_contents() {
        let s = store("ids");
        s.put(10, b"a").unwrap();
        s.put(20, b"b").unwrap();
        let mut ids = s.ids().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![10, 20]);
    }

    #[cfg(unix)]
    #[test]
    fn protections_are_applied() {
        use std::os::unix::fs::PermissionsExt;
        let s = store("prot");
        s.put(5, b"guarded").unwrap();
        s.set_protections(5, Protections::READ_ONLY).unwrap();
        let meta = fs::metadata(s.root().join(format!("{:016x}.blob", 5u64))).unwrap();
        assert_eq!(meta.permissions().mode() & 0o777, 0o444);
        // Restore writability so temp cleanup works elsewhere.
        s.set_protections(5, Protections::DEFAULT).unwrap();
    }

    #[test]
    fn set_protections_on_missing_blob_fails() {
        let s = store("prot-missing");
        assert!(s.set_protections(42, Protections::PRIVATE).is_err());
    }

    #[test]
    fn protections_helpers() {
        assert!(Protections::DEFAULT.owner_writable());
        assert!(!Protections::READ_ONLY.owner_writable());
    }
}
