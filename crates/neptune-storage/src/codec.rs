//! A small, explicit binary codec.
//!
//! The HAM persists graphs and speaks its wire protocol using this codec
//! rather than a general-purpose serialization framework: the set of domains
//! is small and closed (see the paper's Appendix), and a bespoke format keeps
//! the on-disk representation auditable and stable.
//!
//! Integers are varint-encoded ([`crate::varint`]); byte strings and
//! sequences are length-prefixed. [`Encode`]/[`Decode`] are implemented for
//! the primitives the HAM needs and compose structurally for containers.

use crate::error::{Result, StorageError};
use crate::varint;
use std::sync::Arc;

/// Incremental writer that appends encoded values to a byte buffer.
///
/// Large shared payloads can be spliced in by reference with
/// [`Writer::put_bytes_shared`]: the `Arc` is recorded alongside the offset
/// it belongs at instead of being copied into the buffer, and consumers that
/// stream the encoding ([`Writer::for_each_chunk`]) never materialize a
/// contiguous copy.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    /// Shared segments spliced into the output, as `(offset_in_buf, bytes)`:
    /// the segment's bytes belong between `buf[..offset]` and `buf[offset..]`.
    /// Offsets are non-decreasing (append-only writer).
    segments: Vec<(usize, Arc<[u8]>)>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer {
            buf: Vec::new(),
            segments: Vec::new(),
        }
    }

    /// Create a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
            segments: Vec::new(),
        }
    }

    /// Append an unsigned varint.
    pub fn put_u64(&mut self, v: u64) {
        varint::write_u64(&mut self.buf, v);
    }

    /// Append a signed (zig-zag) varint.
    pub fn put_i64(&mut self, v: i64) {
        varint::write_i64(&mut self.buf, v);
    }

    /// Append a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append an IEEE-754 double, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed byte string *by reference*: only the varint
    /// length lands in the buffer; the payload `Arc` is recorded for splicing
    /// at stream-out time. Encoding a cached node version this way is a
    /// refcount bump, not a memcpy.
    pub fn put_bytes_shared(&mut self, bytes: Arc<[u8]>) {
        self.put_u64(bytes.len() as u64);
        if !bytes.is_empty() {
            self.segments.push((self.buf.len(), bytes));
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Encode `value` into this writer.
    pub fn put<T: Encode + ?Sized>(&mut self, value: &T) {
        value.encode(self);
    }

    /// Number of bytes written so far, shared segments included.
    pub fn len(&self) -> usize {
        self.buf.len() + self.segments.iter().map(|(_, s)| s.len()).sum::<usize>()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.segments.is_empty()
    }

    /// Reset the writer for reuse, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.segments.clear();
    }

    /// Visit the encoded bytes in order as a sequence of contiguous chunks,
    /// without materializing shared segments into one buffer.
    pub fn for_each_chunk(&self, mut f: impl FnMut(&[u8])) {
        let mut pos = 0;
        for (offset, segment) in &self.segments {
            if *offset > pos {
                f(&self.buf[pos..*offset]);
                pos = *offset;
            }
            f(segment);
        }
        if pos < self.buf.len() {
            f(&self.buf[pos..]);
        }
    }

    /// Consume the writer, returning the encoded bytes. Shared segments are
    /// copied into place here (the one deliberate materialization point).
    pub fn into_bytes(self) -> Vec<u8> {
        if self.segments.is_empty() {
            return self.buf;
        }
        let mut out = Vec::with_capacity(self.len());
        self.for_each_chunk(|chunk| out.extend_from_slice(chunk));
        out
    }

    /// Borrow the bytes written so far.
    ///
    /// Only valid while no shared segments are pending; use
    /// [`Writer::for_each_chunk`] or [`Writer::into_bytes`] otherwise.
    pub fn as_slice(&self) -> &[u8] {
        debug_assert!(
            self.segments.is_empty(),
            "as_slice() cannot represent pending shared segments"
        );
        &self.buf
    }
}

/// Read a little-endian `u32` at `offset`, or `None` when the input ends
/// first. File-decode paths must degrade truncated input to errors, never
/// panic (DESIGN.md §12), so they use these checked reads instead of
/// indexing.
pub fn read_u32_at(bytes: &[u8], offset: usize) -> Option<u32> {
    let chunk = bytes.get(offset..offset.checked_add(4)?)?;
    Some(u32::from_le_bytes(chunk.try_into().ok()?))
}

/// Read a little-endian `u64` at `offset`, or `None` when the input ends
/// first. See [`read_u32_at`].
pub fn read_u64_at(bytes: &[u8], offset: usize) -> Option<u64> {
    let chunk = bytes.get(offset..offset.checked_add(8)?)?;
    Some(u64::from_le_bytes(chunk.try_into().ok()?))
}

/// Cursor that decodes values from the front of a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap `input` for decoding.
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Whether the entire input has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset into the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decode an unsigned varint.
    pub fn get_u64(&mut self) -> Result<u64> {
        let (v, used) = varint::read_u64(&self.input[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Decode a signed (zig-zag) varint.
    pub fn get_i64(&mut self) -> Result<i64> {
        let (v, used) = varint::read_i64(&self.input[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Decode one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let b = *self
            .input
            .get(self.pos)
            .ok_or(StorageError::UnexpectedEof { context: "u8" })?;
        self.pos += 1;
        Ok(b)
    }

    /// Decode a boolean; any nonzero byte other than 1 is rejected.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(StorageError::InvalidTag {
                context: "bool",
                tag: tag as u64,
            }),
        }
    }

    /// Decode a little-endian IEEE-754 double.
    pub fn get_f64(&mut self) -> Result<f64> {
        let raw = self.get_raw(8, "f64")?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(f64::from_le_bytes(arr))
    }

    /// Take exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::UnexpectedEof { context });
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Decode a length-prefixed byte string, borrowing from the input.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u64()? as usize;
        self.get_raw(len, "byte string")
    }

    /// Decode a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| StorageError::InvalidUtf8)
    }

    /// Decode a value of type `T`.
    pub fn get<T: Decode>(&mut self) -> Result<T> {
        T::decode(self)
    }
}

/// Types that can serialize themselves into a [`Writer`].
pub trait Encode {
    /// Append the binary form of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Encode into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types that can deserialize themselves from a [`Reader`].
pub trait Decode: Sized {
    /// Decode one value from the front of `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Decode from a complete byte slice, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_at_end() {
            return Err(StorageError::InvalidTag {
                context: "trailing bytes",
                tag: r.remaining() as u64,
            });
        }
        Ok(v)
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}
impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_u64()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}
impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = r.get_u64()?;
        u32::try_from(v).map_err(|_| StorageError::InvalidTag {
            context: "u32",
            tag: v,
        })
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}
impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_i64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_bool()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}
impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.get_f64()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.get_str()?.to_owned())
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.get_bytes()?.to_vec())
    }
}

/// Shared byte buffers encode exactly like `Vec<u8>` on the wire but are
/// spliced by reference instead of copied.
impl Encode for Arc<[u8]> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes_shared(self.clone());
    }
}
impl Decode for Arc<[u8]> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.get_bytes()?.into())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(StorageError::InvalidTag {
                context: "Option",
                tag: tag as u64,
            }),
        }
    }
}

/// Sequences encode as a count followed by each element.
///
/// A blanket impl would collide with `Vec<u8>`'s byte-string form, so
/// sequences of encodable values go through these helpers instead.
pub fn encode_seq<T: Encode>(items: &[T], w: &mut Writer) {
    w.put_u64(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

/// Decode a sequence written by [`encode_seq`].
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>> {
    let len = r.get_u64()? as usize;
    // Guard against hostile lengths: never pre-allocate more than the
    // remaining input could possibly hold (1 byte per element minimum).
    let mut out = Vec::with_capacity(len.min(r.remaining()));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}
impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.put_u64(300);
        w.put_i64(-5);
        w.put_bool(true);
        w.put_f64(2.5);
        w.put_str("hypertext");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 300);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "hypertext");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_at_end());
    }

    #[test]
    fn option_roundtrips() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_bytes(&some.to_bytes()).unwrap(), some);
        assert_eq!(Option::<u64>::from_bytes(&none.to_bytes()).unwrap(), none);
    }

    #[test]
    fn seq_roundtrips() {
        let items = vec!["a".to_string(), "bb".to_string(), "".to_string()];
        let mut w = Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded: Vec<String> = decode_seq(&mut r).unwrap();
        assert_eq!(decoded, items);
        assert!(r.is_at_end());
    }

    #[test]
    fn tuples_roundtrip() {
        let v = (5u64, "x".to_string(), false);
        let decoded = <(u64, String, bool)>::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(decoded, v);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0xAB);
        assert!(u64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bool_rejects_other_tags() {
        let mut r = Reader::new(&[2]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn hostile_length_prefix_does_not_overallocate() {
        // Claims 2^60 elements but provides none.
        let mut w = Writer::new();
        w.put_u64(1u64 << 60);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(decode_seq::<u64>(&mut r).is_err());
    }

    #[test]
    fn shared_bytes_splice_identically_to_owned() {
        // The wire form must be byte-for-byte identical whether the payload
        // was copied (put_bytes) or spliced by reference (put_bytes_shared).
        let payload = vec![7u8; 300];
        let mut owned = Writer::new();
        owned.put_u64(1);
        owned.put_bytes(&payload);
        owned.put_str("tail");

        let mut shared = Writer::new();
        shared.put_u64(1);
        shared.put_bytes_shared(Arc::<[u8]>::from(payload.clone()));
        shared.put_str("tail");

        assert_eq!(shared.len(), owned.len());
        let mut streamed = Vec::new();
        shared.for_each_chunk(|chunk| streamed.extend_from_slice(chunk));
        assert_eq!(streamed, owned.as_slice());
        assert_eq!(shared.into_bytes(), owned.into_bytes());
    }

    #[test]
    fn shared_bytes_are_not_copied_into_the_buffer() {
        let payload: Arc<[u8]> = Arc::from(vec![9u8; 1024]);
        let mut w = Writer::new();
        w.put_bytes_shared(payload.clone());
        // Only the varint length prefix lands in the internal buffer; the
        // payload itself rides as a refcount on the original allocation.
        assert_eq!(Arc::strong_count(&payload), 2);
        assert_eq!(w.len(), 1024 + 2);
        w.clear();
        assert_eq!(Arc::strong_count(&payload), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn arc_bytes_roundtrip_through_codec() {
        let v: Arc<[u8]> = Arc::from(&b"shared contents"[..]);
        let bytes = v.to_bytes();
        assert_eq!(bytes, b"shared contents".to_vec().to_bytes());
        let back = Arc::<[u8]>::from_bytes(&bytes).unwrap();
        assert_eq!(&back[..], &v[..]);
        // Empty payloads take the no-segment fast path.
        let empty: Arc<[u8]> = Arc::from(&b""[..]);
        let back = Arc::<[u8]>::from_bytes(&empty.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn interleaved_shared_segments_stream_in_order() {
        let a: Arc<[u8]> = Arc::from(&b"AAAA"[..]);
        let b: Arc<[u8]> = Arc::from(&b"BB"[..]);
        let mut w = Writer::new();
        w.put_bytes_shared(a);
        w.put_u8(b'-');
        w.put_bytes_shared(b);
        w.put_u8(b'!');
        let mut flat = Vec::new();
        w.for_each_chunk(|chunk| flat.extend_from_slice(chunk));
        assert_eq!(flat, b"\x04AAAA-\x02BB!");
        assert_eq!(w.into_bytes(), b"\x04AAAA-\x02BB!");
    }

    #[test]
    fn u32_range_checked() {
        let bytes = (u32::MAX as u64 + 1).to_bytes();
        assert!(u32::from_bytes(&bytes).is_err());
        let ok = u32::MAX.to_bytes();
        assert_eq!(u32::from_bytes(&ok).unwrap(), u32::MAX);
    }
}
