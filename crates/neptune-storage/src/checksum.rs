//! CRC-32 (IEEE 802.3 polynomial) checksums.
//!
//! Every durable record written by the storage layer — write-ahead log
//! entries, archive files, snapshots — carries a CRC-32 so that torn writes
//! and bit rot are detected at read time rather than silently corrupting a
//! hypergraph.

/// The reflected IEEE polynomial used by zlib, PNG, Ethernet, etc.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 hasher.
///
/// ```
/// use neptune_storage::checksum::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finish(), neptune_storage::checksum::crc32(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Create a hasher in its initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finalize and return the checksum. The hasher may not be reused.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 5000, 9999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"neptune hypertext abstract machine".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut tampered = data.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&tampered),
                    original,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
