//! CRC-32 (IEEE 802.3 polynomial) checksums.
//!
//! Every durable record written by the storage layer — write-ahead log
//! entries, archive files, snapshots — carries a CRC-32 so that torn writes
//! and bit rot are detected at read time rather than silently corrupting a
//! hypergraph.

/// The reflected IEEE polynomial used by zlib, PNG, Ethernet, etc.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables, computed at compile time. Table 0 is the
/// classic byte-at-a-time table; table `t` advances a byte's contribution
/// through `t` further zero bytes, which lets `update` fold 8 input bytes
/// per step instead of 1 — the difference between ~0.4 GB/s and multiple
/// GB/s, which matters because every wire frame and WAL record is hashed.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Incremental CRC-32 hasher.
///
/// ```
/// use neptune_storage::checksum::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finish(), neptune_storage::checksum::crc32(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Create a hasher in its initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finalize and return the checksum. The hasher may not be reused.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 5000, 9999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"neptune hypertext abstract machine".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut tampered = data.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&tampered),
                    original,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
