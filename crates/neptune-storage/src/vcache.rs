//! Bounded LRU cache of materialized node versions.
//!
//! `Archive::checkout` of an old version replays a backward-delta chain;
//! the hierarchical skip ladder (see [`crate::archive`]) bounds that replay
//! to O(log n) applications, and this cache
//! removes it entirely for repeated reads: the HAM keys fully materialized
//! contents by `(context, node, resolved time)` so the second checkout of
//! any version is a hash lookup. Entries are `Arc`'d byte buffers; the cache
//! is bounded both by entry count and by total payload bytes, evicting the
//! least-recently-used entry first. "Efficient Snapshot Retrieval over
//! Historical Graph Data" (see PAPERS.md) motivates exactly this
//! materialization layer over delta chains.
//!
//! The cache is a plain struct with `&mut` methods; the HAM wraps it in an
//! `Arc<Mutex<_>>` shared between the live store and every published
//! committed view, so lock-free snapshot readers warm the same cache.
//!
//! ## Generations
//!
//! Version keys are only stable while history is append-only. A rollback
//! rewinds the version clock, so an old `(context, node, time)` key may be
//! re-bound to different contents afterwards — and with epoch-published
//! snapshot views, a reader holding a *pre-rollback* view may still be
//! materializing old contents concurrently. To keep one reader's stale
//! bytes from outliving the view that produced them, the cache carries a
//! **generation** counter: every entry is tagged with the generation it
//! was inserted under, [`MaterializationCache::clear`] (the rollback/abort
//! invalidation) bumps the generation, lookups pinned to an old generation
//! miss, and inserts pinned to an old generation are dropped. A published
//! view pins the generation current at publish time; the exclusive write
//! path always uses the live generation.

use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: `(context id, node id, resolved version time)`.
///
/// The time component is always a *resolved* version time (an actual
/// check-in time), never the raw request time, so every alias of a version
/// shares one entry.
pub type VersionKey = (u64, u64, u64);

/// Default maximum number of cached versions.
pub const DEFAULT_MAX_ENTRIES: usize = 256;

/// Default maximum total payload bytes (16 MiB).
pub const DEFAULT_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// Counters and occupancy for a [`MaterializationCache`], as reported over
/// the wire by the server's `CacheStats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a materialized version.
    pub hits: u64,
    /// Lookups that missed (including lookups while disabled).
    pub misses: u64,
    /// Versions currently cached.
    pub entries: u64,
    /// Total payload bytes currently cached.
    pub bytes: u64,
}

struct CacheEntry {
    /// Immutable shared contents: handed out by refcount bump, shared with
    /// the archive/check-in path that produced them.
    data: Arc<[u8]>,
    last_used: u64,
    /// Generation this entry was inserted under; see the module docs.
    generation: u64,
}

/// Mirror one lookup into the global registry's
/// `neptune_storage_vcache_{hits,misses}_total` counters. Occupancy
/// (`entries`/`bytes`) is instead gauged at scrape time by whoever renders
/// the registry, from [`MaterializationCache::stats`].
fn observe_lookup(hit: bool) {
    use std::sync::OnceLock;
    static HITS: OnceLock<Arc<neptune_obs::Counter>> = OnceLock::new();
    static MISSES: OnceLock<Arc<neptune_obs::Counter>> = OnceLock::new();
    if !neptune_obs::enabled() {
        return;
    }
    if hit {
        HITS.get_or_init(|| neptune_obs::registry().counter("neptune_storage_vcache_hits_total"))
            .inc();
    } else {
        MISSES
            .get_or_init(|| neptune_obs::registry().counter("neptune_storage_vcache_misses_total"))
            .inc();
    }
}

/// A bounded, LRU-evicting map from [`VersionKey`] to materialized contents.
pub struct MaterializationCache {
    map: HashMap<VersionKey, CacheEntry>,
    max_entries: usize,
    max_bytes: u64,
    cur_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    enabled: bool,
    generation: u64,
}

impl Default for MaterializationCache {
    fn default() -> Self {
        MaterializationCache::new(DEFAULT_MAX_ENTRIES, DEFAULT_MAX_BYTES)
    }
}

impl std::fmt::Debug for MaterializationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaterializationCache")
            .field("entries", &self.map.len())
            .field("bytes", &self.cur_bytes)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("enabled", &self.enabled)
            .field("generation", &self.generation)
            .finish()
    }
}

impl MaterializationCache {
    /// Create a cache bounded by `max_entries` versions and `max_bytes`
    /// total payload.
    pub fn new(max_entries: usize, max_bytes: u64) -> Self {
        MaterializationCache {
            map: HashMap::new(),
            max_entries,
            max_bytes,
            cur_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            enabled: true,
            generation: 1,
        }
    }

    /// The live generation. Entries inserted now carry this tag; a
    /// committed view captures it at publish time and passes it back to
    /// [`MaterializationCache::get_pinned`] /
    /// [`MaterializationCache::insert_pinned`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Force the generation strictly past `floor`. Used when a cache is
    /// reconfigured (replaced wholesale): the successor must not reuse
    /// generation numbers that outstanding views may still be pinned to.
    pub fn advance_generation_past(&mut self, floor: u64) {
        if self.generation <= floor {
            self.generation = floor + 1;
        }
    }

    /// Whether lookups and inserts are active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn the cache on or off; turning it off drops every entry so a
    /// disabled cache holds no memory and serves no stale data when
    /// re-enabled.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.clear();
        }
    }

    /// Look up a materialized version at the live generation, refreshing
    /// its recency on a hit.
    pub fn get(&mut self, key: &VersionKey) -> Option<Arc<[u8]>> {
        let generation = self.generation;
        self.get_pinned(generation, key)
    }

    /// Look up a materialized version on behalf of a reader pinned to
    /// `generation`. Entries from any other generation miss: an older
    /// reader must not see bytes cached after its history was rewound,
    /// and a current reader must not see bytes a stale view produced.
    pub fn get_pinned(&mut self, generation: u64, key: &VersionKey) -> Option<Arc<[u8]>> {
        if !self.enabled {
            self.misses += 1;
            observe_lookup(false);
            return None;
        }
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                entry.last_used = self.tick;
                self.hits += 1;
                observe_lookup(true);
                Some(entry.data.clone())
            }
            _ => {
                self.misses += 1;
                observe_lookup(false);
                None
            }
        }
    }

    /// Insert a materialized version at the live generation, evicting
    /// least-recently-used entries until the bounds hold. Payloads larger
    /// than the byte budget are simply not cached.
    pub fn insert(&mut self, key: VersionKey, data: Arc<[u8]>) {
        let generation = self.generation;
        self.insert_pinned(generation, key, data);
    }

    /// Insert on behalf of a reader pinned to `generation`. Dropped
    /// silently when `generation` is no longer live: a reader holding a
    /// pre-rollback view must not publish its stale materialization into
    /// the cache the post-rollback world reads from.
    pub fn insert_pinned(&mut self, generation: u64, key: VersionKey, data: Arc<[u8]>) {
        if generation != self.generation
            || !self.enabled
            || data.len() as u64 > self.max_bytes
            || self.max_entries == 0
        {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.cur_bytes -= old.data.len() as u64;
        }
        self.cur_bytes += data.len() as u64;
        self.map.insert(
            key,
            CacheEntry {
                data,
                last_used: self.tick,
                generation,
            },
        );
        while self.map.len() > self.max_entries || self.cur_bytes > self.max_bytes {
            // O(n) min-scan; at the default 256 entries this is cheaper than
            // maintaining an ordered index and needs no extra allocation.
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(evicted) = self.map.remove(&victim) {
                self.cur_bytes -= evicted.data.len() as u64;
            }
        }
    }

    /// Drop every cached version belonging to `context`. Called when a
    /// context's history is rewound (transaction abort truncates archives,
    /// so old `(node, time)` pairs may be re-bound to different contents) or
    /// the context is destroyed.
    pub fn invalidate_context(&mut self, context: u64) {
        let mut freed = 0u64;
        self.map.retain(|(ctx, _, _), entry| {
            if *ctx == context {
                freed += entry.data.len() as u64;
                false
            } else {
                true
            }
        });
        self.cur_bytes -= freed;
    }

    /// Drop every entry, keeping the hit/miss counters, and start a new
    /// generation: clear is the invalidation for history rewinds, after
    /// which readers pinned to older generations must never hit or insert
    /// again (see the module docs).
    pub fn clear(&mut self) {
        self.map.clear();
        self.cur_bytes = 0;
        self.generation += 1;
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len() as u64,
            bytes: self.cur_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(bytes: &[u8]) -> Arc<[u8]> {
        Arc::from(bytes)
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let mut c = MaterializationCache::default();
        assert!(c.get(&(1, 1, 1)).is_none());
        c.insert((1, 1, 1), arc(b"v1"));
        assert_eq!(&c.get(&(1, 1, 1)).unwrap()[..], b"v1");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 2));
    }

    #[test]
    fn evicts_least_recently_used_on_entry_bound() {
        let mut c = MaterializationCache::new(2, 1 << 20);
        c.insert((1, 1, 1), arc(b"a"));
        c.insert((1, 1, 2), arc(b"b"));
        // Touch the first so the second becomes the LRU victim.
        assert!(c.get(&(1, 1, 1)).is_some());
        c.insert((1, 1, 3), arc(b"c"));
        assert!(c.get(&(1, 1, 1)).is_some());
        assert!(c.get(&(1, 1, 2)).is_none(), "LRU entry should be evicted");
        assert!(c.get(&(1, 1, 3)).is_some());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn evicts_on_byte_bound_and_skips_oversized() {
        let mut c = MaterializationCache::new(100, 10);
        c.insert((1, 1, 1), arc(&[0u8; 6]));
        c.insert((1, 1, 2), arc(&[0u8; 6]));
        assert_eq!(c.stats().entries, 1, "6+6 exceeds 10 bytes");
        assert!(c.get(&(1, 1, 2)).is_some());
        // An entry bigger than the whole budget is not cached at all.
        c.insert((1, 1, 3), arc(&[0u8; 11]));
        assert!(c.get(&(1, 1, 3)).is_none());
        assert_eq!(c.stats().bytes, 6);
    }

    #[test]
    fn reinsert_same_key_replaces_without_leaking_bytes() {
        let mut c = MaterializationCache::default();
        c.insert((1, 2, 3), arc(&[0u8; 8]));
        c.insert((1, 2, 3), arc(&[0u8; 4]));
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (1, 4));
    }

    #[test]
    fn invalidate_context_is_selective() {
        let mut c = MaterializationCache::default();
        c.insert((1, 1, 1), arc(b"keep"));
        c.insert((2, 1, 1), arc(b"drop"));
        c.insert((2, 9, 4), arc(b"drop too"));
        c.invalidate_context(2);
        assert!(c.get(&(1, 1, 1)).is_some());
        assert!(c.get(&(2, 1, 1)).is_none());
        assert!(c.get(&(2, 9, 4)).is_none());
        assert_eq!(c.stats().bytes, 4);
    }

    #[test]
    fn disabled_cache_misses_and_holds_nothing() {
        let mut c = MaterializationCache::default();
        c.insert((1, 1, 1), arc(b"x"));
        c.set_enabled(false);
        assert!(c.get(&(1, 1, 1)).is_none());
        c.insert((1, 1, 2), arc(b"y"));
        assert_eq!(c.stats().entries, 0);
        c.set_enabled(true);
        assert!(c.get(&(1, 1, 2)).is_none(), "nothing survives a disable");
    }
}
