//! Failure injection: corrupted or missing durable state must surface as
//! errors (never panics, never silent corruption), and recovery must cope
//! with everything short of losing the snapshot itself.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use neptune_ham::types::{Machine, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, HamError, Value};
use neptune_storage::{FaultKind, FaultVfs, StorageError};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-fail-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn flip_byte(path: &PathBuf, from_end: u64) {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let len = f.metadata().unwrap().len();
    let pos = len.saturating_sub(from_end + 1);
    f.seek(SeekFrom::Start(pos)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(pos)).unwrap();
    f.write_all(&[b[0] ^ 0xFF]).unwrap();
}

#[test]
fn corrupt_snapshot_is_detected_on_open() {
    let dir = tmpdir("snap");
    let (mut ham, pid, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.checkpoint().unwrap();
    drop(ham);
    flip_byte(&dir.join("graph.snap"), 0);
    let err = Ham::open_graph(pid, &Machine::local(), &dir);
    assert!(err.is_err(), "corrupt snapshot must not open");
}

#[test]
fn corrupt_meta_is_detected() {
    let dir = tmpdir("meta");
    let (ham, pid, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    drop(ham);
    flip_byte(&dir.join("graph.meta"), 0);
    assert!(Ham::open_graph(pid, &Machine::local(), &dir).is_err());
}

#[test]
fn torn_wal_tail_recovers_committed_prefix() {
    let dir = tmpdir("torn-wal");
    let pid;
    let node;
    {
        let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        pid = p;
        let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        node = n;
        ham.modify_node(MAIN_CONTEXT, n, t, b"survives\n".to_vec(), &[])
            .unwrap();
    }
    // Simulate a torn write at the end of the log.
    {
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0xAB, 0xCD]).unwrap();
    }
    let (mut ham, ctx) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
    assert_eq!(
        ham.open_node(ctx, node, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"survives\n"[..]
    );
    // The machine keeps working after recovery.
    ham.add_node(ctx, true).unwrap();
    ham.checkpoint().unwrap();
}

#[test]
fn corrupted_wal_record_truncates_replay_to_prefix() {
    let dir = tmpdir("corrupt-wal");
    let pid;
    let first;
    {
        let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        pid = p;
        let (a, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        first = a;
        ham.modify_node(MAIN_CONTEXT, a, t, b"first txn\n".to_vec(), &[])
            .unwrap();
        let (b, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(MAIN_CONTEXT, b, t, b"second txn\n".to_vec(), &[])
            .unwrap();
    }
    // Corrupt a byte near the end: the last transaction's records die, the
    // earlier prefix must still replay.
    flip_byte(&dir.join("wal.log"), 4);
    let (mut ham, ctx) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
    assert_eq!(
        ham.open_node(ctx, first, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"first txn\n"[..]
    );
}

#[test]
fn missing_graph_directory_is_an_error() {
    let dir = tmpdir("missing");
    assert!(Ham::open_existing(&dir).is_err());
    assert!(Ham::destroy_graph(neptune_ham::ProjectId(1), &dir).is_err());
}

#[test]
fn double_begin_and_stray_commit_are_errors() {
    let dir = tmpdir("txn-state");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    assert!(ham.commit_transaction().is_err());
    assert!(ham.abort_transaction().is_err());
    ham.begin_transaction().unwrap();
    assert!(ham.begin_transaction().is_err());
    assert!(
        ham.checkpoint().is_err(),
        "no checkpoint inside a transaction"
    );
    ham.abort_transaction().unwrap();
    ham.checkpoint().unwrap();
}

#[test]
fn failing_op_inside_explicit_txn_leaves_txn_usable() {
    let dir = tmpdir("failing-op");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (node, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"base\n".to_vec(), &[])
        .unwrap();

    ham.begin_transaction().unwrap();
    let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"inside txn\n".to_vec(), &[])
        .unwrap();
    // A failing operation (stale time) does not poison the transaction...
    assert!(ham
        .modify_node(MAIN_CONTEXT, node, Time(1), b"stale\n".to_vec(), &[])
        .is_err());
    // ...and the earlier work still commits.
    ham.commit_transaction().unwrap();
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"inside txn\n"[..]
    );
}

#[test]
fn deleted_objects_reject_all_mutation() {
    let dir = tmpdir("deleted");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (a, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (l, _) = ham
        .add_link(
            MAIN_CONTEXT,
            neptune_ham::LinkPt::current(a, 0),
            neptune_ham::LinkPt::current(b, 0),
        )
        .unwrap();
    let attr = ham.get_attribute_index(MAIN_CONTEXT, "x").unwrap();
    ham.delete_node(MAIN_CONTEXT, a).unwrap();
    // The node and its cascaded link are dead.
    assert!(ham
        .modify_node(MAIN_CONTEXT, a, Time::CURRENT, b"zombie".to_vec(), &[])
        .is_err());
    assert!(ham
        .set_node_attribute_value(MAIN_CONTEXT, a, attr, Value::Int(1))
        .is_err());
    assert!(ham
        .set_link_attribute_value(MAIN_CONTEXT, l, attr, Value::Int(1))
        .is_err());
    assert!(ham.delete_link(MAIN_CONTEXT, l).is_err());
    assert!(ham
        .set_node_demon(MAIN_CONTEXT, a, neptune_ham::Event::NodeOpened, None)
        .is_err());
    // But history stays readable.
    assert!(ham.get_node_versions(MAIN_CONTEXT, a).is_ok());
}

#[test]
fn wal_grows_then_checkpoint_shrinks_it() {
    let dir = tmpdir("wal-size");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (node, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let attr = ham.get_attribute_index(MAIN_CONTEXT, "v").unwrap();
    for i in 0..50 {
        ham.set_node_attribute_value(MAIN_CONTEXT, node, attr, Value::Int(i))
            .unwrap();
    }
    let before = fs::metadata(dir.join("wal.log")).unwrap().len();
    ham.checkpoint().unwrap();
    let after = fs::metadata(dir.join("wal.log")).unwrap().len();
    assert!(
        after < before / 2,
        "checkpoint truncates the log ({before} -> {after})"
    );
    // And node blobs were mirrored with contents.
    assert!(dir.join("nodes").exists());
}

#[test]
fn failed_commit_sync_rolls_back_and_poisons_the_wal() {
    let dir = tmpdir("commit-sync");
    let vfs = FaultVfs::new();
    let (mut ham, _, _) =
        Ham::create_graph_with(Arc::new(vfs.clone()), &dir, Protections::DEFAULT).unwrap();
    let (node, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"durable\n".to_vec(), &[])
        .unwrap();

    // The next fsync is the commit's group sync: the transaction's records
    // reach the WAL file but their durability is unknown.
    ham.begin_transaction().unwrap();
    let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"lost\n".to_vec(), &[])
        .unwrap();
    vfs.arm(FaultKind::FailSync, 0);
    assert!(ham.commit_transaction().is_err());
    assert_eq!(vfs.injected(), 1, "fault must have hit the commit sync");
    vfs.disarm();

    // The failed commit rolled back: readers see the last durable state,
    // not changes a crash would lose.
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"durable\n"[..]
    );
    // The WAL is fail-stop after an unknown-durability sync: every further
    // mutation refuses until the log is reopened.
    assert!(matches!(
        ham.add_node(MAIN_CONTEXT, true),
        Err(HamError::Storage(StorageError::LogPoisoned))
    ));
    assert!(matches!(
        ham.checkpoint(),
        Err(HamError::Storage(StorageError::LogPoisoned))
    ));
    drop(ham);

    // Reopen clears the poisoning and recovers exactly the committed state.
    let (mut ham, _, _) = Ham::open_existing_with(Arc::new(vfs.clone()), &dir).unwrap();
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"durable\n"[..]
    );
    ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.checkpoint().unwrap();
}

#[test]
fn failed_checkpoint_side_effect_is_recoverable() {
    // A fault during the snapshot/blob-mirror phase surfaces as an error,
    // but the WAL is untouched: the store keeps accepting commits and a
    // retried checkpoint succeeds.
    let dir = tmpdir("ckpt-retry");
    let vfs = FaultVfs::new();
    let (mut ham, _, _) =
        Ham::create_graph_with(Arc::new(vfs.clone()), &dir, Protections::DEFAULT).unwrap();
    let (node, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"kept\n".to_vec(), &[])
        .unwrap();

    // The first create during checkpoint is the snapshot temp file.
    vfs.arm(FaultKind::FailWrite, 0);
    assert!(ham.checkpoint().is_err());
    assert_eq!(vfs.injected(), 1);
    vfs.disarm();

    let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"kept v2\n".to_vec(), &[])
        .unwrap();
    ham.checkpoint().unwrap();
    drop(ham);

    let (mut ham, _, _) = Ham::open_existing_with(Arc::new(vfs), &dir).unwrap();
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"kept v2\n"[..]
    );
}

#[test]
fn read_only_node_blob_still_checkpoints() {
    // changeNodeProtection to read-only must not wedge later checkpoints
    // (the blob store rewrites via a fresh temp file).
    let dir = tmpdir("ro-blob");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (node, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"v1\n".to_vec(), &[])
        .unwrap();
    ham.change_node_protection(MAIN_CONTEXT, node, Protections::READ_ONLY)
        .unwrap();
    ham.checkpoint().unwrap();
    let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t, b"v2\n".to_vec(), &[])
        .unwrap();
    ham.checkpoint().unwrap();
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"v2\n"[..]
    );
}
