//! Property-based tests for HAM invariants.
//!
//! The central invariants under test:
//! * any random sequence of HAM operations leaves every historical query
//!   answerable (complete version history);
//! * aborting a transaction restores the exact pre-transaction state;
//! * persistence (snapshot + WAL replay) reproduces the exact state;
//! * `Versioned<T>` behaves like an append-only map from time to value.

use proptest::prelude::*;

use neptune_ham::graph::HamGraph;
use neptune_ham::history::Versioned;
use neptune_ham::predicate::Predicate;
use neptune_ham::query::get_graph_query;
use neptune_ham::types::{LinkPt, NodeIndex, ProjectId, Time};
use neptune_ham::value::Value;

use neptune_storage::codec::{Decode, Encode};

/// A randomized mutation against a graph.
#[derive(Debug, Clone)]
enum GraphOp {
    AddNode(bool),
    DeleteNode(usize),
    AddLink(usize, usize, u64),
    DeleteLink(usize),
    ModifyNode(usize, Vec<u8>),
    SetAttr(usize, u8, u8),
    DeleteAttr(usize, u8),
}

fn op_strategy() -> impl Strategy<Value = GraphOp> {
    prop_oneof![
        any::<bool>().prop_map(GraphOp::AddNode),
        (any::<usize>()).prop_map(GraphOp::DeleteNode),
        (any::<usize>(), any::<usize>(), 0u64..100).prop_map(|(a, b, o)| GraphOp::AddLink(a, b, o)),
        (any::<usize>()).prop_map(GraphOp::DeleteLink),
        (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(n, c)| GraphOp::ModifyNode(n, c)),
        (any::<usize>(), any::<u8>(), any::<u8>()).prop_map(|(n, a, v)| GraphOp::SetAttr(n, a % 4, v)),
        (any::<usize>(), any::<u8>()).prop_map(|(n, a)| GraphOp::DeleteAttr(n, a % 4)),
    ]
}

const ATTR_NAMES: [&str; 4] = ["document", "contentType", "status", "owner"];

/// Apply an op, mapping arbitrary indices onto live objects; unmatched ops
/// become no-ops so every generated sequence is valid.
fn apply(graph: &mut HamGraph, op: &GraphOp) {
    let live_nodes: Vec<NodeIndex> = graph
        .nodes()
        .filter(|n| n.exists_at(Time::CURRENT))
        .map(|n| n.id)
        .collect();
    let live_links: Vec<_> = graph
        .links()
        .filter(|l| l.exists_at(Time::CURRENT))
        .map(|l| l.id)
        .collect();
    match op {
        GraphOp::AddNode(keep) => {
            graph.add_node(*keep);
        }
        GraphOp::DeleteNode(i) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                graph.delete_node(id).unwrap();
            }
        }
        GraphOp::AddLink(a, b, offset) => {
            if !live_nodes.is_empty() {
                let from = live_nodes[a % live_nodes.len()];
                let to = live_nodes[b % live_nodes.len()];
                graph
                    .add_link(LinkPt::current(from, *offset), LinkPt::current(to, 0))
                    .unwrap();
            }
        }
        GraphOp::DeleteLink(i) => {
            if !live_links.is_empty() {
                let id = live_links[i % live_links.len()];
                graph.delete_link(id).unwrap();
            }
        }
        GraphOp::ModifyNode(i, contents) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                // Only archive nodes accept historical modification here.
                if graph.node(id).unwrap().is_archive() {
                    let now = graph.tick();
                    graph.node_mut(id).unwrap().modify(contents.clone(), now, "prop").unwrap();
                }
            }
        }
        GraphOp::SetAttr(i, a, v) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                let attr = graph.attribute_index(ATTR_NAMES[*a as usize]);
                graph.set_node_attr(id, attr, Value::Int(*v as i64)).unwrap();
            }
        }
        GraphOp::DeleteAttr(i, a) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                let attr = graph.attribute_index(ATTR_NAMES[*a as usize]);
                let _ = graph.delete_node_attr(id, attr);
            }
        }
    }
}

/// Snapshot of all observable state at a time, for equivalence checks.
fn observe(graph: &HamGraph, time: Time) -> String {
    let mut out = String::new();
    for n in graph.nodes() {
        if !n.exists_at(time) {
            continue;
        }
        out.push_str(&format!("node {} ", n.id.0));
        if n.is_archive() {
            if let Ok(c) = n.contents_at(time) {
                out.push_str(&format!("contents={c:?} "));
            }
        }
        for (attr, value) in n.attrs.all_at(time) {
            out.push_str(&format!("{}={} ", attr.0, value));
        }
        out.push('\n');
    }
    for l in graph.links() {
        if !l.exists_at(time) {
            continue;
        }
        out.push_str(&format!(
            "link {} {}->{} @{:?}\n",
            l.id.0,
            l.from.node.0,
            l.to.node.0,
            l.from.position_at(time)
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating the graph never disturbs what historical times observe.
    #[test]
    fn history_is_immutable(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut graph = HamGraph::new(ProjectId(1));
        let mut checkpoints: Vec<(Time, String)> = Vec::new();
        for op in &ops {
            apply(&mut graph, op);
            let now = graph.now();
            checkpoints.push((now, observe(&graph, now)));
        }
        // Every past observation must still hold.
        for (time, expected) in &checkpoints {
            prop_assert_eq!(&observe(&graph, *time), expected);
        }
    }

    /// truncate_after(t) restores exactly the state observed at t, and the
    /// full current state matches what it was then.
    #[test]
    fn rollback_restores_observed_state(
        ops_before in proptest::collection::vec(op_strategy(), 1..20),
        ops_after in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let mut graph = HamGraph::new(ProjectId(1));
        for op in &ops_before {
            apply(&mut graph, op);
        }
        let checkpoint = graph.now();
        let expected = observe(&graph, Time::CURRENT);
        for op in &ops_after {
            apply(&mut graph, op);
        }
        graph.truncate_after(checkpoint);
        prop_assert_eq!(observe(&graph, Time::CURRENT), expected);
        prop_assert_eq!(graph.now(), checkpoint);
    }

    /// Encoding and decoding a graph preserves every observable time.
    #[test]
    fn graph_codec_is_faithful(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let mut graph = HamGraph::new(ProjectId(7));
        for op in &ops {
            apply(&mut graph, op);
        }
        let decoded = HamGraph::from_bytes(&graph.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &graph);
        for t in 1..=graph.now().0 {
            prop_assert_eq!(observe(&decoded, Time(t)), observe(&graph, Time(t)));
        }
    }

    /// The indexed query path always agrees with the scan path.
    #[test]
    fn indexed_query_equals_scan(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut graph = HamGraph::new(ProjectId(3));
        for op in &ops {
            apply(&mut graph, op);
        }
        for v in 0..4u8 {
            let pred = Predicate::parse(&format!("document = {v}")).unwrap();
            let fast = get_graph_query(&graph, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
            let slow = neptune_ham::query::get_graph_query_scan(
                &graph, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
            prop_assert_eq!(fast, slow);
        }
    }

    /// Versioned cells answer get_at consistently with a naive model.
    #[test]
    fn versioned_cell_matches_model(
        writes in proptest::collection::vec((1u64..100, proptest::option::of(any::<u32>())), 1..30)
    ) {
        // Sort and dedup times to satisfy the monotonic-write contract.
        let mut writes = writes;
        writes.sort_by_key(|(t, _)| *t);
        let mut cell: Versioned<u32> = Versioned::new();
        let mut model: Vec<(u64, Option<u32>)> = Vec::new();
        for (t, v) in &writes {
            match v {
                Some(v) => cell.set(Time(*t), *v),
                None => cell.delete(Time(*t)),
            }
            if model.last().map(|(mt, _)| *mt) == Some(*t) {
                model.last_mut().unwrap().1 = *v;
            } else {
                model.push((*t, *v));
            }
        }
        for q in 0..110u64 {
            let expected = model
                .iter()
                .rev()
                .find(|(t, _)| *t <= q && q > 0)
                .and_then(|(_, v)| v.as_ref());
            // q == 0 means CURRENT.
            let expected = if q == 0 {
                model.last().and_then(|(_, v)| v.as_ref())
            } else {
                expected
            };
            prop_assert_eq!(cell.get_at(Time(q)), expected, "query at {}", q);
        }
    }
}
