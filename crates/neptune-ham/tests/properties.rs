//! Randomized (seeded, deterministic) tests for HAM invariants.
//!
//! The central invariants under test:
//! * any random sequence of HAM operations leaves every historical query
//!   answerable (complete version history);
//! * rolling back to a checkpoint restores the exact observed state;
//! * persistence (snapshot + WAL replay) reproduces the exact state;
//! * `Versioned<T>` behaves like an append-only map from time to value.

use neptune_ham::graph::HamGraph;
use neptune_ham::history::Versioned;
use neptune_ham::predicate::Predicate;
use neptune_ham::query::get_graph_query;
use neptune_ham::types::{LinkPt, NodeIndex, ProjectId, Time};
use neptune_ham::value::Value;

use neptune_storage::codec::{Decode, Encode};
use neptune_storage::testutil::XorShift;

/// A randomized mutation against a graph.
#[derive(Debug, Clone)]
enum GraphOp {
    AddNode(bool),
    DeleteNode(usize),
    AddLink(usize, usize, u64),
    DeleteLink(usize),
    ModifyNode(usize, Vec<u8>),
    SetAttr(usize, u8, u8),
    DeleteAttr(usize, u8),
}

fn gen_op(rng: &mut XorShift) -> GraphOp {
    match rng.below(7) {
        0 => GraphOp::AddNode(rng.chance(1, 2)),
        1 => GraphOp::DeleteNode(rng.next_u64() as usize),
        2 => GraphOp::AddLink(
            rng.next_u64() as usize,
            rng.next_u64() as usize,
            rng.below(100),
        ),
        3 => GraphOp::DeleteLink(rng.next_u64() as usize),
        4 => {
            let target = rng.next_u64() as usize;
            let len = rng.below(40) as usize;
            GraphOp::ModifyNode(target, rng.bytes(len))
        }
        5 => GraphOp::SetAttr(
            rng.next_u64() as usize,
            rng.below(4) as u8,
            rng.below(256) as u8,
        ),
        _ => GraphOp::DeleteAttr(rng.next_u64() as usize, rng.below(4) as u8),
    }
}

fn gen_ops(rng: &mut XorShift, min: usize, max: usize) -> Vec<GraphOp> {
    let count = min + rng.below((max - min) as u64) as usize;
    (0..count).map(|_| gen_op(rng)).collect()
}

const ATTR_NAMES: [&str; 4] = ["document", "contentType", "status", "owner"];

/// Apply an op, mapping arbitrary indices onto live objects; unmatched ops
/// become no-ops so every generated sequence is valid.
fn apply(graph: &mut HamGraph, op: &GraphOp) {
    let live_nodes: Vec<NodeIndex> = graph
        .nodes()
        .filter(|n| n.exists_at(Time::CURRENT))
        .map(|n| n.id)
        .collect();
    let live_links: Vec<_> = graph
        .links()
        .filter(|l| l.exists_at(Time::CURRENT))
        .map(|l| l.id)
        .collect();
    match op {
        GraphOp::AddNode(keep) => {
            graph.add_node(*keep);
        }
        GraphOp::DeleteNode(i) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                graph.delete_node(id).unwrap();
            }
        }
        GraphOp::AddLink(a, b, offset) => {
            if !live_nodes.is_empty() {
                let from = live_nodes[a % live_nodes.len()];
                let to = live_nodes[b % live_nodes.len()];
                graph
                    .add_link(LinkPt::current(from, *offset), LinkPt::current(to, 0))
                    .unwrap();
            }
        }
        GraphOp::DeleteLink(i) => {
            if !live_links.is_empty() {
                let id = live_links[i % live_links.len()];
                graph.delete_link(id).unwrap();
            }
        }
        GraphOp::ModifyNode(i, contents) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                // Only archive nodes accept historical modification here.
                if graph.node(id).unwrap().is_archive() {
                    let now = graph.tick();
                    graph
                        .node_mut(id)
                        .unwrap()
                        .modify(contents.clone(), now, "prop")
                        .unwrap();
                }
            }
        }
        GraphOp::SetAttr(i, a, v) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                let attr = graph.attribute_index(ATTR_NAMES[*a as usize]);
                graph
                    .set_node_attr(id, attr, Value::Int(*v as i64))
                    .unwrap();
            }
        }
        GraphOp::DeleteAttr(i, a) => {
            if !live_nodes.is_empty() {
                let id = live_nodes[i % live_nodes.len()];
                let attr = graph.attribute_index(ATTR_NAMES[*a as usize]);
                let _ = graph.delete_node_attr(id, attr);
            }
        }
    }
}

/// Snapshot of all observable state at a time, for equivalence checks.
fn observe(graph: &HamGraph, time: Time) -> String {
    let mut out = String::new();
    for n in graph.nodes() {
        if !n.exists_at(time) {
            continue;
        }
        out.push_str(&format!("node {} ", n.id.0));
        if n.is_archive() {
            if let Ok(c) = n.contents_at(time) {
                out.push_str(&format!("contents={c:?} "));
            }
        }
        for (attr, value) in n.attrs.all_at(time) {
            out.push_str(&format!("{}={} ", attr.0, value));
        }
        out.push('\n');
    }
    for l in graph.links() {
        if !l.exists_at(time) {
            continue;
        }
        out.push_str(&format!(
            "link {} {}->{} @{:?}\n",
            l.id.0,
            l.from.node.0,
            l.to.node.0,
            l.from.position_at(time)
        ));
    }
    out
}

/// Mutating the graph never disturbs what historical times observe.
#[test]
fn history_is_immutable() {
    let mut rng = XorShift::new(0xA001);
    for _ in 0..64 {
        let ops = gen_ops(&mut rng, 1, 40);
        let mut graph = HamGraph::new(ProjectId(1));
        let mut checkpoints: Vec<(Time, String)> = Vec::new();
        for op in &ops {
            apply(&mut graph, op);
            let now = graph.now();
            checkpoints.push((now, observe(&graph, now)));
        }
        // Every past observation must still hold.
        for (time, expected) in &checkpoints {
            assert_eq!(&observe(&graph, *time), expected);
        }
    }
}

/// truncate_after(t) restores exactly the state observed at t, and the
/// full current state matches what it was then.
#[test]
fn rollback_restores_observed_state() {
    let mut rng = XorShift::new(0xA002);
    for _ in 0..64 {
        let ops_before = gen_ops(&mut rng, 1, 20);
        let ops_after = gen_ops(&mut rng, 1, 20);
        let mut graph = HamGraph::new(ProjectId(1));
        for op in &ops_before {
            apply(&mut graph, op);
        }
        let checkpoint = graph.now();
        let expected = observe(&graph, Time::CURRENT);
        for op in &ops_after {
            apply(&mut graph, op);
        }
        graph.truncate_after(checkpoint);
        assert_eq!(observe(&graph, Time::CURRENT), expected);
        assert_eq!(graph.now(), checkpoint);
    }
}

/// Encoding and decoding a graph preserves every observable time.
#[test]
fn graph_codec_is_faithful() {
    let mut rng = XorShift::new(0xA003);
    for _ in 0..64 {
        let ops = gen_ops(&mut rng, 1, 30);
        let mut graph = HamGraph::new(ProjectId(7));
        for op in &ops {
            apply(&mut graph, op);
        }
        let decoded = HamGraph::from_bytes(&graph.to_bytes()).unwrap();
        assert_eq!(&decoded, &graph);
        for t in 1..=graph.now().0 {
            assert_eq!(observe(&decoded, Time(t)), observe(&graph, Time(t)));
        }
    }
}

/// The indexed query path always agrees with the scan path.
#[test]
fn indexed_query_equals_scan() {
    let mut rng = XorShift::new(0xA004);
    for _ in 0..64 {
        let ops = gen_ops(&mut rng, 1, 40);
        let mut graph = HamGraph::new(ProjectId(3));
        for op in &ops {
            apply(&mut graph, op);
        }
        for v in 0..4u8 {
            let pred = Predicate::parse(&format!("document = {v}")).unwrap();
            let fast =
                get_graph_query(&graph, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
            let slow = neptune_ham::query::get_graph_query_scan(
                &graph,
                Time::CURRENT,
                &pred,
                &Predicate::True,
                &[],
                &[],
            )
            .unwrap();
            assert_eq!(fast, slow);
        }
    }
}

/// Versioned cells answer get_at consistently with a naive model.
#[test]
fn versioned_cell_matches_model() {
    let mut rng = XorShift::new(0xA005);
    for _ in 0..64 {
        let count = 1 + rng.below(29) as usize;
        let mut writes: Vec<(u64, Option<u32>)> = (0..count)
            .map(|_| {
                let t = 1 + rng.below(99);
                let v = if rng.chance(3, 4) {
                    Some(rng.next_u64() as u32)
                } else {
                    None
                };
                (t, v)
            })
            .collect();
        // Sort times to satisfy the monotonic-write contract.
        writes.sort_by_key(|(t, _)| *t);
        let mut cell: Versioned<u32> = Versioned::new();
        let mut model: Vec<(u64, Option<u32>)> = Vec::new();
        for (t, v) in &writes {
            match v {
                Some(v) => cell.set(Time(*t), *v),
                None => cell.delete(Time(*t)),
            }
            if model.last().map(|(mt, _)| *mt) == Some(*t) {
                model.last_mut().unwrap().1 = *v;
            } else {
                model.push((*t, *v));
            }
        }
        for q in 0..110u64 {
            let expected = model
                .iter()
                .rev()
                .find(|(t, _)| *t <= q && q > 0)
                .and_then(|(_, v)| v.as_ref());
            // q == 0 means CURRENT.
            let expected = if q == 0 {
                model.last().and_then(|(_, v)| v.as_ref())
            } else {
                expected
            };
            assert_eq!(cell.get_at(Time(q)), expected, "query at {q}");
        }
    }
}
