//! Depth-scaling regression for attribute point-gets.
//!
//! `AttrMap::get` binary-searches the sorted version vector and reports
//! every comparison to `neptune_ham_attr_probes_total` (paired with
//! `neptune_ham_attr_gets_total`). This test builds the same attribute at
//! two history depths 64x apart and asserts the mean probe count grows
//! logarithmically, not linearly — the metrics-level proof that a
//! regression back to a linear version-chain walk cannot land silently.
//!
//! Lives in its own integration-test binary so no concurrently running
//! test pollutes the process-global counters between the two windows.

use neptune_ham::types::{Protections, Time, MAIN_CONTEXT};
use neptune_ham::value::Value;
use neptune_ham::Ham;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("neptune-attr-probes-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter(name: &str) -> u64 {
    neptune_obs::registry().counter(name).get()
}

/// Build one node whose `status` attribute has `depth` versions (one
/// transaction, one fsync), returning the distinct historical times of
/// those versions.
fn deep_attr_ham(tag: &str, depth: usize) -> (Ham, Vec<Time>, std::path::PathBuf) {
    let dir = tmpdir(tag);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (node, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let attr = ham.get_attribute_index(MAIN_CONTEXT, "status").unwrap();
    ham.begin_transaction().unwrap();
    for i in 0..depth {
        ham.set_node_attribute_value(MAIN_CONTEXT, node, attr, Value::Int(i as i64))
            .unwrap();
    }
    ham.commit_transaction().unwrap();
    let (_, minor) = ham.get_node_versions(MAIN_CONTEXT, node).unwrap();
    let times: Vec<Time> = minor.iter().map(|v| v.time).collect();
    (ham, times, dir)
}

/// Mean probes per recorded get across `times.len()` historical lookups.
fn mean_probes(ham: &Ham, times: &[Time]) -> f64 {
    let (node, attr) = (
        neptune_ham::types::NodeIndex(1),
        neptune_ham::types::AttributeIndex(0),
    );
    let probes0 = counter("neptune_ham_attr_probes_total");
    let gets0 = counter("neptune_ham_attr_gets_total");
    // Stride through the whole history so lookups hit every region of the
    // version vector, not just the warm tail.
    let sample = 256.min(times.len());
    for k in 0..sample {
        let t = times[k * times.len() / sample];
        let _ = ham
            .get_node_attribute_value(MAIN_CONTEXT, node, attr, t)
            .unwrap();
    }
    let probes = counter("neptune_ham_attr_probes_total") - probes0;
    let gets = counter("neptune_ham_attr_gets_total") - gets0;
    assert!(gets >= sample as u64, "every lookup must be counted");
    probes as f64 / gets as f64
}

#[test]
fn attr_point_gets_scale_sublinearly_with_history_depth() {
    assert!(neptune_obs::enabled(), "probe metrics require obs enabled");
    let shallow_depth = 128;
    let deep_depth = 8192; // 64x deeper
    let (shallow, shallow_times, sdir) = deep_attr_ham("shallow", shallow_depth);
    let (deep, deep_times, ddir) = deep_attr_ham("deep", deep_depth);

    // The histories must really be that deep — each set got its own clock
    // tick, so a coalescing bug can't silently trivialize the test.
    assert!(shallow_times.len() >= shallow_depth);
    assert!(deep_times.len() >= deep_depth);
    // And historical reads really resolve distinct versions.
    let node = neptune_ham::types::NodeIndex(1);
    let attr = neptune_ham::types::AttributeIndex(0);
    let early = deep
        .get_node_attribute_value(MAIN_CONTEXT, node, attr, deep_times[0])
        .unwrap();
    let late = deep
        .get_node_attribute_value(MAIN_CONTEXT, node, attr, Time::CURRENT)
        .unwrap();
    assert_eq!(early, Value::Int(0));
    assert_eq!(late, Value::Int(deep_depth as i64 - 1));

    let shallow_mean = mean_probes(&shallow, &shallow_times);
    let deep_mean = mean_probes(&deep, &deep_times);

    // log2(8192)=13 vs log2(128)=7: the ratio should sit near 13/7 ≈ 1.9.
    // A linear walk would put the ratio near 64 and the deep mean near
    // 4096; both bounds have wide safety margins over the log behavior.
    assert!(
        deep_mean <= 24.0,
        "deep history mean probes {deep_mean:.1} exceeds O(log n) bound \
         (linear walk would be ~{})",
        deep_depth / 2
    );
    assert!(
        deep_mean / shallow_mean <= 4.0,
        "probe growth {deep_mean:.1}/{shallow_mean:.1} across a 64x depth \
         increase is super-logarithmic"
    );

    drop(shallow);
    drop(deep);
    let _ = std::fs::remove_dir_all(&sdir);
    let _ = std::fs::remove_dir_all(&ddir);
}
