//! Recovery fuzzing (seeded, deterministic): any committed sequence of HAM
//! operations must survive a crash (drop without checkpoint) byte-for-byte
//! — WAL replay has to reproduce the exact observable state, including all
//! history.

use neptune_ham::types::{LinkPt, Machine, NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, Value};
use neptune_storage::testutil::XorShift;

#[derive(Debug, Clone)]
enum Op {
    AddNode(bool),
    Modify(usize, Vec<u8>),
    DeleteNode(usize),
    AddLink(usize, usize, u8),
    SetAttr(usize, u8, i64),
    DeleteAttr(usize, u8),
    SetDemon(u8),
    Txn(Vec<OpInner>, bool), // ops, commit?
    Checkpoint,
    Fork,
}

#[derive(Debug, Clone)]
enum OpInner {
    AddNode,
    SetAttr(usize, u8, i64),
}

const ATTRS: [&str; 3] = ["document", "status", "owner"];

/// Weighted op choice mirroring the original generation frequencies.
fn gen_op(rng: &mut XorShift) -> Op {
    match rng.below(22) {
        0..=3 => Op::AddNode(rng.chance(1, 2)),
        4..=7 => {
            let target = rng.next_u64() as usize;
            let len = rng.below(24) as usize;
            Op::Modify(target, rng.bytes(len))
        }
        8 => Op::DeleteNode(rng.next_u64() as usize),
        9..=11 => Op::AddLink(
            rng.next_u64() as usize,
            rng.next_u64() as usize,
            rng.below(256) as u8,
        ),
        12..=15 => Op::SetAttr(
            rng.next_u64() as usize,
            rng.below(3) as u8,
            rng.next_u64() as i64,
        ),
        16 => Op::DeleteAttr(rng.next_u64() as usize, rng.below(3) as u8),
        17 => Op::SetDemon(rng.below(256) as u8),
        18..=19 => {
            let count = 1 + rng.below(4) as usize;
            let inner = (0..count)
                .map(|_| {
                    if rng.chance(1, 2) {
                        OpInner::AddNode
                    } else {
                        OpInner::SetAttr(
                            rng.next_u64() as usize,
                            rng.below(3) as u8,
                            rng.next_u64() as i64,
                        )
                    }
                })
                .collect();
            Op::Txn(inner, rng.chance(1, 2))
        }
        20 => Op::Checkpoint,
        _ => Op::Fork,
    }
}

fn live_nodes(ham: &Ham) -> Vec<NodeIndex> {
    ham.graph(MAIN_CONTEXT)
        .unwrap()
        .nodes()
        .filter(|n| n.exists_at(Time::CURRENT))
        .map(|n| n.id)
        .collect()
}

fn apply(ham: &mut Ham, op: &Op) {
    let nodes = live_nodes(ham);
    match op {
        Op::AddNode(keep) => {
            ham.add_node(MAIN_CONTEXT, *keep).unwrap();
        }
        Op::Modify(i, contents) => {
            if nodes.is_empty() {
                return;
            }
            let node = nodes[i % nodes.len()];
            let opened = ham
                .open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
                .unwrap();
            ham.modify_node(
                MAIN_CONTEXT,
                node,
                opened.current_time,
                contents.clone(),
                &opened.link_pts,
            )
            .unwrap();
        }
        Op::DeleteNode(i) => {
            if !nodes.is_empty() {
                ham.delete_node(MAIN_CONTEXT, nodes[i % nodes.len()])
                    .unwrap();
            }
        }
        Op::AddLink(a, b, offset) => {
            if !nodes.is_empty() {
                let from = nodes[a % nodes.len()];
                let to = nodes[b % nodes.len()];
                ham.add_link(
                    MAIN_CONTEXT,
                    LinkPt::current(from, *offset as u64),
                    LinkPt::current(to, 0),
                )
                .unwrap();
            }
        }
        Op::SetAttr(i, a, v) => {
            if !nodes.is_empty() {
                let attr = ham
                    .get_attribute_index(MAIN_CONTEXT, ATTRS[*a as usize])
                    .unwrap();
                ham.set_node_attribute_value(
                    MAIN_CONTEXT,
                    nodes[i % nodes.len()],
                    attr,
                    Value::Int(*v),
                )
                .unwrap();
            }
        }
        Op::DeleteAttr(i, a) => {
            if !nodes.is_empty() {
                let attr = ham
                    .get_attribute_index(MAIN_CONTEXT, ATTRS[*a as usize])
                    .unwrap();
                let _ = ham.delete_node_attribute(MAIN_CONTEXT, nodes[i % nodes.len()], attr);
            }
        }
        Op::SetDemon(tag) => {
            // Only durable (non-callback) demon kinds: callbacks are
            // process-local by design.
            let demon = if tag % 3 == 0 {
                None
            } else {
                Some(neptune_ham::DemonSpec::notify("fuzz", "fired"))
            };
            let event = neptune_ham::Event::ALL[(*tag as usize) % neptune_ham::Event::ALL.len()];
            ham.set_graph_demon_value(MAIN_CONTEXT, event, demon)
                .unwrap();
        }
        Op::Txn(inner, commit) => {
            ham.begin_transaction().unwrap();
            for op in inner {
                match op {
                    OpInner::AddNode => {
                        ham.add_node(MAIN_CONTEXT, true).unwrap();
                    }
                    OpInner::SetAttr(i, a, v) => {
                        let nodes = live_nodes(ham);
                        if !nodes.is_empty() {
                            let attr = ham
                                .get_attribute_index(MAIN_CONTEXT, ATTRS[*a as usize])
                                .unwrap();
                            ham.set_node_attribute_value(
                                MAIN_CONTEXT,
                                nodes[i % nodes.len()],
                                attr,
                                Value::Int(*v),
                            )
                            .unwrap();
                        }
                    }
                }
            }
            if *commit {
                ham.commit_transaction().unwrap();
            } else {
                ham.abort_transaction().unwrap();
            }
        }
        Op::Checkpoint => ham.checkpoint().unwrap(),
        Op::Fork => {
            // Contexts must also survive recovery.
            let ctx = ham.create_context(MAIN_CONTEXT).unwrap();
            ham.add_node(ctx, true).unwrap();
        }
    }
}

/// Full observable fingerprint of a Ham across all contexts and all times.
fn fingerprint(ham: &Ham) -> String {
    let mut out = String::new();
    for ctx in ham.contexts() {
        let graph = ham.graph(ctx).unwrap();
        out.push_str(&format!("context {} clock {}\n", ctx.0, graph.now().0));
        for t in 1..=graph.now().0 {
            let time = Time(t);
            for n in graph.nodes() {
                if !n.exists_at(time) {
                    continue;
                }
                out.push_str(&format!("t{t} node {} ", n.id.0));
                if n.is_archive() {
                    if let Ok(c) = n.contents_at(time) {
                        out.push_str(&format!("{c:?} "));
                    }
                }
                for (attr, value) in n.attrs.all_at(time) {
                    out.push_str(&format!("{}={} ", attr.0, value));
                }
                out.push('\n');
            }
            for l in graph.links() {
                if l.exists_at(time) {
                    out.push_str(&format!(
                        "t{t} link {} {}->{}\n",
                        l.id.0, l.from.node.0, l.to.node.0
                    ));
                }
            }
            for (event, demon) in graph.graph_demons.all_at(time) {
                out.push_str(&format!("t{t} demon {event} {}\n", demon.name));
            }
        }
    }
    out
}

#[test]
fn committed_state_survives_crash() {
    let mut rng = XorShift::new(0xF002);
    for case in 0..24 {
        let count = 1 + rng.below(24) as usize;
        let ops: Vec<Op> = (0..count).map(|_| gen_op(&mut rng)).collect();
        let dir = std::env::temp_dir().join(format!("neptune-fuzz-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, pid, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        for op in &ops {
            apply(&mut ham, op);
        }
        let before = fingerprint(&ham);
        drop(ham); // crash: no checkpoint

        let (ham, _) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
        let after = fingerprint(&ham);
        assert_eq!(before, after, "case {case}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
