//! Lock-free committed views under concurrent mutation.
//!
//! A published [`CommittedView`] is an immutable snapshot: a reader that
//! holds one across commits, checkpoints, and rollbacks must keep seeing
//! exactly the state it captured — stale, but internally consistent. The
//! property test drives context forks, merges, and destroys from the
//! writer while lock-free readers continuously load and read views,
//! checking that every observed value is one the writer actually
//! committed (the version-materialization cache must never serve bytes
//! from a different world).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use neptune_ham::context::ConflictPolicy;
use neptune_ham::types::{NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::Ham;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-view-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn contents_of(ham: &Ham, node: NodeIndex) -> Vec<u8> {
    ham.read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
        .unwrap()
        .contents
        .to_vec()
}

fn view_contents(view: &neptune_ham::CommittedView, node: NodeIndex) -> Vec<u8> {
    view.read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
        .unwrap()
        .contents
        .to_vec()
}

/// A reader holding an old view across commit + checkpoint + rollback must
/// read consistent stale-but-valid state; each publication step must bump
/// the epoch.
#[test]
fn old_view_is_stable_across_commit_checkpoint_and_rollback() {
    let (mut ham, _, _) = Ham::create_graph(tmpdir("stable"), Protections::DEFAULT).unwrap();
    let (node, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t0, &b"v1"[..], &[])
        .unwrap();

    let old = ham.committed_view();
    assert_eq!(view_contents(&old, node), b"v1");

    // Commit a new version: the old view must not move.
    let t1 = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t1, &b"v2"[..], &[])
        .unwrap();
    let newer = ham.committed_view();
    assert!(
        newer.epoch() > old.epoch(),
        "commit must publish a new view"
    );
    assert_eq!(view_contents(&old, node), b"v1");
    assert_eq!(view_contents(&newer, node), b"v2");

    // Checkpoint folds the WAL into a snapshot; no state changes, and the
    // old view keeps reading the same bytes.
    ham.checkpoint().unwrap();
    assert_eq!(view_contents(&old, node), b"v1");
    assert_eq!(view_contents(&newer, node), b"v2");

    // A rolled-back transaction truncates in-txn history and republishes;
    // both retained views are unaffected, and the fresh view shows the
    // last committed state.
    ham.begin_transaction().unwrap();
    let t2 = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t2, &b"doomed"[..], &[])
        .unwrap();
    assert_eq!(contents_of(&ham, node), b"doomed"); // owner read-your-writes
    ham.abort_transaction().unwrap();

    let after_abort = ham.committed_view();
    assert!(after_abort.epoch() > newer.epoch());
    assert_eq!(view_contents(&old, node), b"v1");
    assert_eq!(view_contents(&newer, node), b"v2");
    assert_eq!(view_contents(&after_abort, node), b"v2");

    // Historical reads through the old view replay from its own archive
    // clone and stay correct too.
    let (major, _) = old.get_node_versions(MAIN_CONTEXT, node).unwrap();
    let (major_new, _) = after_abort.get_node_versions(MAIN_CONTEXT, node).unwrap();
    // The newer view has exactly one more committed version (v2) than the
    // old one; the aborted "doomed" version appears in neither.
    assert_eq!(major_new.len(), major.len() + 1);

    assert!(neptune_ham::invariants::view_violations(&old).is_empty());
    assert!(neptune_ham::invariants::view_violations(&after_abort).is_empty());
}

/// Property test: fork/merge/destroy contexts and roll back transactions
/// while lock-free readers hammer the published views. Every contents a
/// reader observes must be a value the writer committed, current *or*
/// historical — never an uncommitted, torn, or cross-context value served
/// from a stale cache entry.
#[test]
fn forked_and_merged_contexts_under_concurrent_lockfree_readers() {
    const ROUNDS: u64 = 40;
    const READERS: usize = 4;

    let (mut ham, _, _) = Ham::create_graph(tmpdir("fork-merge"), Protections::DEFAULT).unwrap();
    let (node, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t0, &b"round-0"[..], &[])
        .unwrap();

    let handle = ham.published_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let max_round = Arc::new(AtomicU64::new(0));

    let is_legal = |contents: &[u8], bound: u64| -> bool {
        let Ok(text) = std::str::from_utf8(contents) else {
            return false;
        };
        let Some(n) = text
            .strip_prefix("round-")
            .and_then(|r| r.parse::<u64>().ok())
        else {
            return false;
        };
        n <= bound
    };

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        let max_round = Arc::clone(&max_round);
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let view = handle.load();
                // The bound is read *after* the view: the writer is
                // sequential and stores `max_round = r` before starting
                // round r+1, so the view just loaded can show at most
                // round `max_round + 1` — and `max_round` only grows, so
                // a later read stays a sound (merely looser) bound. The
                // view itself is immutable, so nothing below races.
                let bound = max_round.load(Ordering::SeqCst) + 1;
                for ctx in view.contexts() {
                    // Current contents in any context the snapshot holds.
                    let opened = view.read_node(ctx, node, Time::CURRENT, &[]).unwrap();
                    assert!(
                        is_legal(&opened.contents, bound),
                        "illegal contents {:?} (bound {bound}, epoch {})",
                        String::from_utf8_lossy(&opened.contents),
                        view.epoch(),
                    );
                    // A historical read of the current version must agree
                    // byte-for-byte with the head read — this is the path
                    // that exercises the materialization cache, so a stale
                    // generation would surface here.
                    let again = view.read_node(ctx, node, opened.current_time, &[]).unwrap();
                    assert_eq!(again.contents, opened.contents);
                    reads += 2;
                }
                assert!(neptune_ham::invariants::view_violations(&view).is_empty());
            }
            reads
        }));
    }

    for round in 1..=ROUNDS {
        let body = format!("round-{round}").into_bytes();
        match round % 4 {
            // Fork, modify in the private world, merge back, destroy.
            0..=2 => {
                let fork = ham.create_context(MAIN_CONTEXT).unwrap();
                let t = ham.get_node_time_stamp(fork, node).unwrap();
                ham.modify_node(fork, node, t, &body[..], &[]).unwrap();
                ham.merge_context(fork, ConflictPolicy::PreferChild)
                    .unwrap();
                ham.destroy_context(fork).unwrap();
            }
            // Direct modify in main, then an aborted transaction whose
            // rollback must be invisible to every reader.
            _ => {
                let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
                ham.modify_node(MAIN_CONTEXT, node, t, &body[..], &[])
                    .unwrap();
                ham.begin_transaction().unwrap();
                let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
                ham.modify_node(MAIN_CONTEXT, node, t, &b"uncommitted"[..], &[])
                    .unwrap();
                ham.abort_transaction().unwrap();
            }
        }
        max_round.store(round, Ordering::SeqCst);
        if round % 8 == 0 {
            ham.checkpoint().unwrap();
        }
    }

    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for r in readers {
        total += r.join().unwrap();
    }
    assert!(total > 0, "readers made no progress");

    // The store itself is intact after the run.
    assert_eq!(
        contents_of(&ham, node),
        format!("round-{ROUNDS}").into_bytes()
    );
    assert!(neptune_ham::invariants::ham_violations(&ham).is_empty());
}
