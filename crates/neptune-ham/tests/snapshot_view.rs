//! Lock-free committed views under concurrent mutation.
//!
//! A published [`CommittedView`] is an immutable snapshot: a reader that
//! holds one across commits, checkpoints, and rollbacks must keep seeing
//! exactly the state it captured — stale, but internally consistent. The
//! property test drives context forks, merges, and destroys from the
//! writer while lock-free readers continuously load and read views,
//! checking that every observed value is one the writer actually
//! committed (the version-materialization cache must never serve bytes
//! from a different world).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use neptune_ham::context::ConflictPolicy;
use neptune_ham::types::{NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, ShardedHam};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-view-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn contents_of(ham: &Ham, node: NodeIndex) -> Vec<u8> {
    ham.read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
        .unwrap()
        .contents
        .to_vec()
}

fn view_contents(view: &neptune_ham::CommittedView, node: NodeIndex) -> Vec<u8> {
    view.read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
        .unwrap()
        .contents
        .to_vec()
}

/// A reader holding an old view across commit + checkpoint + rollback must
/// read consistent stale-but-valid state; each publication step must bump
/// the epoch.
#[test]
fn old_view_is_stable_across_commit_checkpoint_and_rollback() {
    let (mut ham, _, _) = Ham::create_graph(tmpdir("stable"), Protections::DEFAULT).unwrap();
    let (node, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t0, &b"v1"[..], &[])
        .unwrap();

    let old = ham.committed_view();
    assert_eq!(view_contents(&old, node), b"v1");

    // Commit a new version: the old view must not move.
    let t1 = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t1, &b"v2"[..], &[])
        .unwrap();
    let newer = ham.committed_view();
    assert!(
        newer.epoch() > old.epoch(),
        "commit must publish a new view"
    );
    assert_eq!(view_contents(&old, node), b"v1");
    assert_eq!(view_contents(&newer, node), b"v2");

    // Checkpoint folds the WAL into a snapshot; no state changes, and the
    // old view keeps reading the same bytes.
    ham.checkpoint().unwrap();
    assert_eq!(view_contents(&old, node), b"v1");
    assert_eq!(view_contents(&newer, node), b"v2");

    // A rolled-back transaction truncates in-txn history and republishes;
    // both retained views are unaffected, and the fresh view shows the
    // last committed state.
    ham.begin_transaction().unwrap();
    let t2 = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t2, &b"doomed"[..], &[])
        .unwrap();
    assert_eq!(contents_of(&ham, node), b"doomed"); // owner read-your-writes
    ham.abort_transaction().unwrap();

    let after_abort = ham.committed_view();
    assert!(after_abort.epoch() > newer.epoch());
    assert_eq!(view_contents(&old, node), b"v1");
    assert_eq!(view_contents(&newer, node), b"v2");
    assert_eq!(view_contents(&after_abort, node), b"v2");

    // Historical reads through the old view replay from its own archive
    // clone and stay correct too.
    let (major, _) = old.get_node_versions(MAIN_CONTEXT, node).unwrap();
    let (major_new, _) = after_abort.get_node_versions(MAIN_CONTEXT, node).unwrap();
    // The newer view has exactly one more committed version (v2) than the
    // old one; the aborted "doomed" version appears in neither.
    assert_eq!(major_new.len(), major.len() + 1);

    assert!(neptune_ham::invariants::view_violations(&old).is_empty());
    assert!(neptune_ham::invariants::view_violations(&after_abort).is_empty());
}

/// Property test: fork/merge/destroy contexts and roll back transactions
/// while lock-free readers hammer the published views. Every contents a
/// reader observes must be a value the writer committed, current *or*
/// historical — never an uncommitted, torn, or cross-context value served
/// from a stale cache entry.
#[test]
fn forked_and_merged_contexts_under_concurrent_lockfree_readers() {
    const ROUNDS: u64 = 40;
    const READERS: usize = 4;

    let (mut ham, _, _) = Ham::create_graph(tmpdir("fork-merge"), Protections::DEFAULT).unwrap();
    let (node, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t0, &b"round-0"[..], &[])
        .unwrap();

    let handle = ham.published_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let max_round = Arc::new(AtomicU64::new(0));

    let is_legal = |contents: &[u8], bound: u64| -> bool {
        let Ok(text) = std::str::from_utf8(contents) else {
            return false;
        };
        let Some(n) = text
            .strip_prefix("round-")
            .and_then(|r| r.parse::<u64>().ok())
        else {
            return false;
        };
        n <= bound
    };

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        let max_round = Arc::clone(&max_round);
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let view = handle.load();
                // The bound is read *after* the view: the writer is
                // sequential and stores `max_round = r` before starting
                // round r+1, so the view just loaded can show at most
                // round `max_round + 1` — and `max_round` only grows, so
                // a later read stays a sound (merely looser) bound. The
                // view itself is immutable, so nothing below races.
                let bound = max_round.load(Ordering::SeqCst) + 1;
                for ctx in view.contexts() {
                    // Current contents in any context the snapshot holds.
                    let opened = view.read_node(ctx, node, Time::CURRENT, &[]).unwrap();
                    assert!(
                        is_legal(&opened.contents, bound),
                        "illegal contents {:?} (bound {bound}, epoch {})",
                        String::from_utf8_lossy(&opened.contents),
                        view.epoch(),
                    );
                    // A historical read of the current version must agree
                    // byte-for-byte with the head read — this is the path
                    // that exercises the materialization cache, so a stale
                    // generation would surface here.
                    let again = view.read_node(ctx, node, opened.current_time, &[]).unwrap();
                    assert_eq!(again.contents, opened.contents);
                    reads += 2;
                }
                assert!(neptune_ham::invariants::view_violations(&view).is_empty());
            }
            reads
        }));
    }

    for round in 1..=ROUNDS {
        let body = format!("round-{round}").into_bytes();
        match round % 4 {
            // Fork, modify in the private world, merge back, destroy.
            0..=2 => {
                let fork = ham.create_context(MAIN_CONTEXT).unwrap();
                let t = ham.get_node_time_stamp(fork, node).unwrap();
                ham.modify_node(fork, node, t, &body[..], &[]).unwrap();
                ham.merge_context(fork, ConflictPolicy::PreferChild)
                    .unwrap();
                ham.destroy_context(fork).unwrap();
            }
            // Direct modify in main, then an aborted transaction whose
            // rollback must be invisible to every reader.
            _ => {
                let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
                ham.modify_node(MAIN_CONTEXT, node, t, &body[..], &[])
                    .unwrap();
                ham.begin_transaction().unwrap();
                let t = ham.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
                ham.modify_node(MAIN_CONTEXT, node, t, &b"uncommitted"[..], &[])
                    .unwrap();
                ham.abort_transaction().unwrap();
            }
        }
        max_round.store(round, Ordering::SeqCst);
        if round % 8 == 0 {
            ham.checkpoint().unwrap();
        }
    }

    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for r in readers {
        total += r.join().unwrap();
    }
    assert!(total > 0, "readers made no progress");

    // The store itself is intact after the run.
    assert_eq!(
        contents_of(&ham, node),
        format!("round-{ROUNDS}").into_bytes()
    );
    assert!(neptune_ham::invariants::ham_violations(&ham).is_empty());
}

/// Same fork/merge/destroy property, but across a sharded store: the
/// writer forks contexts that land on *other* shards (global id
/// allocation spreads them round-robin), merges them back through the
/// two-phase cross-shard path, and destroys them — while readers assemble
/// [`MultiView`]s lock-free the whole time. Every value a reader observes
/// through any assembled view must be one the writer committed, and a
/// multi-view pinned mid-run must keep reading its exact snapshot after
/// later merges and destroys.
///
/// [`MultiView`]: neptune_ham::MultiView
#[test]
fn multi_shard_fork_merge_destroy_under_lockfree_readers() {
    const SHARDS: usize = 3;
    const ROUNDS: u64 = 30;
    const READERS: usize = 3;

    let (sharded, _, _) =
        ShardedHam::create(tmpdir("multi-shard"), Protections::DEFAULT, SHARDS).unwrap();
    let sharded = Arc::new(sharded);
    let node = {
        let mut main = sharded.lock_home(MAIN_CONTEXT).unwrap();
        let (node, t0) = main.add_node(MAIN_CONTEXT, true).unwrap();
        main.modify_node(MAIN_CONTEXT, node, t0, &b"round-0"[..], &[])
            .unwrap();
        node
    };

    let stop = Arc::new(AtomicBool::new(false));
    let max_round = Arc::new(AtomicU64::new(0));

    let is_legal = |contents: &[u8], bound: u64| -> bool {
        std::str::from_utf8(contents)
            .ok()
            .and_then(|text| text.strip_prefix("round-"))
            .and_then(|r| r.parse::<u64>().ok())
            .is_some_and(|n| n <= bound)
    };

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let sharded = Arc::clone(&sharded);
        let stop = Arc::clone(&stop);
        let max_round = Arc::clone(&max_round);
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            let mut last_seq = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let mv = sharded.multi_view();
                // Published views only move forward, so the assembled
                // sequence ceiling must be monotonic per reader.
                assert!(mv.max_seq() >= last_seq, "multi-view went backwards");
                last_seq = mv.max_seq();
                // Bound read after the view, exactly as in the unsharded
                // test: the sequential writer stores `max_round = r`
                // before starting round r+1.
                let bound = max_round.load(Ordering::SeqCst) + 1;
                for ctx in mv.contexts() {
                    let opened = mv
                        .view_for(ctx)
                        .read_node(ctx, node, Time::CURRENT, &[])
                        .unwrap();
                    assert!(
                        is_legal(&opened.contents, bound),
                        "illegal contents {:?} in context {ctx:?} (bound {bound})",
                        String::from_utf8_lossy(&opened.contents),
                    );
                    reads += 1;
                }
            }
            reads
        }));
    }

    let mut pinned: Option<(neptune_ham::MultiView, Vec<u8>)> = None;
    for round in 1..=ROUNDS {
        let body = format!("round-{round}").into_bytes();
        // Fork (usually onto another shard), modify in the private world,
        // cross-shard merge back, destroy the fork.
        let fork = sharded.create_context(MAIN_CONTEXT).unwrap();
        {
            let mut guard = sharded.lock_home(fork).unwrap();
            let t = guard.get_node_time_stamp(fork, node).unwrap();
            guard.modify_node(fork, node, t, &body[..], &[]).unwrap();
        }
        sharded
            .merge_context(fork, ConflictPolicy::PreferChild)
            .unwrap();
        sharded.destroy_context(fork).unwrap();
        max_round.store(round, Ordering::SeqCst);
        if round == ROUNDS / 2 {
            // Pin a snapshot mid-run; later merges and destroys must not
            // move it.
            let mv = sharded.multi_view();
            let contents = mv
                .view_for(MAIN_CONTEXT)
                .read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
                .unwrap()
                .contents
                .to_vec();
            assert_eq!(contents, body);
            pinned = Some((mv, contents));
        }
        if round % 10 == 0 {
            sharded.checkpoint().unwrap();
        }
    }

    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for r in readers {
        total += r.join().unwrap();
    }
    assert!(total > 0, "readers made no progress");

    // The pinned mid-run snapshot still reads its exact bytes.
    let (pinned_mv, pinned_contents) = pinned.expect("mid-run snapshot was pinned");
    assert_eq!(
        pinned_mv
            .view_for(MAIN_CONTEXT)
            .read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap()
            .contents
            .to_vec(),
        pinned_contents
    );

    // The store is intact: only MAIN survives, holding the last round.
    assert_eq!(sharded.live_contexts(), vec![MAIN_CONTEXT]);
    let main = sharded.lock_home(MAIN_CONTEXT).unwrap();
    assert_eq!(
        contents_of(&main, node),
        format!("round-{ROUNDS}").into_bytes()
    );
    drop(main);
    assert!(sharded.violations().is_empty());
}

/// Metrics-proof stress: 4 writers commit on disjoint home shards (with
/// periodic cross-shard fork/merge pairs) while 4 readers assemble
/// [`MultiView`]s continuously. `neptune_ham_multiview_torn_total` — the
/// defensive counter behind the full-lock fallback — must not move: the
/// assembly protocol never hands out a view set in which a cross-shard
/// commit is half visible.
///
/// [`MultiView`]: neptune_ham::MultiView
#[test]
fn cross_shard_stress_produces_zero_torn_multiviews() {
    const SHARDS: usize = 4;
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const WRITER_ROUNDS: u64 = 40;

    neptune_obs::registry().set_enabled(true);
    let torn = neptune_obs::registry().counter("neptune_ham_multiview_torn_total");
    let cross = neptune_obs::registry().counter("neptune_ham_cross_shard_txns_total");
    let torn_before = torn.get();
    let cross_before = cross.get();

    let (sharded, _, _) =
        ShardedHam::create(tmpdir("torn-stress"), Protections::DEFAULT, SHARDS).unwrap();
    let sharded = Arc::new(sharded);
    let node = {
        let mut main = sharded.lock_home(MAIN_CONTEXT).unwrap();
        let (node, t0) = main.add_node(MAIN_CONTEXT, true).unwrap();
        main.modify_node(MAIN_CONTEXT, node, t0, &b"seed"[..], &[])
            .unwrap();
        node
    };
    // One context per writer; sequential global ids put them on distinct
    // home shards (ids 1..=4 → shards 1, 2, 3, 0).
    let ctxs: Vec<_> = (0..WRITERS)
        .map(|_| sharded.create_context(MAIN_CONTEXT).unwrap())
        .collect();
    let homes: std::collections::BTreeSet<usize> =
        ctxs.iter().map(|&c| sharded.shard_of(c)).collect();
    assert_eq!(homes.len(), WRITERS, "writer contexts must be disjoint");

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..READERS {
        let sharded = Arc::clone(&sharded);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            let mut last_seq = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let mv = sharded.multi_view();
                assert!(mv.max_seq() >= last_seq, "multi-view went backwards");
                last_seq = mv.max_seq();
                for ctx in mv.contexts() {
                    let opened = mv
                        .view_for(ctx)
                        .read_node(ctx, node, Time::CURRENT, &[])
                        .unwrap();
                    assert!(!opened.contents.is_empty());
                    reads += 1;
                }
            }
            reads
        }));
    }

    let mut writers = Vec::new();
    for (i, &ctx) in ctxs.iter().enumerate() {
        let sharded = Arc::clone(&sharded);
        writers.push(std::thread::spawn(move || {
            for round in 1..=WRITER_ROUNDS {
                let body = format!("w{i}-r{round}").into_bytes();
                {
                    let mut guard = sharded.lock_home(ctx).unwrap();
                    let t = guard.get_node_time_stamp(ctx, node).unwrap();
                    guard.modify_node(ctx, node, t, &body[..], &[]).unwrap();
                }
                if round % 8 == 0 {
                    // Cross-shard pair: fork off this writer's context,
                    // modify, merge back (two shards commit under one
                    // sequence number), destroy the fork.
                    let fork = sharded.create_context(ctx).unwrap();
                    {
                        let mut guard = sharded.lock_home(fork).unwrap();
                        let t = guard.get_node_time_stamp(fork, node).unwrap();
                        guard.modify_node(fork, node, t, &body[..], &[]).unwrap();
                    }
                    sharded
                        .merge_context(fork, ConflictPolicy::PreferChild)
                        .unwrap();
                    sharded.destroy_context(fork).unwrap();
                }
            }
        }));
    }

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for r in readers {
        total += r.join().unwrap();
    }
    assert!(total > 0, "readers made no progress");

    // The run really exercised cross-shard commit pairs…
    assert!(
        cross.get() > cross_before,
        "stress produced no cross-shard transactions"
    );
    // …and not a single assembled view was torn.
    assert_eq!(
        torn.get(),
        torn_before,
        "multi-view assembly handed out a torn cross-shard snapshot"
    );
    assert!(sharded.violations().is_empty());
}
