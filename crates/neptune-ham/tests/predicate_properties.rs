//! Property tests for the predicate language: display/parse roundtrips,
//! evaluation laws, and decoder robustness.

use proptest::prelude::*;

use neptune_ham::predicate::{CmpOp, Predicate};
use neptune_ham::value::Value;

fn attr_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(s.as_str(), "and" | "or" | "not" | "exists" | "true" | "false")
    })
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(Value::Str),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (attr_name(), cmp_op(), literal())
            .prop_map(|(attr, op, value)| Predicate::Cmp { attr, op, value }),
        attr_name().prop_map(Predicate::Exists),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| Predicate::Not(Box::new(p))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Predicate::Or(Box::new(a), Box::new(b))),
        ]
    })
}

/// A small environment of attribute values to evaluate against.
fn environment() -> impl Strategy<Value = Vec<(String, Value)>> {
    proptest::collection::vec((attr_name(), literal()), 0..6)
}

fn lookup<'a>(env: &'a [(String, Value)]) -> impl Fn(&str) -> Option<Value> + 'a {
    move |name: &str| env.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone())
}

proptest! {
    /// display → parse preserves evaluation on every environment tested.
    #[test]
    fn display_parse_preserves_semantics(p in predicate(), env in environment()) {
        let text = p.to_string();
        let reparsed = Predicate::parse(&text)
            .unwrap_or_else(|e| panic!("display output must reparse: '{text}': {e}"));
        prop_assert_eq!(
            p.matches(&lookup(&env)),
            reparsed.matches(&lookup(&env)),
            "text: {}", text
        );
    }

    /// Boolean laws hold under evaluation.
    #[test]
    fn evaluation_laws(p in predicate(), q in predicate(), env in environment()) {
        let l = lookup(&env);
        let not_p = Predicate::Not(Box::new(p.clone()));
        prop_assert_eq!(not_p.matches(&l), !p.matches(&l));
        let and = Predicate::And(Box::new(p.clone()), Box::new(q.clone()));
        prop_assert_eq!(and.matches(&l), p.matches(&l) && q.matches(&l));
        let or = Predicate::Or(Box::new(p.clone()), Box::new(q.clone()));
        prop_assert_eq!(or.matches(&l), p.matches(&l) || q.matches(&l));
        // and(True) is identity.
        prop_assert_eq!(p.clone().and(Predicate::True).matches(&l), p.matches(&l));
    }

    /// The index hint never changes results: a predicate with an equality
    /// hint matches an object iff the object carries that value.
    #[test]
    fn index_hint_is_sound(p in predicate(), env in environment()) {
        if let Some((attr, value)) = p.index_hint() {
            if p.matches(&lookup(&env)) {
                // Everything the predicate accepts must satisfy the hint.
                let actual = lookup(&env)(attr);
                prop_assert_eq!(
                    actual.as_ref(),
                    Some(value),
                    "hint ({} = {}) must hold on accepted env", attr, value
                );
            }
        }
    }

    /// Arbitrary garbage never panics the parser.
    #[test]
    fn parser_never_panics(text in "\\PC{0,60}") {
        let _ = Predicate::parse(&text);
    }
}
