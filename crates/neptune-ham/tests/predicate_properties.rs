//! Randomized (seeded, deterministic) tests for the predicate language:
//! display/parse roundtrips, evaluation laws, and decoder robustness.

use neptune_ham::predicate::{CmpOp, Predicate};
use neptune_ham::value::Value;
use neptune_storage::testutil::XorShift;

fn gen_attr_name(rng: &mut XorShift) -> String {
    loop {
        let len = rng.below(9) as usize;
        let mut s = String::new();
        s.push(char::from(if rng.chance(1, 2) {
            b'a' + rng.below(26) as u8
        } else {
            b'A' + rng.below(26) as u8
        }));
        for _ in 0..len {
            s.push(match rng.below(4) {
                0 => char::from(b'A' + rng.below(26) as u8),
                1 => char::from(b'0' + rng.below(10) as u8),
                2 => '_',
                _ => char::from(b'a' + rng.below(26) as u8),
            });
        }
        if !matches!(
            s.as_str(),
            "and" | "or" | "not" | "exists" | "true" | "false"
        ) {
            return s;
        }
    }
}

fn gen_literal(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => {
            let len = rng.below(13) as usize;
            let s: String = (0..len)
                .map(|_| match rng.below(6) {
                    0 => char::from(b'A' + rng.below(26) as u8),
                    1 => char::from(b'0' + rng.below(10) as u8),
                    2 => [' ', '_', '.', '-'][rng.index(4)],
                    _ => char::from(b'a' + rng.below(26) as u8),
                })
                .collect();
            Value::Str(s)
        }
        1 => Value::Int(rng.next_u64() as i32 as i64),
        _ => Value::Bool(rng.chance(1, 2)),
    }
}

fn gen_cmp_op(rng: &mut XorShift) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.index(6)]
}

fn gen_predicate(rng: &mut XorShift, depth: usize) -> Predicate {
    if depth == 0 || rng.chance(1, 3) {
        match rng.below(4) {
            0 => Predicate::True,
            1 => Predicate::False,
            2 => Predicate::Cmp {
                attr: gen_attr_name(rng),
                op: gen_cmp_op(rng),
                value: gen_literal(rng),
            },
            _ => Predicate::Exists(gen_attr_name(rng)),
        }
    } else {
        match rng.below(3) {
            0 => Predicate::Not(Box::new(gen_predicate(rng, depth - 1))),
            1 => Predicate::And(
                Box::new(gen_predicate(rng, depth - 1)),
                Box::new(gen_predicate(rng, depth - 1)),
            ),
            _ => Predicate::Or(
                Box::new(gen_predicate(rng, depth - 1)),
                Box::new(gen_predicate(rng, depth - 1)),
            ),
        }
    }
}

/// A small environment of attribute values to evaluate against.
fn gen_environment(rng: &mut XorShift) -> Vec<(String, Value)> {
    (0..rng.below(6))
        .map(|_| (gen_attr_name(rng), gen_literal(rng)))
        .collect()
}

fn lookup<'a>(env: &'a [(String, Value)]) -> impl Fn(&str) -> Option<Value> + 'a {
    move |name: &str| env.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone())
}

/// display → parse preserves evaluation on every environment tested.
#[test]
fn display_parse_preserves_semantics() {
    let mut rng = XorShift::new(0xBEEF01);
    for _ in 0..256 {
        let p = gen_predicate(&mut rng, 3);
        let env = gen_environment(&mut rng);
        let text = p.to_string();
        let reparsed = Predicate::parse(&text)
            .unwrap_or_else(|e| panic!("display output must reparse: '{text}': {e}"));
        assert_eq!(
            p.matches(&lookup(&env)),
            reparsed.matches(&lookup(&env)),
            "text: {text}"
        );
    }
}

/// Boolean laws hold under evaluation.
#[test]
fn evaluation_laws() {
    let mut rng = XorShift::new(0xBEEF02);
    for _ in 0..256 {
        let p = gen_predicate(&mut rng, 3);
        let q = gen_predicate(&mut rng, 3);
        let env = gen_environment(&mut rng);
        let l = lookup(&env);
        let not_p = Predicate::Not(Box::new(p.clone()));
        assert_eq!(not_p.matches(&l), !p.matches(&l));
        let and = Predicate::And(Box::new(p.clone()), Box::new(q.clone()));
        assert_eq!(and.matches(&l), p.matches(&l) && q.matches(&l));
        let or = Predicate::Or(Box::new(p.clone()), Box::new(q.clone()));
        assert_eq!(or.matches(&l), p.matches(&l) || q.matches(&l));
        // and(True) is identity.
        assert_eq!(p.clone().and(Predicate::True).matches(&l), p.matches(&l));
    }
}

/// The index hint never changes results: a predicate with an equality
/// hint matches an object iff the object carries that value.
#[test]
fn index_hint_is_sound() {
    let mut rng = XorShift::new(0xBEEF03);
    for _ in 0..256 {
        let p = gen_predicate(&mut rng, 3);
        let env = gen_environment(&mut rng);
        if let Some((attr, value)) = p.index_hint() {
            if p.matches(&lookup(&env)) {
                // Everything the predicate accepts must satisfy the hint.
                let actual = lookup(&env)(attr);
                assert_eq!(
                    actual.as_ref(),
                    Some(value),
                    "hint ({attr} = {value}) must hold on accepted env"
                );
            }
        }
    }
}

/// Arbitrary garbage never panics the parser.
#[test]
fn parser_never_panics() {
    let mut rng = XorShift::new(0xBEEF04);
    for _ in 0..512 {
        let len = rng.below(60) as usize;
        let text: String = (0..len)
            .map(|_| {
                let printable = 0x20u8 + rng.below(95) as u8;
                match rng.below(8) {
                    0 => '(',
                    1 => ')',
                    2 => '=',
                    _ => char::from(printable),
                }
            })
            .collect();
        let _ = Predicate::parse(&text);
    }
}
