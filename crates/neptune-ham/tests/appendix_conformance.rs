//! Appendix conformance: one scenario exercising **every** operation of
//! the paper's Appendix, section by section, asserting the result shapes
//! the appendix specifies. This is the executable form of the claim "the
//! appendix is the contract this repository implements".

use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::{LinkPt, Machine, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, Predicate, Value};

#[test]
fn every_appendix_operation() {
    let dir = std::env::temp_dir().join(format!("neptune-appendix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // =====================================================================
    // A.1 Graph Operations
    // =====================================================================

    // createGraph: Directory × Protections → ProjectId × Time
    let (ham, project_id, t_created) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    assert_eq!(t_created, Time(1));

    // openGraph: ProjectId × Machine × Directory → Context
    drop(ham);
    let (mut ham, ctx) = Ham::open_graph(project_id, &Machine::local(), &dir).unwrap();
    assert_eq!(ctx, MAIN_CONTEXT);

    // addNode: Context × Boolean → NodeIndex × Time
    let (archive_node, t_a) = ham.add_node(ctx, true).unwrap();
    let (file_node, _) = ham.add_node(ctx, false).unwrap();

    // modifyNode (here, to give link endpoints something to attach to).
    let t_a = ham
        .modify_node(ctx, archive_node, t_a, b"0123456789abcdef\n".to_vec(), &[])
        .unwrap();

    // A second archive node to pin a link end against (pinning needs
    // history, which file nodes by definition lack).
    let (pin_target, t_p) = ham.add_node(ctx, true).unwrap();
    let t_p = ham
        .modify_node(ctx, pin_target, t_p, b"pinned contents v1\n".to_vec(), &[])
        .unwrap();

    // addLink: Context × LinkPt1 × LinkPt2 → LinkIndex × Time
    // One end pinned to a specific version (the configuration-manager
    // primitive), the other tracking the current version.
    let (link, _) = ham
        .add_link(
            ctx,
            LinkPt::current(archive_node, 4),
            LinkPt::pinned(pin_target, 0, t_p),
        )
        .unwrap();

    // copyLink: Context × LinkIndex × Time × Boolean × LinkPt → LinkIndex × Time
    let (copied, _) = ham
        .copy_link(
            ctx,
            link,
            Time::CURRENT,
            true,
            LinkPt::current(archive_node, 9),
        )
        .unwrap();

    // deleteLink: Context × LinkIndex →
    ham.delete_link(ctx, copied).unwrap();

    // A node to delete, to exercise deleteNode's cascade.
    let (doomed, _) = ham.add_node(ctx, true).unwrap();
    let (doomed_link, _) = ham
        .add_link(
            ctx,
            LinkPt::current(doomed, 0),
            LinkPt::current(archive_node, 0),
        )
        .unwrap();
    // deleteNode: Context × NodeIndex →  ("All links into or out of the
    // node are deleted")
    ham.delete_node(ctx, doomed).unwrap();
    assert!(ham.get_to_node(ctx, doomed_link, Time::CURRENT).is_err());

    // Attributes used by the queries below.
    let doc_attr = ham.get_attribute_index(ctx, "document").unwrap();
    ham.set_node_attribute_value(ctx, archive_node, doc_attr, Value::str("requirements"))
        .unwrap();
    ham.set_node_attribute_value(ctx, pin_target, doc_attr, Value::str("requirements"))
        .unwrap();

    // linearizeGraph: Context × NodeIndex × Time × Predicate² ×
    //   AttributeIndexᵐ × AttributeIndexⁿ → (NodeIndex × Valueᵐ)* × (LinkIndex × Valueⁿ)*
    let pred = Predicate::parse("document = requirements").unwrap();
    let lin = ham
        .linearize_graph(
            ctx,
            archive_node,
            Time::CURRENT,
            &pred,
            &Predicate::True,
            &[doc_attr],
            &[],
        )
        .unwrap();
    assert_eq!(lin.nodes.len(), 2, "DFS reaches both requirement nodes");
    assert_eq!(lin.nodes[0].1, vec![Some(Value::str("requirements"))]);

    // getGraphQuery: the associative query (paper §3's example predicate).
    let q = ham
        .get_graph_query(
            ctx,
            Time::CURRENT,
            &pred,
            &Predicate::True,
            &[doc_attr],
            &[],
        )
        .unwrap();
    assert_eq!(q.nodes.len(), 2);
    assert_eq!(
        q.links.len(),
        1,
        "only the surviving link connects result nodes"
    );

    // =====================================================================
    // A.2 Node Operations
    // =====================================================================

    // openNode: NodeIndex × Time × AttributeIndexᵐ →
    //   Contents × LinkPt* × Valueᵐ × Time₂
    let opened = ham
        .open_node(ctx, archive_node, Time::CURRENT, &[doc_attr])
        .unwrap();
    assert_eq!(&opened.contents[..], b"0123456789abcdef\n");
    assert!(!opened.link_pts.is_empty());
    assert_eq!(opened.values, vec![Some(Value::str("requirements"))]);

    // modifyNode: NodeIndex × Time × Contents × LinkPt* →
    // ("Time must be equal to the version time of the current version";
    //  "There must be a LinkPt for each link associated with the current
    //   version")
    let t2 = ham
        .modify_node(
            ctx,
            archive_node,
            opened.current_time,
            b"0123456789abcdef extended\n".to_vec(),
            &opened.link_pts,
        )
        .unwrap();

    // getNodeTimeStamp: NodeIndex → Time
    assert_eq!(ham.get_node_time_stamp(ctx, archive_node).unwrap(), t2);

    // changeNodeProtection: NodeIndex × Protections →
    ham.change_node_protection(ctx, archive_node, Protections::PRIVATE)
        .unwrap();

    // getNodeVersions: NodeIndex → Version₁⁺ × Version₂*
    let (major, minor) = ham.get_node_versions(ctx, archive_node).unwrap();
    assert!(major.len() >= 3, "created + two checkins");
    assert!(
        !minor.is_empty(),
        "link/attribute changes recorded as minor versions"
    );

    // getNodeDifferences: NodeIndex × Time₁ × Time₂ → Difference*
    let diffs = ham
        .get_node_differences(ctx, archive_node, t_a, t2)
        .unwrap();
    assert_eq!(diffs.len(), 1);

    // Archives vs files: "only the current version is available for files".
    let tf = ham.get_node_time_stamp(ctx, file_node).unwrap();
    ham.modify_node(ctx, file_node, tf, b"file v2\n".to_vec(), &[])
        .unwrap();
    assert!(ham.open_node(ctx, file_node, tf, &[]).is_err());

    // Evolve the pinned target so the pin visibly refers to the past.
    let opened_p = ham.open_node(ctx, pin_target, Time::CURRENT, &[]).unwrap();
    ham.modify_node(
        ctx,
        pin_target,
        opened_p.current_time,
        b"pinned contents v2\n".to_vec(),
        &opened_p.link_pts,
    )
    .unwrap();

    // =====================================================================
    // A.3 Link Operations
    // =====================================================================

    // getToNode: LinkIndex × Time₁ → NodeIndex × Time₂ — the pinned end
    // answers with the pinned version even after the node moved on.
    let (to_node, to_version) = ham.get_to_node(ctx, link, Time::CURRENT).unwrap();
    assert_eq!(to_node, pin_target);
    assert_eq!(to_version, t_p, "pinned to the pre-modification version");
    assert_eq!(
        ham.open_node(ctx, pin_target, to_version, &[])
            .unwrap()
            .contents[..],
        b"pinned contents v1\n"[..]
    );

    // getFromNode: LinkIndex × Time₁ → NodeIndex × Time₂ — the tracking
    // end answers with the current version.
    let (from_node, from_version) = ham.get_from_node(ctx, link, Time::CURRENT).unwrap();
    assert_eq!(from_node, archive_node);
    assert_eq!(from_version, t2);

    // =====================================================================
    // A.4 Attribute Operations
    // =====================================================================

    // getAttributeIndex: Context × Attribute → AttributeIndex
    // ("If no attribute exists, then creates one")
    let status_attr = ham.get_attribute_index(ctx, "status").unwrap();
    assert_eq!(ham.get_attribute_index(ctx, "status").unwrap(), status_attr);

    // setNodeAttributeValue / getNodeAttributeValue (versioned).
    ham.set_node_attribute_value(ctx, archive_node, status_attr, Value::str("draft"))
        .unwrap();
    let t_draft = ham.graph(ctx).unwrap().now();
    ham.set_node_attribute_value(ctx, archive_node, status_attr, Value::str("final"))
        .unwrap();
    assert_eq!(
        ham.get_node_attribute_value(ctx, archive_node, status_attr, t_draft)
            .unwrap(),
        Value::str("draft")
    );
    assert_eq!(
        ham.get_node_attribute_value(ctx, archive_node, status_attr, Time::CURRENT)
            .unwrap(),
        Value::str("final")
    );

    // getNodeAttributes: NodeIndex × Time → (Attribute × AttributeIndex × Value)*
    let triples = ham
        .get_node_attributes(ctx, archive_node, Time::CURRENT)
        .unwrap();
    assert!(triples
        .iter()
        .any(|(n, i, v)| n == "status" && *i == status_attr && *v == Value::str("final")));

    // deleteNodeAttribute: history remains at earlier times.
    ham.delete_node_attribute(ctx, archive_node, status_attr)
        .unwrap();
    assert!(ham
        .get_node_attribute_value(ctx, archive_node, status_attr, Time::CURRENT)
        .is_err());
    assert!(ham
        .get_node_attribute_value(ctx, archive_node, status_attr, t_draft)
        .is_ok());

    // setLinkAttributeValue / getLinkAttributeValue / getLinkAttributes /
    // deleteLinkAttribute.
    let rel_attr = ham.get_attribute_index(ctx, "relation").unwrap();
    ham.set_link_attribute_value(ctx, link, rel_attr, Value::str("references"))
        .unwrap();
    assert_eq!(
        ham.get_link_attribute_value(ctx, link, rel_attr, Time::CURRENT)
            .unwrap(),
        Value::str("references")
    );
    let link_triples = ham.get_link_attributes(ctx, link, Time::CURRENT).unwrap();
    assert_eq!(link_triples.len(), 1);
    ham.delete_link_attribute(ctx, link, rel_attr).unwrap();
    assert!(ham
        .get_link_attribute_value(ctx, link, rel_attr, Time::CURRENT)
        .is_err());

    // getAttributes: Context × Time → (Attribute × AttributeIndex)*
    let attrs_now = ham.get_attributes(ctx, Time::CURRENT).unwrap();
    assert!(attrs_now.len() >= 3); // document, status, relation
    assert!(ham.get_attributes(ctx, Time(1)).unwrap().is_empty());

    // getAttributeValues: Context × AttributeIndex × Time → Value*
    let values = ham
        .get_attribute_values(ctx, doc_attr, Time::CURRENT)
        .unwrap();
    assert_eq!(values, vec![Value::str("requirements")]);

    // =====================================================================
    // A.5 Demon Operations
    // =====================================================================

    // setGraphDemonValue: Context × Event × Demon → (versioned; null
    // disables)
    ham.set_graph_demon_value(
        ctx,
        Event::NodeAdded,
        Some(DemonSpec::notify("g1", "added")),
    )
    .unwrap();
    let t_demon1 = ham.graph(ctx).unwrap().now();
    ham.set_graph_demon_value(
        ctx,
        Event::NodeAdded,
        Some(DemonSpec::notify("g2", "added!")),
    )
    .unwrap();

    // getGraphDemons: Context × Time → (Event × Demon)*
    assert_eq!(ham.get_graph_demons(ctx, t_demon1).unwrap()[0].1.name, "g1");
    assert_eq!(
        ham.get_graph_demons(ctx, Time::CURRENT).unwrap()[0].1.name,
        "g2"
    );
    ham.set_graph_demon_value(ctx, Event::NodeAdded, None)
        .unwrap();
    assert!(ham.get_graph_demons(ctx, Time::CURRENT).unwrap().is_empty());

    // setNodeDemon / getNodeDemons.
    ham.set_node_demon(
        ctx,
        archive_node,
        Event::NodeModified,
        Some(DemonSpec::notify("n1", "node changed")),
    )
    .unwrap();
    let node_demons = ham
        .get_node_demons(ctx, archive_node, Time::CURRENT)
        .unwrap();
    assert_eq!(node_demons.len(), 1);
    assert_eq!(node_demons[0].0, Event::NodeModified);

    // Demons actually fire with §5's parameters.
    let opened = ham
        .open_node(ctx, archive_node, Time::CURRENT, &[])
        .unwrap();
    ham.modify_node(
        ctx,
        archive_node,
        opened.current_time,
        b"fire!\n".to_vec(),
        &opened.link_pts,
    )
    .unwrap();
    let record = ham.demon_journal().last().unwrap();
    assert_eq!(record.demon, "n1");
    assert_eq!(record.info.event, Event::NodeModified);
    assert_eq!(record.info.node, Some(archive_node));

    // =====================================================================
    // destroyGraph: ProjectId × Directory →
    // ("ProjectId must have the same value as returned by createGraph")
    // =====================================================================
    ham.checkpoint().unwrap();
    drop(ham);
    Ham::destroy_graph(project_id, &dir).unwrap();
    assert!(!dir.exists());
}
