//! Edge cases of the HAM facade that the happy-path suites don't touch.

use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::{LinkPt, NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, HamError, Predicate, Value};

fn fresh(name: &str) -> Ham {
    let dir = std::env::temp_dir().join(format!("neptune-edge-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ham::create_graph(dir, Protections::DEFAULT).unwrap().0
}

#[test]
fn linearize_with_filtered_start_is_empty_not_error() {
    let mut ham = fresh("filtered-start");
    let (n, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let pred = Predicate::parse("exists(never_set)").unwrap();
    let sg = ham
        .linearize_graph(
            MAIN_CONTEXT,
            n,
            Time::CURRENT,
            &pred,
            &Predicate::True,
            &[],
            &[],
        )
        .unwrap();
    assert!(sg.nodes.is_empty());
    assert!(sg.links.is_empty());
}

#[test]
fn open_node_before_creation_time_fails() {
    let mut ham = fresh("before-creation");
    ham.add_node(MAIN_CONTEXT, true).unwrap(); // advance the clock
    let (late, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    assert!(ham.open_node(MAIN_CONTEXT, late, Time(1), &[]).is_err());
}

#[test]
fn copy_link_from_deleted_link_fails() {
    let mut ham = fresh("copy-deleted");
    let (a, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (l, _) = ham
        .add_link(MAIN_CONTEXT, LinkPt::current(a, 0), LinkPt::current(b, 0))
        .unwrap();
    let t_alive = ham.graph(MAIN_CONTEXT).unwrap().now();
    ham.delete_link(MAIN_CONTEXT, l).unwrap();
    assert!(ham
        .copy_link(MAIN_CONTEXT, l, Time::CURRENT, true, LinkPt::current(a, 1))
        .is_err());
    // But copying from the time it was alive works: history is usable.
    let copied = ham.copy_link(MAIN_CONTEXT, l, t_alive, true, LinkPt::current(a, 1));
    assert!(copied.is_ok());
}

#[test]
fn pinned_attachments_may_not_move() {
    let mut ham = fresh("pin-fixed");
    let (target, tt) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let tt = ham
        .modify_node(MAIN_CONTEXT, target, tt, b"vv\n".to_vec(), &[])
        .unwrap();
    let (host, th) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, host, th, b"0123456789\n".to_vec(), &[])
        .unwrap();
    ham.add_link(
        MAIN_CONTEXT,
        LinkPt::pinned(host, 3, Time::CURRENT),
        LinkPt::pinned(target, 0, tt),
    )
    .unwrap();

    let opened = ham
        .open_node(MAIN_CONTEXT, host, Time::CURRENT, &[])
        .unwrap();
    assert_eq!(opened.link_pts.len(), 1);
    // Moving the pinned source end is rejected.
    let mut moved = opened.link_pts.clone();
    moved[0].position = 7;
    let err = ham.modify_node(
        MAIN_CONTEXT,
        host,
        opened.current_time,
        b"x\n".to_vec(),
        &moved,
    );
    assert!(matches!(err, Err(HamError::AttachmentMismatch { .. })));
    // Restating the same position succeeds.
    ham.modify_node(
        MAIN_CONTEXT,
        host,
        opened.current_time,
        b"x\n".to_vec(),
        &opened.link_pts,
    )
    .unwrap();
}

#[test]
fn modify_node_rejects_points_for_other_nodes() {
    let mut ham = fresh("foreign-pt");
    let (a, ta) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, a, ta, b"contents\n".to_vec(), &[])
        .unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 0), LinkPt::current(b, 0))
        .unwrap();
    let opened = ham.open_node(MAIN_CONTEXT, a, Time::CURRENT, &[]).unwrap();
    let foreign = vec![LinkPt::current(b, 0)];
    assert_eq!(opened.link_pts.len(), foreign.len());
    let err = ham.modify_node(
        MAIN_CONTEXT,
        a,
        opened.current_time,
        b"x\n".to_vec(),
        &foreign,
    );
    assert!(matches!(err, Err(HamError::BadEndpoint { .. })));
}

#[test]
fn both_ends_on_same_node_appear_in_canonical_order() {
    let mut ham = fresh("self-link");
    let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, n, t, b"0123456789\n".to_vec(), &[])
        .unwrap();
    ham.add_link(MAIN_CONTEXT, LinkPt::current(n, 2), LinkPt::current(n, 8))
        .unwrap();
    let opened = ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[]).unwrap();
    assert_eq!(opened.link_pts.len(), 2, "both ends attach to the node");
    assert_eq!(opened.link_pts[0].position, 2, "from end first");
    assert_eq!(opened.link_pts[1].position, 8);
    // Moving both ends through modifyNode works.
    let moved = vec![LinkPt::current(n, 3), LinkPt::current(n, 9)];
    ham.modify_node(
        MAIN_CONTEXT,
        n,
        opened.current_time,
        b"0123456789x\n".to_vec(),
        &moved,
    )
    .unwrap();
    let reopened = ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[]).unwrap();
    assert_eq!(reopened.link_pts[0].position, 3);
    assert_eq!(reopened.link_pts[1].position, 9);
}

#[test]
fn attribute_values_include_link_attributes() {
    let mut ham = fresh("link-values");
    let (a, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (l, _) = ham
        .add_link(MAIN_CONTEXT, LinkPt::current(a, 0), LinkPt::current(b, 0))
        .unwrap();
    let rel = ham.get_attribute_index(MAIN_CONTEXT, "relation").unwrap();
    ham.set_link_attribute_value(MAIN_CONTEXT, l, rel, Value::str("annotates"))
        .unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, a, rel, Value::str("nodeside"))
        .unwrap();
    let mut values = ham
        .get_attribute_values(MAIN_CONTEXT, rel, Time::CURRENT)
        .unwrap();
    values.sort_by_key(|v| v.to_string());
    assert_eq!(
        values,
        vec![Value::str("annotates"), Value::str("nodeside")]
    );
    // Historical query also sees both (scan path).
    let t = ham.graph(MAIN_CONTEXT).unwrap().now();
    let historical = ham.get_attribute_values(MAIN_CONTEXT, rel, t).unwrap();
    assert_eq!(historical.len(), 2);
}

#[test]
fn node_opened_demon_runs_in_auto_txn_and_survives_recovery() {
    let dir = std::env::temp_dir().join(format!("neptune-edge-opened-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pid;
    let node;
    {
        let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        pid = p;
        let (n, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        node = n;
        ham.set_node_demon(
            MAIN_CONTEXT,
            n,
            Event::NodeOpened,
            Some(DemonSpec::mark_node("reader-mark", "lastReader", "norm")),
        )
        .unwrap();
        // Opening fires the demon, whose attribute write is WAL-logged.
        ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[]).unwrap();
    }
    let (ham, _) = Ham::open_graph(pid, &neptune_ham::Machine::local(), &dir).unwrap();
    let graph = ham.graph(MAIN_CONTEXT).unwrap();
    let attr = graph.attr_table.lookup("lastReader").unwrap();
    assert_eq!(
        graph.node(node).unwrap().attrs.get(attr, Time::CURRENT),
        Some(&Value::str("norm"))
    );
}

#[test]
fn requested_attributes_resolve_per_object_in_queries() {
    let mut ham = fresh("query-attrs");
    let kind = ham.get_attribute_index(MAIN_CONTEXT, "kind").unwrap();
    let size = ham.get_attribute_index(MAIN_CONTEXT, "size").unwrap();
    let (a, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, a, kind, Value::str("x"))
        .unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, b, kind, Value::str("x"))
        .unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, b, size, Value::Int(9))
        .unwrap();
    let pred = Predicate::parse("kind = x").unwrap();
    let sg = ham
        .get_graph_query(
            MAIN_CONTEXT,
            Time::CURRENT,
            &pred,
            &Predicate::True,
            &[kind, size],
            &[],
        )
        .unwrap();
    let row_a = sg.nodes.iter().find(|(id, _)| *id == a).unwrap();
    let row_b = sg.nodes.iter().find(|(id, _)| *id == b).unwrap();
    assert_eq!(row_a.1, vec![Some(Value::str("x")), None]);
    assert_eq!(row_b.1, vec![Some(Value::str("x")), Some(Value::Int(9))]);
}

#[test]
fn context_ids_are_not_reused_after_destroy() {
    let mut ham = fresh("ctx-ids");
    let c1 = ham.create_context(MAIN_CONTEXT).unwrap();
    ham.destroy_context(c1).unwrap();
    let c2 = ham.create_context(MAIN_CONTEXT).unwrap();
    assert_ne!(c1, c2, "context ids are never recycled");
    // Operating on the destroyed context errors cleanly.
    assert!(matches!(
        ham.add_node(c1, true),
        Err(HamError::NoSuchContext(_))
    ));
}

#[test]
fn nested_context_forks() {
    let mut ham = fresh("nested-ctx");
    let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, n, t, b"base\n".to_vec(), &[])
        .unwrap();
    let child = ham.create_context(MAIN_CONTEXT).unwrap();
    let grandchild = ham.create_context(child).unwrap();
    let tg = ham.get_node_time_stamp(grandchild, n).unwrap();
    ham.modify_node(grandchild, n, tg, b"grandchild edit\n".to_vec(), &[])
        .unwrap();
    // Merge grandchild -> child, then child -> main.
    ham.merge_context(grandchild, neptune_ham::context::ConflictPolicy::Fail)
        .unwrap();
    assert_eq!(
        ham.open_node(child, n, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"grandchild edit\n"[..]
    );
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"base\n"[..]
    );
    ham.merge_context(child, neptune_ham::context::ConflictPolicy::Fail)
        .unwrap();
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        b"grandchild edit\n"[..]
    );
}

#[test]
fn empty_graph_queries_are_fine() {
    let ham = fresh("empty");
    let sg = ham
        .get_graph_query(
            MAIN_CONTEXT,
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[],
            &[],
        )
        .unwrap();
    assert!(sg.nodes.is_empty());
    assert!(ham
        .get_attributes(MAIN_CONTEXT, Time::CURRENT)
        .unwrap()
        .is_empty());
    assert!(ham
        .linearize_graph(
            MAIN_CONTEXT,
            NodeIndex(1),
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[],
            &[]
        )
        .is_err());
}

#[test]
fn huge_contents_roundtrip() {
    // A 2 MiB node: past any buffer-size assumptions.
    let mut ham = fresh("huge");
    let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let big: Vec<u8> = (0..2 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    ham.modify_node(MAIN_CONTEXT, n, t, big.clone(), &[])
        .unwrap();
    assert_eq!(
        ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[])
            .unwrap()
            .contents[..],
        big[..]
    );
}
