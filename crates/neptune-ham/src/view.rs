//! Immutable committed snapshots of the HAM, and the shared read core.
//!
//! [`CommittedView`] is the artifact the lock-free read path serves from:
//! at every commit (and rollback) the writer clones the machine's context
//! threads — cheap, because [`crate::graph::HamGraph`]'s node and link maps
//! are persistent tries ([`crate::pmap::Pam`]) that share structure by
//! `Arc` — and publishes the clone through
//! [`crate::epoch::Published`]. Readers grab the current view with one
//! atomic load and keep reading it for as long as they like; the graph
//! inside never changes. Reclamation is plain `Arc` refcounting: a
//! superseded view lives exactly as long as its last holder.
//!
//! [`ReadCore`] is the one implementation of every read-only HAM
//! operation. Both entry points delegate to it:
//!
//! * [`crate::ham::Ham`]'s inherent read methods (live state, exclusive
//!   path — the transaction owner's read-your-writes view), and
//! * [`CommittedView`]'s inherent read methods (pinned snapshot,
//!   lock-free path).
//!
//! The only difference between the two is the materialization-cache
//! generation: a view is pinned to the generation current when it was
//! published, so a rollback (which rewinds version clocks and bumps the
//! generation) can never leak post-rollback cache entries into a
//! pre-rollback view or vice versa (DESIGN.md §9).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use neptune_storage::diff::Difference;
use neptune_storage::vcache::{CacheStats, MaterializationCache};

use crate::demons::{DemonSpec, Event};
use crate::error::{HamError, Result};
use crate::graph::HamGraph;
use crate::ham::{canonical_attachments, endpoint_version, resolve_attr_names};
use crate::ham::{GraphThread, OpenedNode};
use crate::predicate::Predicate;
use crate::query::{get_graph_query, get_graph_query_scan, linearize_graph, SubGraph};
use crate::types::{AttributeIndex, ContextId, LinkIndex, NodeIndex, Time, Version};
use crate::value::Value;

/// The read-only core shared by the live machine and published views: a
/// borrowed set of context threads plus the shared materialization cache.
pub(crate) struct ReadCore<'a> {
    pub(crate) threads: &'a HashMap<ContextId, GraphThread>,
    pub(crate) vcache: &'a Mutex<MaterializationCache>,
    /// `None` = live state (use the cache's current generation);
    /// `Some(g)` = a published view pinned to generation `g`.
    pub(crate) generation: Option<u64>,
}

impl<'a> ReadCore<'a> {
    pub(crate) fn graph(&self, context: ContextId) -> Result<&'a HamGraph> {
        self.threads
            .get(&context)
            .map(|t| &t.graph)
            .ok_or(HamError::NoSuchContext(context))
    }

    fn lock_vcache(&self) -> MutexGuard<'a, MaterializationCache> {
        // Derived state only; recover from poison rather than failing
        // every future read after one panicked thread.
        self.vcache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn contexts(&self) -> Vec<ContextId> {
        let mut ids: Vec<ContextId> = self.threads.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    pub(crate) fn context_forked_from(
        &self,
        context: ContextId,
    ) -> Result<Option<(ContextId, Time)>> {
        self.threads
            .get(&context)
            .map(|t| t.forked_from)
            .ok_or(HamError::NoSuchContext(context))
    }

    /// Node contents at `time`, served from the materialization cache when
    /// possible. Head reads bypass the cache (the head is stored whole);
    /// historical reads are keyed by resolved version time, so every alias
    /// of a version shares one entry. With the cache disabled this is a
    /// full uncached delta replay — the baseline the read-scaling
    /// benchmarks compare against.
    pub(crate) fn cached_contents(
        &self,
        context: ContextId,
        n: &crate::node::Node,
        time: Time,
    ) -> Result<Arc<[u8]>> {
        let Some(archive) = n.archive() else {
            return n.contents_at(time); // file node: current version only
        };
        let resolved = archive.resolve_time(time.0)?;
        if resolved == archive.head_time() {
            return Ok(archive.head_shared());
        }
        let key = (context.0, n.id.0, resolved);
        {
            let mut cache = self.lock_vcache();
            if !cache.enabled() {
                drop(cache);
                return Ok(archive.checkout_uncached(resolved)?);
            }
            let hit = match self.generation {
                None => cache.get(&key),
                Some(g) => cache.get_pinned(g, &key),
            };
            if let Some(data) = hit {
                return Ok(data); // hit: refcount bump, no copy
            }
        }
        // Miss: materialize outside the lock (checkout may replay a chain
        // suffix), then publish the same allocation for the next reader —
        // unless this reader's generation has been superseded, in which
        // case the insert is silently dropped.
        let data = archive.checkout(resolved)?;
        {
            let mut cache = self.lock_vcache();
            match self.generation {
                None => cache.insert(key, data.clone()),
                Some(g) => cache.insert_pinned(g, key, data.clone()),
            }
        }
        Ok(data)
    }

    pub(crate) fn read_node(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        attrs: &[AttributeIndex],
    ) -> Result<OpenedNode> {
        let graph = self.graph(context)?;
        let n = graph.live_node(node, time)?;
        let contents = self.cached_contents(context, n, time)?;
        let link_pts = canonical_attachments(graph, node, time)?
            .into_iter()
            .map(|(_, _, pt)| pt)
            .collect();
        let values = attrs
            .iter()
            .map(|a| n.attrs.get(*a, time).cloned())
            .collect();
        Ok(OpenedNode {
            contents,
            link_pts,
            values,
            current_time: n.current_time(),
        })
    }

    /// Whether any demon is registered for `event` (graph-level, or on the
    /// specific node).
    pub(crate) fn demon_registered(
        &self,
        context: ContextId,
        event: Event,
        node: Option<NodeIndex>,
    ) -> bool {
        let Ok(graph) = self.graph(context) else {
            return false;
        };
        if graph.graph_demons.get(event, Time::CURRENT).is_some() {
            return true;
        }
        if let Some(node) = node {
            if let Ok(n) = graph.node(node) {
                return n.demons.get(event, Time::CURRENT).is_some();
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn linearize_graph(
        &self,
        context: ContextId,
        start: NodeIndex,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let graph = self.graph(context)?;
        linearize_graph(
            graph, start, time, node_pred, link_pred, node_attrs, link_attrs,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn get_graph_query(
        &self,
        context: ContextId,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let graph = self.graph(context)?;
        get_graph_query(graph, time, node_pred, link_pred, node_attrs, link_attrs)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn get_graph_query_scan(
        &self,
        context: ContextId,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let graph = self.graph(context)?;
        get_graph_query_scan(graph, time, node_pred, link_pred, node_attrs, link_attrs)
    }

    pub(crate) fn get_node_time_stamp(&self, context: ContextId, node: NodeIndex) -> Result<Time> {
        Ok(self
            .graph(context)?
            .live_node(node, Time::CURRENT)?
            .current_time())
    }

    pub(crate) fn get_node_versions(
        &self,
        context: ContextId,
        node: NodeIndex,
    ) -> Result<(Vec<Version>, Vec<Version>)> {
        Ok(self.graph(context)?.node(node)?.versions())
    }

    pub(crate) fn get_node_differences(
        &self,
        context: ContextId,
        node: NodeIndex,
        time1: Time,
        time2: Time,
    ) -> Result<Vec<Difference>> {
        let graph = self.graph(context)?;
        let n = graph.node(node)?;
        let old = self.cached_contents(context, n, time1)?;
        let new = self.cached_contents(context, n, time2)?;
        Ok(neptune_storage::diff::differences(&old, &new))
    }

    pub(crate) fn get_to_node(
        &self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
    ) -> Result<(NodeIndex, Time)> {
        let graph = self.graph(context)?;
        let l = graph.live_link(link, time1)?;
        endpoint_version(graph, &l.to, time1)
    }

    pub(crate) fn get_from_node(
        &self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
    ) -> Result<(NodeIndex, Time)> {
        let graph = self.graph(context)?;
        let l = graph.live_link(link, time1)?;
        endpoint_version(graph, &l.from, time1)
    }

    pub(crate) fn get_attributes(
        &self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex)>> {
        Ok(self.graph(context)?.attr_table.attributes_at(time))
    }

    pub(crate) fn get_attribute_values(
        &self,
        context: ContextId,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Vec<Value>> {
        self.graph(context)?.attribute_values(attr, time)
    }

    pub(crate) fn get_node_attribute_value(
        &self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        let graph = self.graph(context)?;
        graph.attr_name(attr)?;
        graph
            .node(node)?
            .attrs
            .get(attr, time)
            .cloned()
            .ok_or(HamError::AttributeNotSet {
                attribute: attr,
                time,
            })
    }

    pub(crate) fn get_node_attributes(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        let graph = self.graph(context)?;
        let n = graph.node(node)?;
        Ok(resolve_attr_names(graph, n.attrs.all_at(time)))
    }

    pub(crate) fn get_link_attribute_value(
        &self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        let graph = self.graph(context)?;
        graph.attr_name(attr)?;
        graph
            .link(link)?
            .attrs
            .get(attr, time)
            .cloned()
            .ok_or(HamError::AttributeNotSet {
                attribute: attr,
                time,
            })
    }

    pub(crate) fn get_link_attributes(
        &self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        let graph = self.graph(context)?;
        let l = graph.link(link)?;
        Ok(resolve_attr_names(graph, l.attrs.all_at(time)))
    }

    pub(crate) fn get_graph_demons(
        &self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        Ok(self.graph(context)?.graph_demons.all_at(time))
    }

    pub(crate) fn get_node_demons(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        Ok(self.graph(context)?.node(node)?.demons.all_at(time))
    }

    pub(crate) fn version_cache_stats(&self) -> CacheStats {
        self.lock_vcache().stats()
    }
}

/// An immutable snapshot of the committed HAM state, published at every
/// commit and loaded by readers with one atomic load (see the module
/// docs). All read-only HAM operations are available directly on the view.
pub struct CommittedView {
    epoch: u64,
    /// Global commit sequence of the last durable commit folded into this
    /// view (0 for a freshly created store). Per-shard epochs are local;
    /// this sequence is what orders publishes *across* shards, so
    /// cross-shard readers can assemble a consistent cut (see
    /// [`crate::shard`]).
    commit_seq: u64,
    /// Materialization-cache generation current at publish time; every
    /// cache interaction through this view is pinned to it.
    generation: u64,
    /// Shard identity `(index, count)` of the machine that published this
    /// view; `(0, 1)` for unsharded stores. Invariant checkers use it to
    /// skip fork-topology rules whose parent context lives on another
    /// shard.
    shard: (u32, u32),
    directory: PathBuf,
    threads: HashMap<ContextId, GraphThread>,
    /// Shared with the live machine: view readers warm the same cache.
    vcache: Arc<Mutex<MaterializationCache>>,
    published_at: Instant,
}

impl std::fmt::Debug for CommittedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommittedView")
            .field("epoch", &self.epoch)
            .field("generation", &self.generation)
            .field("contexts", &self.threads.len())
            .finish()
    }
}

impl CommittedView {
    pub(crate) fn new(
        epoch: u64,
        commit_seq: u64,
        shard: (u32, u32),
        threads: &HashMap<ContextId, GraphThread>,
        vcache: Arc<Mutex<MaterializationCache>>,
        directory: PathBuf,
    ) -> CommittedView {
        let generation = vcache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .generation();
        CommittedView {
            epoch,
            commit_seq,
            generation,
            shard,
            directory,
            // O(changes), not O(graph): HamGraph's node/link maps are
            // persistent tries, so this clone is Arc bumps plus the small
            // per-graph scalar state.
            threads: threads.clone(),
            vcache,
            published_at: Instant::now(),
        }
    }

    fn core(&self) -> ReadCore<'_> {
        ReadCore {
            threads: &self.threads,
            vcache: &self.vcache,
            generation: Some(self.generation),
        }
    }

    /// Invariant checkers (same crate) walk the raw threads.
    pub(crate) fn threads(&self) -> &HashMap<ContextId, GraphThread> {
        &self.threads
    }

    /// The publication epoch this view was installed at (monotonic across
    /// the machine's lifetime, starting at 1 for the freshly opened state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The global commit sequence of the last commit folded into this view
    /// (0 until the first commit). Monotonic per shard; unique across
    /// shards except for cross-shard transactions, whose participants all
    /// stamp the same sequence.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Shard identity `(index, count)` of the publishing machine.
    pub(crate) fn shard(&self) -> (u32, u32) {
        self.shard
    }

    /// The logical clock of `context` as of this snapshot.
    pub fn context_now(&self, context: ContextId) -> Result<Time> {
        Ok(self.graph(context)?.now())
    }

    /// The materialization-cache generation this view is pinned to.
    pub fn cache_generation(&self) -> u64 {
        self.generation
    }

    /// How long ago this view was published — the staleness a reader still
    /// holding it observes.
    pub fn age(&self) -> std::time::Duration {
        self.published_at.elapsed()
    }

    /// The graph directory (for file-level verification).
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// Read-only access to a context's graph as of this snapshot.
    pub fn graph(&self, context: ContextId) -> Result<&HamGraph> {
        self.core().graph(context)
    }

    /// All live context ids as of this snapshot (the main context first).
    pub fn contexts(&self) -> Vec<ContextId> {
        self.core().contexts()
    }

    /// Where `context` was forked from; see [`crate::ham::Ham::context_forked_from`].
    pub fn context_forked_from(&self, context: ContextId) -> Result<Option<(ContextId, Time)>> {
        self.core().context_forked_from(context)
    }

    /// Whether opening `node` would fire a `nodeOpened` demon — in which
    /// case the request must bounce to the exclusive path, where demons
    /// can run.
    pub fn open_demon_registered(&self, context: ContextId, node: NodeIndex) -> bool {
        self.core()
            .demon_registered(context, Event::NodeOpened, Some(node))
    }

    /// The read-only core of `openNode` against this snapshot; see
    /// [`crate::ham::Ham::read_node`].
    pub fn read_node(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        attrs: &[AttributeIndex],
    ) -> Result<OpenedNode> {
        let _span = neptune_obs::span!("view.read_node", "context {} node {}", context.0, node.0);
        self.core().read_node(context, node, time, attrs)
    }

    /// `linearizeGraph` against this snapshot; see [`crate::ham::Ham::linearize_graph`].
    #[allow(clippy::too_many_arguments)]
    pub fn linearize_graph(
        &self,
        context: ContextId,
        start: NodeIndex,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let _span = neptune_obs::span!("view.linearize_graph", "context {}", context.0);
        self.core().linearize_graph(
            context, start, time, node_pred, link_pred, node_attrs, link_attrs,
        )
    }

    /// `getGraphQuery` against this snapshot; see [`crate::ham::Ham::get_graph_query`].
    #[allow(clippy::too_many_arguments)]
    pub fn get_graph_query(
        &self,
        context: ContextId,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let _span = neptune_obs::span!("view.get_graph_query", "context {}", context.0);
        self.core()
            .get_graph_query(context, time, node_pred, link_pred, node_attrs, link_attrs)
    }

    /// `getNodeTimeStamp` against this snapshot.
    pub fn get_node_time_stamp(&self, context: ContextId, node: NodeIndex) -> Result<Time> {
        self.core().get_node_time_stamp(context, node)
    }

    /// `getNodeVersions` against this snapshot.
    pub fn get_node_versions(
        &self,
        context: ContextId,
        node: NodeIndex,
    ) -> Result<(Vec<Version>, Vec<Version>)> {
        self.core().get_node_versions(context, node)
    }

    /// `getNodeDifferences` against this snapshot.
    pub fn get_node_differences(
        &self,
        context: ContextId,
        node: NodeIndex,
        time1: Time,
        time2: Time,
    ) -> Result<Vec<Difference>> {
        self.core()
            .get_node_differences(context, node, time1, time2)
    }

    /// `getToNode` against this snapshot.
    pub fn get_to_node(
        &self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
    ) -> Result<(NodeIndex, Time)> {
        self.core().get_to_node(context, link, time1)
    }

    /// `getFromNode` against this snapshot.
    pub fn get_from_node(
        &self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
    ) -> Result<(NodeIndex, Time)> {
        self.core().get_from_node(context, link, time1)
    }

    /// `getAttributes` against this snapshot.
    pub fn get_attributes(
        &self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex)>> {
        self.core().get_attributes(context, time)
    }

    /// `getAttributeValues` against this snapshot.
    pub fn get_attribute_values(
        &self,
        context: ContextId,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Vec<Value>> {
        self.core().get_attribute_values(context, attr, time)
    }

    /// `getNodeAttributeValue` against this snapshot.
    pub fn get_node_attribute_value(
        &self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        self.core()
            .get_node_attribute_value(context, node, attr, time)
    }

    /// `getNodeAttributes` against this snapshot.
    pub fn get_node_attributes(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        self.core().get_node_attributes(context, node, time)
    }

    /// `getLinkAttributeValue` against this snapshot.
    pub fn get_link_attribute_value(
        &self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        self.core()
            .get_link_attribute_value(context, link, attr, time)
    }

    /// `getLinkAttributes` against this snapshot.
    pub fn get_link_attributes(
        &self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        self.core().get_link_attributes(context, link, time)
    }

    /// `getGraphDemons` against this snapshot.
    pub fn get_graph_demons(
        &self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        self.core().get_graph_demons(context, time)
    }

    /// `getNodeDemons` against this snapshot.
    pub fn get_node_demons(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        self.core().get_node_demons(context, node, time)
    }

    /// Hit/miss counters and occupancy of the shared materialization cache.
    pub fn version_cache_stats(&self) -> CacheStats {
        self.core().version_cache_stats()
    }
}
