//! A persistent (copy-on-write) map from `u64` keys to values.
//!
//! [`Pam`] is a 16-ary array-mapped trie over the key's 4-bit chunks,
//! least-significant first. Interior nodes are `Arc`-shared, so `clone()` is
//! one refcount bump and a mutation after a clone copies only the O(depth)
//! path to the touched leaf (`Arc::make_mut`), leaving everything else
//! shared. This is what makes publishing an immutable [`CommittedView`]
//! (see [`crate::view`]) O(changes-since-last-publish) instead of
//! O(graph): the committed snapshot and the in-transaction working state
//! share all untouched structure.
//!
//! The build environment has no crates.io access, so this is a std-only
//! hand-rolled structure rather than `im::HashMap`; the fixed `u64` key
//! domain (node/link/context ids, already dense and unique) lets it skip
//! hashing entirely.
//!
//! Shape is canonical: a branch exists only where at least two keys share a
//! prefix, children are bitmap-ordered, and removal collapses single-leaf
//! branches. Equality can therefore recurse structurally with an
//! `Arc::ptr_eq` fast path for shared subtrees.

use std::sync::Arc;

const BITS: u32 = 4;
const MASK: u64 = 0xf;

#[derive(Debug, Clone)]
enum PamNode<V> {
    Leaf(u64, V),
    Branch {
        /// Bit `c` set iff a child exists for chunk value `c`.
        bitmap: u16,
        /// Present children, ordered by chunk value.
        children: Vec<Arc<PamNode<V>>>,
    },
}

/// Persistent array-mapped trie keyed by `u64`; `clone` is O(1), mutation
/// after a clone copies only the touched path.
#[derive(Debug, Clone)]
pub struct Pam<V> {
    root: Option<Arc<PamNode<V>>>,
    len: usize,
}

impl<V> Default for Pam<V> {
    fn default() -> Self {
        Pam { root: None, len: 0 }
    }
}

fn child_slot(bitmap: u16, chunk: u64) -> (bool, usize) {
    let bit = 1u16 << chunk;
    let idx = (bitmap & (bit - 1)).count_ones() as usize;
    (bitmap & bit != 0, idx)
}

impl<V> Pam<V> {
    /// An empty map.
    pub fn new() -> Self {
        Pam::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared reference to the value for `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let mut shift = 0u32;
        loop {
            match node {
                PamNode::Leaf(k, v) => return (*k == key).then_some(v),
                PamNode::Branch { bitmap, children } => {
                    let (present, idx) = child_slot(*bitmap, (key >> shift) & MASK);
                    if !present {
                        return None;
                    }
                    node = children.get(idx)?;
                    shift += BITS;
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: self.root.as_deref().into_iter().collect(),
        }
    }

    /// Iterate over keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate over values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<V: Clone> Pam<V> {
    /// Insert `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match &mut self.root {
            None => {
                self.root = Some(Arc::new(PamNode::Leaf(key, value)));
                self.len += 1;
                None
            }
            Some(root) => {
                let old = insert_node(root, key, value, 0);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    /// Exclusive reference to the value for `key`, copying the path to it
    /// if the structure is shared.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        // Peek first: `make_mut` on a miss would clone nodes for nothing.
        if !self.contains_key(key) {
            return None;
        }
        get_mut_node(self.root.as_mut()?, key, 0)
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let root = self.root.as_mut()?;
        let (removed, now_empty) = remove_node(root, key, 0);
        if now_empty {
            self.root = None;
        }
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Keep only entries for which `f` returns true; `f` may mutate values.
    pub fn retain(&mut self, mut f: impl FnMut(u64, &mut V) -> bool) {
        if let Some(root) = self.root.as_mut() {
            let (kept, empty) = retain_node(root, &mut f);
            self.len = kept;
            if empty {
                self.root = None;
            }
        }
    }

    /// Apply `f` to every entry, copying shared structure as needed.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(u64, &mut V)) {
        if let Some(root) = self.root.as_mut() {
            for_each_mut_node(root, &mut f);
        }
    }
}

fn insert_node<V: Clone>(node: &mut Arc<PamNode<V>>, key: u64, value: V, shift: u32) -> Option<V> {
    // Leaf cases replace the whole node, so peek before `make_mut`.
    let leaf_key = match &**node {
        PamNode::Leaf(k, _) => Some(*k),
        PamNode::Branch { .. } => None,
    };
    if let Some(k) = leaf_key {
        let inner = Arc::make_mut(node);
        if k == key {
            if let PamNode::Leaf(_, v) = inner {
                return Some(std::mem::replace(v, value));
            }
            return None;
        }
        // Split: replace this leaf with a branch holding both keys,
        // descending further while their chunks collide.
        let old = std::mem::replace(inner, empty_branch());
        if let PamNode::Leaf(_, existing) = old {
            *inner = split_leaves(k, existing, key, value, shift);
        }
        return None;
    }
    let PamNode::Branch { bitmap, children } = Arc::make_mut(node) else {
        return None;
    };
    let chunk = (key >> shift) & MASK;
    let (present, idx) = child_slot(*bitmap, chunk);
    if present {
        match children.get_mut(idx) {
            Some(child) => insert_node(child, key, value, shift + BITS),
            None => None,
        }
    } else {
        *bitmap |= 1u16 << chunk;
        children.insert(idx, Arc::new(PamNode::Leaf(key, value)));
        None
    }
}

/// `Arc::make_mut` needs ownership of the old node to move its value out;
/// this placeholder briefly stands in for it during a leaf split.
fn empty_branch<V>() -> PamNode<V> {
    PamNode::Branch {
        bitmap: 0,
        children: Vec::new(),
    }
}

fn split_leaves<V>(k1: u64, v1: V, k2: u64, v2: V, shift: u32) -> PamNode<V> {
    let c1 = (k1 >> shift) & MASK;
    let c2 = (k2 >> shift) & MASK;
    if c1 == c2 {
        PamNode::Branch {
            bitmap: 1u16 << c1,
            children: vec![Arc::new(split_leaves(k1, v1, k2, v2, shift + BITS))],
        }
    } else {
        let (first, second) = if c1 < c2 {
            (PamNode::Leaf(k1, v1), PamNode::Leaf(k2, v2))
        } else {
            (PamNode::Leaf(k2, v2), PamNode::Leaf(k1, v1))
        };
        PamNode::Branch {
            bitmap: (1u16 << c1) | (1u16 << c2),
            children: vec![Arc::new(first), Arc::new(second)],
        }
    }
}

fn get_mut_node<V: Clone>(node: &mut Arc<PamNode<V>>, key: u64, shift: u32) -> Option<&mut V> {
    match Arc::make_mut(node) {
        PamNode::Leaf(k, v) => (*k == key).then_some(v),
        PamNode::Branch { bitmap, children } => {
            let (present, idx) = child_slot(*bitmap, (key >> shift) & MASK);
            if !present {
                return None;
            }
            get_mut_node(children.get_mut(idx)?, key, shift + BITS)
        }
    }
}

/// Remove `key` under `node`; returns the removed value and whether the
/// node is now empty and must be dropped by the parent.
fn remove_node<V: Clone>(node: &mut Arc<PamNode<V>>, key: u64, shift: u32) -> (Option<V>, bool) {
    if let PamNode::Leaf(k, _) = &**node {
        if *k != key {
            return (None, false);
        }
        // The parent drops this node; the value is recovered by swapping
        // in a placeholder.
        let inner = Arc::make_mut(node);
        let old = std::mem::replace(inner, empty_branch());
        if let PamNode::Leaf(_, v) = old {
            return (Some(v), true);
        }
        return (None, true);
    }
    let (removed, collapse) = {
        let PamNode::Branch { bitmap, children } = Arc::make_mut(node) else {
            return (None, false);
        };
        let chunk = (key >> shift) & MASK;
        let (present, idx) = child_slot(*bitmap, chunk);
        if !present {
            return (None, false);
        }
        let Some(child) = children.get_mut(idx) else {
            return (None, false);
        };
        let (removed, child_empty) = remove_node(child, key, shift + BITS);
        if child_empty {
            *bitmap &= !(1u16 << chunk);
            children.remove(idx);
        }
        if children.is_empty() {
            return (removed, true);
        }
        // Canonical shape: a branch whose single child is a leaf collapses
        // to that leaf.
        let collapse = (children.len() == 1 && matches!(&*children[0], PamNode::Leaf(..)))
            .then(|| children.remove(0));
        (removed, collapse)
    };
    if let Some(only) = collapse {
        *node = only;
    }
    (removed, false)
}

fn retain_node<V: Clone>(
    node: &mut Arc<PamNode<V>>,
    f: &mut impl FnMut(u64, &mut V) -> bool,
) -> (usize, bool) {
    if matches!(&**node, PamNode::Leaf(..)) {
        let inner = Arc::make_mut(node);
        if let PamNode::Leaf(k, v) = inner {
            return if f(*k, v) { (1, false) } else { (0, true) };
        }
        return (0, true);
    }
    let (kept, collapse) = {
        let PamNode::Branch { bitmap, children } = Arc::make_mut(node) else {
            return (0, true);
        };
        let mut kept = 0usize;
        let mut chunk_bits: Vec<u16> = Vec::with_capacity(children.len());
        {
            let mut bits = *bitmap;
            while bits != 0 {
                let low = bits & bits.wrapping_neg();
                chunk_bits.push(low);
                bits &= bits - 1;
            }
        }
        let mut idx = 0usize;
        for bit in chunk_bits {
            let Some(child) = children.get_mut(idx) else {
                break;
            };
            let (child_kept, child_empty) = retain_node(child, f);
            kept += child_kept;
            if child_empty {
                *bitmap &= !bit;
                children.remove(idx);
            } else {
                idx += 1;
            }
        }
        if children.is_empty() {
            return (kept, true);
        }
        let collapse = (children.len() == 1 && matches!(&*children[0], PamNode::Leaf(..)))
            .then(|| children.remove(0));
        (kept, collapse)
    };
    if let Some(only) = collapse {
        *node = only;
    }
    (kept, false)
}

fn for_each_mut_node<V: Clone>(node: &mut Arc<PamNode<V>>, f: &mut impl FnMut(u64, &mut V)) {
    match Arc::make_mut(node) {
        PamNode::Leaf(k, v) => f(*k, v),
        PamNode::Branch { children, .. } => {
            for child in children {
                for_each_mut_node(child, f);
            }
        }
    }
}

/// Borrowed iterator over all entries, unspecified order.
pub struct Iter<'a, V> {
    stack: Vec<&'a PamNode<V>>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.stack.pop()? {
                PamNode::Leaf(k, v) => return Some((*k, v)),
                PamNode::Branch { children, .. } => {
                    self.stack.extend(children.iter().map(|c| &**c));
                }
            }
        }
    }
}

impl<V: PartialEq> PartialEq for Pam<V> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => node_eq(a, b),
            _ => false,
        }
    }
}

impl<V: Eq> Eq for Pam<V> {}

fn node_eq<V: PartialEq>(a: &Arc<PamNode<V>>, b: &Arc<PamNode<V>>) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    match (&**a, &**b) {
        (PamNode::Leaf(ka, va), PamNode::Leaf(kb, vb)) => ka == kb && va == vb,
        (
            PamNode::Branch {
                bitmap: ba,
                children: ca,
            },
            PamNode::Branch {
                bitmap: bb,
                children: cb,
            },
        ) => ba == bb && ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| node_eq(x, y)),
        _ => false,
    }
}

impl<V: Clone> FromIterator<(u64, V)> for Pam<V> {
    fn from_iter<T: IntoIterator<Item = (u64, V)>>(iter: T) -> Self {
        let mut map = Pam::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = Pam::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(17, "b"), None); // collides with 1 in chunk 0
        assert_eq!(m.insert(1, "a2"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&"a2"));
        assert_eq!(m.get(17), Some(&"b"));
        assert_eq!(m.get(33), None);
        assert_eq!(m.remove(1), Some("a2"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(17), Some(&"b"));
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Pam::new();
        for k in 0..200u64 {
            a.insert(k * 7, k);
        }
        let snapshot = a.clone();
        for k in 0..200u64 {
            *a.get_mut(k * 7).unwrap() += 1000;
        }
        a.insert(99_999, 1);
        a.remove(0);
        for k in 0..200u64 {
            assert_eq!(snapshot.get(k * 7), Some(&k), "snapshot must be frozen");
        }
        assert_eq!(snapshot.len(), 200);
        assert_eq!(a.get(7), Some(&1001));
    }

    #[test]
    fn matches_hashmap_model() {
        // Deterministic pseudo-random workload cross-checked against
        // std::collections::HashMap.
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut m: Pam<u64> = Pam::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for i in 0..4000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 512; // force collisions and deep splits
            match state % 3 {
                0 => {
                    assert_eq!(m.insert(key, i), model.insert(key, i));
                }
                1 => {
                    assert_eq!(m.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(key), model.get(&key));
                    if let Some(v) = m.get_mut(key) {
                        *v += 1;
                        *model.get_mut(&key).unwrap() += 1;
                    }
                }
            }
            assert_eq!(m.len(), model.len());
        }
        let collected: HashMap<u64, u64> = m.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(collected, model);
    }

    #[test]
    fn retain_and_for_each_mut() {
        let mut m: Pam<u64> = (0..100u64).map(|k| (k, k)).collect();
        m.retain(|k, v| {
            *v += 1;
            k % 2 == 0
        });
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(4), Some(&5));
        assert_eq!(m.get(5), None);
        m.for_each_mut(|_, v| *v *= 10);
        assert_eq!(m.get(4), Some(&50));
        assert_eq!(m.values().count(), 50);
        assert_eq!(m.keys().filter(|k| k % 2 == 1).count(), 0);
    }

    #[test]
    fn equality_is_shape_independent() {
        let keys: Vec<u64> = vec![0, 1, 16, 17, 256, 4096, 65536, 65537, 3];
        let forward: Pam<u64> = keys.iter().map(|&k| (k, k)).collect();
        let reverse: Pam<u64> = keys.iter().rev().map(|&k| (k, k)).collect();
        assert_eq!(forward, reverse);

        // Removal collapses back to the canonical shape of a fresh build.
        let mut pruned = forward.clone();
        pruned.insert(999_999, 0);
        pruned.remove(999_999);
        assert_eq!(pruned, forward);

        let mut differs = forward.clone();
        *differs.get_mut(16).unwrap() = 0;
        assert_ne!(differs, forward);
    }

    #[test]
    fn shared_subtrees_survive_partial_mutation() {
        let mut a: Pam<String> = (0..64u64).map(|k| (k, format!("v{k}"))).collect();
        let b = a.clone();
        // Touch one key: only its path is copied, so deep equality still
        // short-circuits on the untouched shared subtrees.
        a.get_mut(63).unwrap().push('!');
        assert_ne!(a, b);
        assert_eq!(a.get(0), b.get(0));
    }
}
