//! Nodes: the atomic data unit of a hyperdocument.
//!
//! Paper §A.2: *"Each node is either an archive or a file. Complete version
//! histories are maintained for archives, only the current version is
//! available for files."* Node contents are uninterpreted bytes. A node
//! also carries attributes, per-node demons, protections, the set of links
//! ever attached to it, and two version histories: **major** versions
//! ("updates to the contents") and **minor** versions ("updates that relate
//! to the node but do not change its contents, for example adding a link or
//! defining an attribute value") — `getNodeVersions` returns both.

use neptune_storage::archive::Archive;
use neptune_storage::codec::{decode_seq, encode_seq, Decode, Encode, Reader, Writer};
use neptune_storage::error::Result as StorageResult;

use crate::attributes::AttrMap;
use crate::demons::DemonTable;
use crate::error::{HamError, Result};
use crate::history::Versioned;
use crate::types::{decode_protections, LinkIndex, NodeIndex, Protections, Time, Version};

/// Node contents storage: archive (full history, backward deltas) or file
/// (current version only).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeContents {
    /// Complete version history, stored as head + backward deltas.
    Archive(Archive),
    /// Current version only.
    File {
        /// The current contents, shared: readers get a refcount bump and
        /// modification replaces the `Arc` rather than mutating through it.
        data: std::sync::Arc<[u8]>,
        /// Time of the last modification.
        time: Time,
    },
}

/// A hyperdata node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's unique identification.
    pub id: NodeIndex,
    /// Creation time.
    pub created: Time,
    /// Existence history: true while the node is alive; `deleteNode`
    /// records a deletion but old versions of the graph still see the node.
    pub alive: Versioned<bool>,
    contents: NodeContents,
    /// Attribute/value pairs.
    pub attrs: AttrMap,
    /// Per-node demons.
    pub demons: DemonTable,
    /// File protections for the node's backing store.
    pub protections: Protections,
    /// Every link that was ever attached to this node (either end). Whether
    /// an attachment is live at a given time is determined by the link.
    pub incident_links: Vec<LinkIndex>,
    major_versions: Vec<Version>,
    minor_versions: Vec<Version>,
}

impl Node {
    /// Create a node. `keep_history = true` makes it an archive (the
    /// `addNode` Boolean operand); otherwise it is a file node.
    pub fn new(id: NodeIndex, now: Time, keep_history: bool) -> Node {
        let contents = if keep_history {
            NodeContents::Archive(Archive::new(Vec::new(), now.0))
        } else {
            NodeContents::File {
                data: std::sync::Arc::from(&[][..]),
                time: now,
            }
        };
        Node {
            id,
            created: now,
            alive: Versioned::with_initial(now, true),
            contents,
            attrs: AttrMap::new(),
            demons: DemonTable::new(),
            protections: Protections::DEFAULT,
            incident_links: Vec::new(),
            major_versions: vec![Version::new(now, "created")],
            minor_versions: Vec::new(),
        }
    }

    /// Whether this node keeps a complete version history.
    pub fn is_archive(&self) -> bool {
        matches!(self.contents, NodeContents::Archive(_))
    }

    /// The backing archive, if this node keeps full version history; `None`
    /// for file nodes. Used by integrity checkers to walk the delta chain.
    pub fn archive(&self) -> Option<&neptune_storage::Archive> {
        match &self.contents {
            NodeContents::Archive(a) => Some(a),
            NodeContents::File { .. } => None,
        }
    }

    /// Whether the node exists (is not deleted) at `time`.
    pub fn exists_at(&self, time: Time) -> bool {
        self.alive.get_at(time).copied().unwrap_or(false)
    }

    /// Contents at `time` (`CURRENT` = newest). File nodes only answer for
    /// the current version.
    pub fn contents_at(&self, time: Time) -> Result<std::sync::Arc<[u8]>> {
        match &self.contents {
            NodeContents::Archive(a) => a.checkout(time.0).map_err(HamError::from),
            NodeContents::File { data, .. } => {
                if time.is_current() {
                    Ok(data.clone())
                } else {
                    Err(HamError::NoHistory(self.id))
                }
            }
        }
    }

    /// Version time of the current contents — `getNodeTimeStamp`.
    pub fn current_time(&self) -> Time {
        match &self.contents {
            NodeContents::Archive(a) => Time(a.head_time()),
            NodeContents::File { time, .. } => *time,
        }
    }

    /// The version time of the contents in effect at `time`.
    pub fn resolve_content_time(&self, time: Time) -> Result<Time> {
        match &self.contents {
            NodeContents::Archive(a) => Ok(Time(a.resolve_time(time.0)?)),
            NodeContents::File { time: t, .. } => {
                if time.is_current() || time >= *t {
                    Ok(*t)
                } else {
                    Err(HamError::NoHistory(self.id))
                }
            }
        }
    }

    /// Check in new contents at `now` — the content half of `modifyNode`.
    /// Archives grow a new version; files overwrite.
    pub fn modify(
        &mut self,
        contents: impl Into<std::sync::Arc<[u8]>>,
        now: Time,
        explanation: &str,
    ) -> Result<()> {
        match &mut self.contents {
            NodeContents::Archive(a) => a.checkin(contents, now.0)?,
            NodeContents::File { data, time } => {
                *data = contents.into();
                *time = now;
            }
        }
        self.major_versions.push(Version::new(now, explanation));
        Ok(())
    }

    /// Record a minor version (link or attribute change).
    pub fn record_minor(&mut self, now: Time, explanation: &str) {
        // Coalesce several minor changes within one clock tick.
        if self.minor_versions.last().map(|v| v.time) == Some(now) {
            return;
        }
        self.minor_versions.push(Version::new(now, explanation));
    }

    /// `getNodeVersions`: (major, minor) version histories, oldest first.
    pub fn versions(&self) -> (Vec<Version>, Vec<Version>) {
        (self.major_versions.clone(), self.minor_versions.clone())
    }

    /// Bytes of storage for contents (delta-compressed for archives).
    pub fn storage_bytes(&self) -> u64 {
        match &self.contents {
            NodeContents::Archive(a) => a.storage_bytes(),
            NodeContents::File { data, .. } => data.len() as u64,
        }
    }

    /// Register that `link` attaches to this node.
    pub fn attach_link(&mut self, link: LinkIndex) {
        if !self.incident_links.contains(&link) {
            self.incident_links.push(link);
        }
    }

    /// Roll back all node state recorded after `time`. Returns `false` if
    /// the node itself was created after `time` and should be dropped.
    pub fn truncate_after(&mut self, time: Time) -> bool {
        if self.created > time {
            return false;
        }
        self.alive.truncate_after(time);
        self.attrs.truncate_after(time);
        self.demons.truncate_after(time);
        if let NodeContents::Archive(a) = &mut self.contents {
            a.truncate_after(time.0)
                .expect("created <= time implies a version survives");
        }
        // File nodes keep only the current version; a rolled-back file node
        // retains whatever contents it had (single-writer transactions mean
        // the pre-transaction contents were never overwritten durably —
        // the Ham layer forbids file-node writes inside transactions).
        self.major_versions.retain(|v| v.time <= time);
        self.minor_versions.retain(|v| v.time <= time);
        true
    }
}

impl Encode for Node {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.created.encode(w);
        self.alive.encode(w);
        match &self.contents {
            NodeContents::Archive(a) => {
                // Tag 2 is the v2 archive layout: canonical chain plus the
                // persisted skip ladder, so reopened stores keep sublinear
                // cold checkout. Tag 0 (ladder-less v1) is still decoded for
                // read compatibility; the next checkpoint re-encodes as v2.
                w.put_u8(2);
                a.encode_with_index(w);
            }
            NodeContents::File { data, time } => {
                w.put_u8(1);
                w.put_bytes(data);
                time.encode(w);
            }
        }
        self.attrs.encode(w);
        self.demons.encode(w);
        self.protections.encode(w);
        encode_seq(&self.incident_links, w);
        encode_seq(&self.major_versions, w);
        encode_seq(&self.minor_versions, w);
    }
}

impl Decode for Node {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let id = NodeIndex::decode(r)?;
        let created = Time::decode(r)?;
        let alive = Versioned::<bool>::decode(r)?;
        let contents = match r.get_u8()? {
            0 => NodeContents::Archive(Archive::decode(r)?),
            1 => NodeContents::File {
                data: r.get_bytes()?.into(),
                time: Time::decode(r)?,
            },
            2 => NodeContents::Archive(Archive::decode_with_index(r)?),
            tag => {
                return Err(neptune_storage::StorageError::InvalidTag {
                    context: "NodeContents",
                    tag: tag as u64,
                })
            }
        };
        Ok(Node {
            id,
            created,
            alive,
            contents,
            attrs: AttrMap::decode(r)?,
            demons: DemonTable::decode(r)?,
            protections: decode_protections(r)?,
            incident_links: decode_seq(r)?,
            major_versions: decode_seq(r)?,
            minor_versions: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_node_keeps_history() {
        let mut n = Node::new(NodeIndex(1), Time(1), true);
        assert!(n.is_archive());
        n.modify(b"v2 contents".to_vec(), Time(5), "edit").unwrap();
        n.modify(b"v3 contents".to_vec(), Time(9), "edit").unwrap();
        assert_eq!(&n.contents_at(Time(1)).unwrap()[..], b"");
        assert_eq!(&n.contents_at(Time(5)).unwrap()[..], b"v2 contents");
        assert_eq!(&n.contents_at(Time(7)).unwrap()[..], b"v2 contents");
        assert_eq!(&n.contents_at(Time::CURRENT).unwrap()[..], b"v3 contents");
        assert_eq!(n.current_time(), Time(9));
    }

    #[test]
    fn file_node_has_no_history() {
        let mut n = Node::new(NodeIndex(2), Time(1), false);
        assert!(!n.is_archive());
        n.modify(b"only current".to_vec(), Time(5), "edit").unwrap();
        assert_eq!(&n.contents_at(Time::CURRENT).unwrap()[..], b"only current");
        assert!(matches!(
            n.contents_at(Time(1)),
            Err(HamError::NoHistory(_))
        ));
        assert_eq!(n.current_time(), Time(5));
    }

    #[test]
    fn versions_split_major_minor() {
        let mut n = Node::new(NodeIndex(3), Time(1), true);
        n.modify(b"x".to_vec(), Time(2), "content edit").unwrap();
        n.record_minor(Time(3), "attribute set");
        n.record_minor(Time(3), "coalesced");
        n.record_minor(Time(4), "link added");
        let (major, minor) = n.versions();
        assert_eq!(major.len(), 2); // created + edit
        assert_eq!(minor.len(), 2); // t3 coalesced, t4
        assert_eq!(major[1].explanation, "content edit");
    }

    #[test]
    fn existence_follows_alive_history() {
        let mut n = Node::new(NodeIndex(4), Time(5), true);
        assert!(!n.exists_at(Time(4)));
        assert!(n.exists_at(Time(5)));
        n.alive.delete(Time(9));
        assert!(n.exists_at(Time(8)));
        assert!(!n.exists_at(Time(9)));
        assert!(!n.exists_at(Time::CURRENT));
    }

    #[test]
    fn truncate_rolls_back_contents_and_versions() {
        let mut n = Node::new(NodeIndex(5), Time(1), true);
        n.modify(b"keep".to_vec(), Time(3), "keep").unwrap();
        n.modify(b"drop".to_vec(), Time(8), "drop").unwrap();
        assert!(n.truncate_after(Time(5)));
        assert_eq!(&n.contents_at(Time::CURRENT).unwrap()[..], b"keep");
        let (major, _) = n.versions();
        assert_eq!(major.len(), 2);
        // A node created after the truncation point reports false.
        let mut late = Node::new(NodeIndex(6), Time(9), true);
        assert!(!late.truncate_after(Time(5)));
    }

    #[test]
    fn attach_link_dedupes() {
        let mut n = Node::new(NodeIndex(7), Time(1), true);
        n.attach_link(LinkIndex(1));
        n.attach_link(LinkIndex(1));
        n.attach_link(LinkIndex(2));
        assert_eq!(n.incident_links, vec![LinkIndex(1), LinkIndex(2)]);
    }

    #[test]
    fn codec_roundtrip() {
        let mut n = Node::new(NodeIndex(8), Time(1), true);
        n.modify(b"hello\nworld\n".to_vec(), Time(2), "edit")
            .unwrap();
        n.attrs.set(
            crate::types::AttributeIndex(0),
            crate::value::Value::str("x"),
            Time(3),
        );
        n.attach_link(LinkIndex(4));
        n.record_minor(Time(3), "attr");
        let decoded = Node::from_bytes(&n.to_bytes()).unwrap();
        assert_eq!(decoded, n);

        let f = Node::new(NodeIndex(9), Time(1), false);
        assert_eq!(Node::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn v2_encoding_carries_the_archive_index() {
        let mut n = Node::new(NodeIndex(10), Time(1), true);
        for i in 0..40u64 {
            n.modify(format!("draft {i}\n").into_bytes(), Time(i + 2), "edit")
                .unwrap();
        }
        assert!(n.archive().unwrap().skip_count() > 0);
        let decoded = Node::from_bytes(&n.to_bytes()).unwrap();
        assert_eq!(decoded, n);
        assert_eq!(
            decoded.archive().unwrap().skip_count(),
            n.archive().unwrap().skip_count(),
            "the skip ladder must survive the node encoding"
        );
    }

    #[test]
    fn legacy_v1_archive_tag_still_decodes() {
        let mut n = Node::new(NodeIndex(11), Time(1), true);
        n.modify(b"v2 contents".to_vec(), Time(2), "edit").unwrap();
        // Re-encode by hand with the pre-index tag 0 layout, as a store
        // written before the format bump would contain.
        let mut w = Writer::new();
        n.id.encode(&mut w);
        n.created.encode(&mut w);
        n.alive.encode(&mut w);
        w.put_u8(0);
        n.archive().unwrap().encode(&mut w);
        n.attrs.encode(&mut w);
        n.demons.encode(&mut w);
        n.protections.encode(&mut w);
        encode_seq(&n.incident_links, &mut w);
        encode_seq(&n.major_versions, &mut w);
        encode_seq(&n.minor_versions, &mut w);
        let decoded = Node::from_bytes(&w.into_bytes()).unwrap();
        assert_eq!(decoded, n, "v1 nodes must decode identically");
        assert_eq!(decoded.archive().unwrap().skip_count(), 0);
    }
}
