//! The HAM's predicate language.
//!
//! Paper §3: both query mechanisms *"use predicates based on
//! attribute/value pairs to determine which nodes and links satisfy the
//! query"*, giving the example `document = requirements`. The appendix
//! types them as `Predicate: a Boolean formula in terms of attributes and
//! their values`.
//!
//! Grammar (case-sensitive keywords, `|`/`&`/`!` accepted as synonyms):
//!
//! ```text
//! pred    := or
//! or      := and  ( ("or"  | "|") and )*
//! and     := unary( ("and" | "&") unary )*
//! unary   := ("not" | "!") unary | primary
//! primary := "(" pred ")" | "true" | "false"
//!          | "exists" "(" attr ")"
//!          | attr cmp literal
//! cmp     := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//! attr    := identifier | quoted string
//! literal := quoted string | integer | float | "true" | "false" | bareword
//! ```
//!
//! Missing attributes fail every comparison (including `!=`); use
//! `not exists(attr)` to select objects lacking an attribute.

mod lexer;
mod parser;

pub use parser::parse;

use std::cmp::Ordering;
use std::fmt;

use crate::value::Value;

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` / `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator's source text.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A parsed Boolean formula over attribute/value pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true — the default "visibility predicate" showing everything.
    True,
    /// Always false.
    False,
    /// `attr op literal`.
    Cmp {
        /// The attribute name.
        attr: String,
        /// The comparison.
        op: CmpOp,
        /// The literal to compare against.
        value: Value,
    },
    /// `exists(attr)` — the attribute has a value.
    Exists(String),
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Parse predicate source text.
    ///
    /// ```
    /// use neptune_ham::{Predicate, Value};
    /// let p = Predicate::parse("document = requirements and version > 3").unwrap();
    /// let lookup = |name: &str| match name {
    ///     "document" => Some(Value::str("requirements")),
    ///     "version" => Some(Value::Int(4)),
    ///     _ => None,
    /// };
    /// assert!(p.matches(&lookup));
    /// ```
    pub fn parse(text: &str) -> Result<Predicate, String> {
        parse(text)
    }

    /// Evaluate against an attribute lookup function.
    ///
    /// `lookup` returns the value of a named attribute for the object under
    /// test (at whatever time the caller has fixed), or `None` if unset.
    pub fn matches<F>(&self, lookup: &F) -> bool
    where
        F: Fn(&str) -> Option<Value>,
    {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Cmp { attr, op, value } => match lookup(attr) {
                Some(actual) => actual
                    .partial_cmp_same_type(value)
                    .map(|ord| op.eval(ord))
                    .unwrap_or(false),
                None => false,
            },
            Predicate::Exists(attr) => lookup(attr).is_some(),
            Predicate::Not(p) => !p.matches(lookup),
            Predicate::And(a, b) => a.matches(lookup) && b.matches(lookup),
            Predicate::Or(a, b) => a.matches(lookup) || b.matches(lookup),
        }
    }

    /// If this predicate (possibly under conjunctions) requires
    /// `attr = value` for some attribute, return one such pair. This is the
    /// hook the query planner uses to consult the attribute value index
    /// instead of scanning every node (experiment E3's ablation).
    pub fn index_hint(&self) -> Option<(&str, &Value)> {
        match self {
            Predicate::Cmp {
                attr,
                op: CmpOp::Eq,
                value,
            } => Some((attr.as_str(), value)),
            Predicate::And(a, b) => a.index_hint().or_else(|| b.index_hint()),
            _ => None,
        }
    }

    /// Build `a and b`, simplifying around `True`.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { attr, op, value } => {
                let lit = match value {
                    Value::Str(s) => format!("\"{s}\""),
                    other => other.to_string(),
                };
                write!(f, "{attr} {} {lit}", op.symbol())
            }
            Predicate::Exists(attr) => write!(f, "exists({attr})"),
            Predicate::Not(p) => write!(f, "not ({p})"),
            Predicate::And(a, b) => write!(f, "({a}) and ({b})"),
            Predicate::Or(a, b) => write!(f, "({a}) or ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_fixture(attr: &str) -> Option<Value> {
        match attr {
            "document" => Some(Value::str("requirements")),
            "version" => Some(Value::Int(4)),
            "reviewed" => Some(Value::Bool(true)),
            "score" => Some(Value::Float(2.5)),
            _ => None,
        }
    }

    fn eval(text: &str) -> bool {
        Predicate::parse(text).unwrap().matches(&lookup_fixture)
    }

    #[test]
    fn paper_example_predicate() {
        // §3: "The node visibility predicate 'document = requirements'".
        assert!(eval("document = requirements"));
        assert!(!eval("document = design"));
    }

    #[test]
    fn comparisons() {
        assert!(eval("version = 4"));
        assert!(eval("version != 3"));
        assert!(eval("version > 3"));
        assert!(eval("version >= 4"));
        assert!(eval("version < 5"));
        assert!(eval("version <= 4"));
        assert!(!eval("version > 4"));
        assert!(eval("score > 2.0"));
        assert!(eval("reviewed = true"));
    }

    #[test]
    fn missing_attributes_fail_all_comparisons() {
        assert!(!eval("owner = norm"));
        assert!(!eval("owner != norm"));
        assert!(!eval("owner < zzz"));
        assert!(eval("not exists(owner)"));
        assert!(eval("exists(document)"));
    }

    #[test]
    fn cross_type_comparisons_fail() {
        assert!(!eval("version = \"4\""));
        assert!(!eval("document = 4"));
    }

    #[test]
    fn boolean_connectives() {
        assert!(eval("document = requirements and version = 4"));
        assert!(!eval("document = requirements and version = 5"));
        assert!(eval("document = design or version = 4"));
        assert!(eval("not document = design"));
        assert!(eval("document = requirements & reviewed = true"));
        assert!(eval("document = design | reviewed = true"));
        assert!(eval("! document = design"));
    }

    #[test]
    fn precedence_or_lower_than_and() {
        // a or b and c  ==  a or (b and c)
        assert!(eval(
            "document = requirements or document = design and version = 99"
        ));
        assert!(!eval(
            "(document = requirements or document = design) and version = 99"
        ));
    }

    #[test]
    fn parens_and_constants() {
        assert!(eval("true"));
        assert!(!eval("false"));
        assert!(eval("(true)"));
        assert!(eval("not false"));
    }

    #[test]
    fn quoted_strings_and_attrs() {
        assert!(eval("document = \"requirements\""));
        assert!(eval("\"document\" = requirements"));
    }

    #[test]
    fn display_reparses_to_equivalent_predicate() {
        for text in [
            "document = requirements and version > 3",
            "not exists(owner) or reviewed = true",
            "true",
            "score >= 2.5",
        ] {
            let p = Predicate::parse(text).unwrap();
            let p2 = Predicate::parse(&p.to_string()).unwrap();
            assert_eq!(
                p.matches(&lookup_fixture),
                p2.matches(&lookup_fixture),
                "{text}"
            );
        }
    }

    #[test]
    fn index_hint_finds_equality_under_conjunction() {
        let p = Predicate::parse("version > 3 and document = requirements").unwrap();
        let (attr, value) = p.index_hint().unwrap();
        assert_eq!(attr, "document");
        assert_eq!(value, &Value::str("requirements"));
        assert!(Predicate::parse("version > 3")
            .unwrap()
            .index_hint()
            .is_none());
        assert!(Predicate::parse("a = 1 or b = 2")
            .unwrap()
            .index_hint()
            .is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Predicate::parse("").is_err());
        assert!(Predicate::parse("document =").is_err());
        assert!(Predicate::parse("and document = x").is_err());
        assert!(Predicate::parse("(document = x").is_err());
        assert!(Predicate::parse("document = x extra").is_err());
        assert!(Predicate::parse("exists document").is_err());
    }

    #[test]
    fn and_builder_simplifies_true() {
        let p = Predicate::True.and(Predicate::Exists("x".into()));
        assert_eq!(p, Predicate::Exists("x".into()));
    }
}
