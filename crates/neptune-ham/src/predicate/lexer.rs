//! Tokenizer for predicate text.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare identifier or keyword.
    Ident(String),
    /// A double-quoted string (quotes stripped, `\"` and `\\` unescaped).
    Quoted(String),
    /// A numeric literal, kept as text for the value parser.
    Number(String),
    /// `=` or `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `&` (synonym for `and`)
    Amp,
    /// `|` (synonym for `or`)
    Pipe,
    /// `!` (synonym for `not`)
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Quoted(s) => write!(f, "\"{s}\""),
            Token::Number(s) => write!(f, "{s}"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Bang => write!(f, "!"),
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '-')
}

/// Tokenize `text`, or report the offending character position.
pub fn lex(text: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '&' => {
                tokens.push(Token::Amp);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '=' => {
                // Accept both `=` and `==`.
                i += if chars.get(i + 1) == Some(&'=') { 2 } else { 1 };
                tokens.push(Token::Eq);
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(format!("unterminated string at offset {i}")),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => match chars.get(i + 1) {
                            Some('"') => {
                                s.push('"');
                                i += 2;
                            }
                            Some('\\') => {
                                s.push('\\');
                                i += 2;
                            }
                            _ => return Err(format!("bad escape at offset {i}")),
                        },
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Quoted(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                tokens.push(Token::Number(chars[start..i].iter().collect()));
            }
            c if is_ident_char(c) => {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(format!("unexpected character '{other}' at offset {i}")),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_paper_example() {
        let tokens = lex("document = requirements").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("document".into()),
                Token::Eq,
                Token::Ident("requirements".into())
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            lex("= == != < <= > >=").unwrap(),
            vec![
                Token::Eq,
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            lex(r#""he said \"hi\" \\ done""#).unwrap(),
            vec![Token::Quoted(r#"he said "hi" \ done"#.into())]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            lex("42 -7 2.5").unwrap(),
            vec![
                Token::Number("42".into()),
                Token::Number("-7".into()),
                Token::Number("2.5".into())
            ]
        );
    }

    #[test]
    fn identifier_charset() {
        assert_eq!(lex("content-type code.type snake_case").unwrap().len(), 3);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("bad escape: \"\\x\"").is_err());
        assert!(lex("a = é").is_ok()); // alphabetic chars are identifier chars
        assert!(lex("a = €").is_err()); // currency symbols are not
        assert!(lex("a = ;").is_err());
    }
}
