//! Recursive-descent parser for predicate text.

use super::lexer::{lex, Token};
use super::{CmpOp, Predicate};
use crate::value::Value;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse predicate source text into a [`Predicate`].
pub fn parse(text: &str) -> Result<Predicate, String> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let pred = p.or_expr()?;
    match p.peek() {
        None => Ok(pred),
        Some(t) => Err(format!("unexpected trailing token '{t}'")),
    }
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), String> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(format!("expected {what}, found '{t}'")),
            None => Err(format!("expected {what}, found end of input")),
        }
    }

    fn or_expr(&mut self) -> Result<Predicate, String> {
        let mut left = self.and_expr()?;
        loop {
            match self.peek() {
                Some(Token::Pipe) => {
                    self.pos += 1;
                }
                Some(Token::Ident(s)) if s == "or" => {
                    self.pos += 1;
                }
                _ => return Ok(left),
            }
            let right = self.and_expr()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
    }

    fn and_expr(&mut self) -> Result<Predicate, String> {
        let mut left = self.unary()?;
        loop {
            match self.peek() {
                Some(Token::Amp) => {
                    self.pos += 1;
                }
                Some(Token::Ident(s)) if s == "and" => {
                    self.pos += 1;
                }
                _ => return Ok(left),
            }
            let right = self.unary()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
    }

    fn unary(&mut self) -> Result<Predicate, String> {
        match self.peek() {
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Predicate::Not(Box::new(self.unary()?)))
            }
            Some(Token::Ident(s)) if s == "not" => {
                self.pos += 1;
                Ok(Predicate::Not(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Predicate, String> {
        match self.next() {
            Some(Token::LParen) => {
                let inner = self.or_expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) if name == "true" && !self.comparison_follows() => {
                Ok(Predicate::True)
            }
            Some(Token::Ident(name)) if name == "false" && !self.comparison_follows() => {
                Ok(Predicate::False)
            }
            Some(Token::Ident(name)) if name == "exists" => {
                self.expect(&Token::LParen, "'(' after exists")?;
                let attr = match self.next() {
                    Some(Token::Ident(a)) => a,
                    Some(Token::Quoted(a)) => a,
                    Some(t) => return Err(format!("expected attribute name, found '{t}'")),
                    None => return Err("expected attribute name, found end of input".into()),
                };
                self.expect(&Token::RParen, "')' after exists(attr")?;
                Ok(Predicate::Exists(attr))
            }
            Some(Token::Ident(attr)) => self.comparison(attr),
            Some(Token::Quoted(attr)) => self.comparison(attr),
            Some(t) => Err(format!("expected a predicate, found '{t}'")),
            None => Err("expected a predicate, found end of input".into()),
        }
    }

    /// Whether the next token begins a comparison (so that an attribute
    /// named `true` can still appear on the left of `=`).
    fn comparison_follows(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge)
        )
    }

    fn comparison(&mut self, attr: String) -> Result<Predicate, String> {
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(t) => return Err(format!("expected a comparison operator, found '{t}'")),
            None => return Err("expected a comparison operator, found end of input".into()),
        };
        let value = match self.next() {
            Some(Token::Quoted(s)) => Value::Str(s),
            Some(Token::Number(n)) => Value::parse_literal(&n),
            Some(Token::Ident(w)) => Value::parse_literal(&w),
            Some(t) => return Err(format!("expected a literal, found '{t}'")),
            None => return Err("expected a literal, found end of input".into()),
        };
        Ok(Predicate::Cmp { attr, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comparison_shapes() {
        assert_eq!(
            parse("contentType = sourceCode").unwrap(),
            Predicate::Cmp {
                attr: "contentType".into(),
                op: CmpOp::Eq,
                value: Value::str("sourceCode")
            }
        );
        assert!(matches!(
            parse("n >= 10").unwrap(),
            Predicate::Cmp { op: CmpOp::Ge, .. }
        ));
    }

    #[test]
    fn attribute_named_true_can_compare() {
        let p = parse("true = yes").unwrap();
        assert!(matches!(p, Predicate::Cmp { .. }));
        assert_eq!(parse("true").unwrap(), Predicate::True);
    }

    #[test]
    fn nested_structure() {
        let p = parse("a = 1 and (b = 2 or not c = 3)").unwrap();
        match p {
            Predicate::And(_, rhs) => match *rhs {
                Predicate::Or(_, not_part) => {
                    assert!(matches!(*not_part, Predicate::Not(_)));
                }
                other => panic!("expected Or, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_name_the_problem() {
        let err = parse("a = ").unwrap_err();
        assert!(err.contains("literal"), "{err}");
        let err = parse("a b").unwrap_err();
        assert!(err.contains("comparison"), "{err}");
        let err = parse("a = 1 b = 2").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
