//! The HAM's atomic domains.
//!
//! The paper's Appendix opens with the atomic domains every operation is
//! typed over: `NodeIndex`, `LinkIndex`, `AttributeIndex`, `Time`,
//! `ProjectId`, `Context`, `Protections`, and the composites
//! `LinkPt = NodeIndex × Position × Time × Boolean` and
//! `Version = Time × Explanation`. This module defines them as newtypes so
//! the Rust signatures of the HAM operations read like the paper's.

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::error::Result as StorageResult;

pub use neptune_storage::blobstore::Protections;

/// Unique identification for a hyperdata node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIndex(pub u64);

/// Unique identification for a hyperdata link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkIndex(pub u64);

/// Unique identification for an attribute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttributeIndex(pub u64);

/// Unique identification for a hyperdata graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProjectId(pub u64);

/// Unique identification for the "current graph" — an opened graph, and
/// (with the multiple-version-threads extension of paper §5) which version
/// thread operations apply to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u64);

/// The main (trunk) version thread every graph starts with.
pub const MAIN_CONTEXT: ContextId = ContextId(0);

/// A non-negative integer representation for a given date and time.
///
/// Neptune's reproduction uses a **logical** per-graph version clock: each
/// state-changing operation advances it by one. The paper only requires that
/// `Time` totally orders versions; a logical clock additionally makes every
/// test and benchmark deterministic. `Time(0)` is reserved and means
/// "current version" wherever the appendix says *"if Time is zero then …
/// the current version"*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Time(pub u64);

impl Time {
    /// The distinguished "current version" marker.
    pub const CURRENT: Time = Time(0);

    /// Whether this is the "current version" marker.
    pub fn is_current(self) -> bool {
        self.0 == 0
    }
}

/// An ordinal position within a node's contents (a byte offset; the paper:
/// "If the node contains text, the offset can be interpreted as a character
/// position").
pub type Position = u64;

/// One end of a link: `LinkPt = NodeIndex × Position × Time × Boolean`.
///
/// `time` pins the attachment to a particular version of the node
/// (`Time::CURRENT` = the current version, per `addLink`'s "if a Time is
/// zero then the link always refers to the current version"). The paper
/// describes these as two mechanisms: a version-pinned attachment is "a
/// useful primitive for building a configuration manager", while a current
/// attachment is "an automatic update mechanism" whose offset history is
/// versioned. The Boolean records which mechanism is in force:
/// `track_current = true` means the attachment follows the node's current
/// version and its offset history is maintained per version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkPt {
    /// The node this end is attached to.
    pub node: NodeIndex,
    /// Byte offset of the attachment within the node's contents.
    pub position: Position,
    /// Version of the node the attachment refers to; `CURRENT` tracks.
    pub time: Time,
    /// Whether the attachment follows the current version.
    pub track_current: bool,
}

impl LinkPt {
    /// An attachment that always refers to the node's current version.
    pub fn current(node: NodeIndex, position: Position) -> LinkPt {
        LinkPt {
            node,
            position,
            time: Time::CURRENT,
            track_current: true,
        }
    }

    /// An attachment pinned to the version of `node` in effect at `time` —
    /// the configuration-management primitive.
    pub fn pinned(node: NodeIndex, position: Position, time: Time) -> LinkPt {
        LinkPt {
            node,
            position,
            time,
            track_current: false,
        }
    }
}

/// `Version = Time × Explanation`: one entry of a version history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// When the version was created.
    pub time: Time,
    /// Explanatory text supplied with (or derived from) the change.
    pub explanation: String,
}

impl Version {
    /// Construct a version record.
    pub fn new(time: Time, explanation: impl Into<String>) -> Version {
        Version {
            time,
            explanation: explanation.into(),
        }
    }
}

/// A valid computer name in a networking environment (`openGraph`'s
/// `Machine` operand). Locally opened graphs use [`Machine::local`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Machine(pub String);

impl Machine {
    /// The machine the caller is running on.
    pub fn local() -> Machine {
        Machine("localhost".to_string())
    }
}

macro_rules! codec_newtype {
    ($ty:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_u64(self.0);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
                Ok($ty(r.get_u64()?))
            }
        }
        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($ty), "({})"), self.0)
            }
        }
    };
}

codec_newtype!(NodeIndex);
codec_newtype!(LinkIndex);
codec_newtype!(AttributeIndex);
codec_newtype!(ProjectId);
codec_newtype!(ContextId);
codec_newtype!(Time);

impl Encode for LinkPt {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        w.put_u64(self.position);
        self.time.encode(w);
        w.put_bool(self.track_current);
    }
}

impl Decode for LinkPt {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(LinkPt {
            node: NodeIndex::decode(r)?,
            position: r.get_u64()?,
            time: Time::decode(r)?,
            track_current: r.get_bool()?,
        })
    }
}

impl Encode for Version {
    fn encode(&self, w: &mut Writer) {
        self.time.encode(w);
        w.put_str(&self.explanation);
    }
}

impl Decode for Version {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(Version {
            time: Time::decode(r)?,
            explanation: r.get_str()?.to_owned(),
        })
    }
}

/// Decode a [`Protections`] written by its `Encode` impl (kept for call
/// sites that predate the trait impl living in `neptune-storage`).
pub fn decode_protections(r: &mut Reader<'_>) -> StorageResult<Protections> {
    Protections::decode(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_codec_roundtrips() {
        let n = NodeIndex(42);
        assert_eq!(NodeIndex::from_bytes(&n.to_bytes()).unwrap(), n);
        let t = Time(7);
        assert_eq!(Time::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn time_current_marker() {
        assert!(Time::CURRENT.is_current());
        assert!(!Time(1).is_current());
        assert_eq!(Time::default(), Time::CURRENT);
    }

    #[test]
    fn linkpt_constructors() {
        let c = LinkPt::current(NodeIndex(1), 10);
        assert!(c.track_current);
        assert!(c.time.is_current());
        let p = LinkPt::pinned(NodeIndex(1), 10, Time(5));
        assert!(!p.track_current);
        assert_eq!(p.time, Time(5));
    }

    #[test]
    fn linkpt_codec_roundtrip() {
        for pt in [
            LinkPt::current(NodeIndex(3), 0),
            LinkPt::pinned(NodeIndex(9), 123, Time(4)),
        ] {
            assert_eq!(LinkPt::from_bytes(&pt.to_bytes()).unwrap(), pt);
        }
    }

    #[test]
    fn version_codec_roundtrip() {
        let v = Version::new(Time(12), "added section 3");
        assert_eq!(Version::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(NodeIndex(5).to_string(), "NodeIndex(5)");
        assert_eq!(Time(5).to_string(), "Time(5)");
    }

    #[test]
    fn times_order() {
        assert!(Time(1) < Time(2));
        assert!(Time::CURRENT < Time(1));
    }
}
