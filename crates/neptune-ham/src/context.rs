//! Contexts: multiple version threads ("private worlds").
//!
//! Paper §5: *"there is frequently the need for an individual to try out
//! tentative designs in that individual's own 'private world' and then
//! eventually to merge the chosen design back with the main design
//! database. … We have designed, and are currently implementing, a scheme
//! for multiple version threads that allows multiple simultaneous contexts
//! to exist in a given Neptune database."* This module implements that
//! extension: a context is forked from a parent graph at a fork time,
//! evolves independently, and can later be merged back.
//!
//! Merging folds the child's **current state of change** back into the
//! parent: nodes/links created in the child are added (with fresh parent
//! ids), contents and attributes modified in the child are applied, and
//! deletions propagate. Where both threads changed the same thing since the
//! fork, the [`ConflictPolicy`] decides. The child's internal version
//! history remains in the child thread — the parent records the merge as
//! ordinary new versions, exactly as a designer "merging the chosen design
//! back" would check it in.

use std::collections::HashMap;

use crate::error::{HamError, Result};
use crate::graph::HamGraph;
use crate::types::{LinkIndex, LinkPt, NodeIndex, Time};

/// What to do when both version threads changed the same object since the
/// fork point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// Refuse the merge, reporting the first conflict (default).
    #[default]
    Fail,
    /// The child's change wins.
    PreferChild,
    /// The parent's state wins (the child's conflicting change is dropped).
    PreferParent,
}

/// Summary of what a merge did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Nodes created in the child and added to the parent, with the id they
    /// received in the parent.
    pub nodes_added: Vec<(NodeIndex, NodeIndex)>,
    /// Links created in the child and added to the parent.
    pub links_added: Vec<(LinkIndex, LinkIndex)>,
    /// Pre-fork nodes whose contents were updated from the child.
    pub nodes_modified: Vec<NodeIndex>,
    /// Pre-fork objects whose attributes were updated from the child.
    pub attrs_changed: usize,
    /// Nodes deleted in the parent because the child deleted them.
    pub nodes_deleted: Vec<NodeIndex>,
    /// Links (pre-fork) deleted in the parent because the child deleted them.
    pub links_deleted: Vec<LinkIndex>,
    /// Conflicts encountered and how they were resolved (empty under
    /// `ConflictPolicy::Fail`, which aborts on the first one).
    pub conflicts: Vec<String>,
}

/// Merge `child` (forked from `parent` at `fork_time`) into `parent`.
///
/// On `Err`, `parent` may have been partially modified; callers (the Ham
/// facade) run merges inside a transaction so failure rolls back cleanly.
pub fn merge_context(
    parent: &mut HamGraph,
    child: &HamGraph,
    fork_time: Time,
    policy: ConflictPolicy,
) -> Result<MergeReport> {
    let mut report = MergeReport::default();
    let mut node_map: HashMap<NodeIndex, NodeIndex> = HashMap::new();

    // Pass 1: nodes created in the child since the fork get fresh parent ids.
    let mut child_new_nodes: Vec<&crate::node::Node> =
        child.nodes().filter(|n| n.created > fork_time).collect();
    child_new_nodes.sort_by_key(|n| n.id);
    for cnode in &child_new_nodes {
        if !cnode.exists_at(Time::CURRENT) {
            continue; // created and deleted inside the private world
        }
        let (new_id, _) = parent.add_node(cnode.is_archive());
        node_map.insert(cnode.id, new_id);
        report.nodes_added.push((cnode.id, new_id));
        let contents = cnode.contents_at(Time::CURRENT)?;
        if !contents.is_empty() {
            let now = parent_tick(parent);
            parent
                .node_mut(new_id)?
                .modify(contents, now, "merged from context")?;
        }
        copy_current_attrs_node(parent, child, cnode, new_id)?;
    }

    // Pass 2: pre-fork nodes — contents, attributes, deletions.
    for cnode in child.nodes().filter(|n| n.created <= fork_time) {
        let id = cnode.id;
        let Ok(pnode) = parent.node(id) else {
            continue; // parent rolled this node away; nothing to merge onto
        };
        node_map.insert(id, id);

        let child_alive = cnode.exists_at(Time::CURRENT);
        let parent_alive = pnode.exists_at(Time::CURRENT);
        if !child_alive {
            if parent_alive {
                let parent_touched = node_changed_after(pnode, fork_time);
                if parent_touched {
                    match policy {
                        ConflictPolicy::Fail => {
                            return Err(HamError::MergeConflict {
                                detail: format!("{id} deleted in child but modified in parent"),
                            })
                        }
                        ConflictPolicy::PreferChild => {
                            report
                                .conflicts
                                .push(format!("{id}: delete (child) over modify (parent)"));
                            parent.delete_node(id)?;
                            report.nodes_deleted.push(id);
                        }
                        ConflictPolicy::PreferParent => {
                            report
                                .conflicts
                                .push(format!("{id}: modify (parent) over delete (child)"));
                        }
                    }
                } else {
                    parent.delete_node(id)?;
                    report.nodes_deleted.push(id);
                }
            }
            continue;
        }
        if !parent_alive {
            // Parent deleted it; child may have modified it.
            if node_changed_after(cnode, fork_time) {
                match policy {
                    ConflictPolicy::Fail => {
                        return Err(HamError::MergeConflict {
                            detail: format!("{id} modified in child but deleted in parent"),
                        })
                    }
                    ConflictPolicy::PreferChild | ConflictPolicy::PreferParent => {
                        // The node is gone in the parent; we cannot resurrect
                        // a deleted index, so parent's deletion stands either
                        // way, but record the conflict.
                        report.conflicts.push(format!(
                            "{id}: deletion (parent) stands; child changes dropped"
                        ));
                    }
                }
            }
            continue;
        }

        // Contents.
        let child_content_changed = content_changed_after(cnode, fork_time);
        let parent_content_changed = content_changed_after(pnode, fork_time);
        if child_content_changed {
            let apply = if parent_content_changed {
                match policy {
                    ConflictPolicy::Fail => {
                        return Err(HamError::MergeConflict {
                            detail: format!("{id} contents changed in both threads"),
                        })
                    }
                    ConflictPolicy::PreferChild => {
                        report.conflicts.push(format!("{id}: child contents win"));
                        true
                    }
                    ConflictPolicy::PreferParent => {
                        report.conflicts.push(format!("{id}: parent contents win"));
                        false
                    }
                }
            } else {
                true
            };
            if apply {
                let contents = cnode.contents_at(Time::CURRENT)?;
                let now = parent_tick(parent);
                parent
                    .node_mut(id)?
                    .modify(contents, now, "merged from context")?;
                report.nodes_modified.push(id);
            }
        }

        // Attributes.
        let changed = cnode.attrs.attrs_changed_after(fork_time);
        for child_attr in changed {
            let name = match child.attr_table.name(child_attr) {
                Some(n) => n.to_string(),
                None => continue,
            };
            let parent_attr = parent.attribute_index(&name);
            let parent_changed = parent
                .node(id)?
                .attrs
                .attrs_changed_after(fork_time)
                .iter()
                .any(|a| parent.attr_table.name(*a) == Some(name.as_str()));
            let apply = if parent_changed {
                match policy {
                    ConflictPolicy::Fail => {
                        return Err(HamError::MergeConflict {
                            detail: format!("{id} attribute '{name}' changed in both threads"),
                        })
                    }
                    ConflictPolicy::PreferChild => {
                        report.conflicts.push(format!("{id}.{name}: child wins"));
                        true
                    }
                    ConflictPolicy::PreferParent => {
                        report.conflicts.push(format!("{id}.{name}: parent wins"));
                        false
                    }
                }
            } else {
                true
            };
            if apply {
                match cnode.attrs.get(child_attr, Time::CURRENT) {
                    Some(v) => {
                        parent.set_node_attr(id, parent_attr, v.clone())?;
                    }
                    None => {
                        // Deleted in child since the fork.
                        if parent
                            .node(id)?
                            .attrs
                            .get(parent_attr, Time::CURRENT)
                            .is_some()
                        {
                            parent.delete_node_attr(id, parent_attr)?;
                        }
                    }
                }
                report.attrs_changed += 1;
            }
        }
    }

    // Pass 3: links.
    for clink in child.links() {
        if clink.created > fork_time {
            if !clink.exists_at(Time::CURRENT) {
                continue;
            }
            let (Some(&from_node), Some(&to_node)) =
                (node_map.get(&clink.from.node), node_map.get(&clink.to.node))
            else {
                continue; // an endpoint didn't survive the merge
            };
            if parent.live_node(from_node, Time::CURRENT).is_err()
                || parent.live_node(to_node, Time::CURRENT).is_err()
            {
                continue;
            }
            let from_pt = remap_linkpt(clink.from.linkpt_at(Time::CURRENT), from_node);
            let to_pt = remap_linkpt(clink.to.linkpt_at(Time::CURRENT), to_node);
            let (Some(from_pt), Some(to_pt)) = (from_pt, to_pt) else {
                continue;
            };
            let (new_id, _) = parent.add_link(from_pt, to_pt)?;
            report.links_added.push((clink.id, new_id));
            for (attr, value) in clink.attrs.all_at(Time::CURRENT) {
                if let Some(name) = child.attr_table.name(attr) {
                    let pattr = parent.attribute_index(name);
                    parent.set_link_attr(new_id, pattr, value)?;
                }
            }
        } else {
            // Pre-fork link: propagate deletion; attrs last-wins from child.
            let Ok(plink) = parent.link(clink.id) else {
                continue;
            };
            if !clink.exists_at(Time::CURRENT) && plink.exists_at(Time::CURRENT) {
                parent.delete_link(clink.id)?;
                report.links_deleted.push(clink.id);
                continue;
            }
            if clink.exists_at(Time::CURRENT) && plink.exists_at(Time::CURRENT) {
                for attr in clink.attrs.attrs_changed_after(fork_time) {
                    if let Some(name) = child.attr_table.name(attr) {
                        let name = name.to_string();
                        let pattr = parent.attribute_index(&name);
                        match clink.attrs.get(attr, Time::CURRENT) {
                            Some(v) => {
                                parent.set_link_attr(clink.id, pattr, v.clone())?;
                            }
                            None => {
                                if parent
                                    .link(clink.id)?
                                    .attrs
                                    .get(pattr, Time::CURRENT)
                                    .is_some()
                                {
                                    parent.delete_link_attr(clink.id, pattr)?;
                                }
                            }
                        }
                        report.attrs_changed += 1;
                    }
                }
            }
        }
    }

    parent.record_graph_version(parent.now(), "context merged");
    Ok(report)
}

fn parent_tick(parent: &mut HamGraph) -> Time {
    parent.tick()
}

fn node_changed_after(node: &crate::node::Node, fork_time: Time) -> bool {
    content_changed_after(node, fork_time) || !node.attrs.attrs_changed_after(fork_time).is_empty()
}

fn content_changed_after(node: &crate::node::Node, fork_time: Time) -> bool {
    let (major, _) = node.versions();
    major.last().is_some_and(|v| v.time > fork_time)
}

fn copy_current_attrs_node(
    parent: &mut HamGraph,
    child: &HamGraph,
    cnode: &crate::node::Node,
    new_id: NodeIndex,
) -> Result<()> {
    for (attr, value) in cnode.attrs.all_at(Time::CURRENT) {
        if let Some(name) = child.attr_table.name(attr) {
            let pattr = parent.attribute_index(name);
            parent.set_node_attr(new_id, pattr, value)?;
        }
    }
    Ok(())
}

fn remap_linkpt(pt: Option<LinkPt>, node: NodeIndex) -> Option<LinkPt> {
    pt.map(|mut p| {
        p.node = node;
        // Version pins refer to child-thread times, which have no meaning in
        // the parent's clock; remapped links track the current version.
        if !p.track_current {
            p.track_current = true;
            p.time = Time::CURRENT;
        }
        p
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProjectId;
    use crate::value::Value;

    fn base_graph() -> (HamGraph, NodeIndex, NodeIndex) {
        let mut g = HamGraph::new(ProjectId(1));
        let (a, _) = g.add_node(true);
        let (b, _) = g.add_node(true);
        g.node_mut(a)
            .unwrap()
            .modify(b"original a\n".to_vec(), Time(10), "init")
            .unwrap();
        g.set_clock(Time(10));
        (g, a, b)
    }

    #[test]
    fn merge_new_nodes_and_links() {
        let (mut parent, a, _b) = base_graph();
        let fork = parent.now();
        let mut child = parent.clone();

        let (c, _) = child.add_node(true);
        let tc = child.tick();
        child
            .node_mut(c)
            .unwrap()
            .modify(b"child node\n".to_vec(), tc, "x")
            .unwrap();
        let icon = child.attribute_index("icon");
        child.set_node_attr(c, icon, Value::str("newbie")).unwrap();
        child
            .add_link(LinkPt::current(a, 0), LinkPt::current(c, 0))
            .unwrap();

        let report = merge_context(&mut parent, &child, fork, ConflictPolicy::Fail).unwrap();
        assert_eq!(report.nodes_added.len(), 1);
        assert_eq!(report.links_added.len(), 1);
        let (_, new_id) = report.nodes_added[0];
        assert_eq!(
            parent
                .node(new_id)
                .unwrap()
                .contents_at(Time::CURRENT)
                .unwrap()[..],
            b"child node\n"[..]
        );
        let picon = parent.attr_table.lookup("icon").unwrap();
        assert_eq!(
            parent.node(new_id).unwrap().attrs.get(picon, Time::CURRENT),
            Some(&Value::str("newbie"))
        );
    }

    #[test]
    fn merge_content_changes_without_conflict() {
        let (mut parent, a, _) = base_graph();
        let fork = parent.now();
        let mut child = parent.clone();
        let t = child.tick();
        child
            .node_mut(a)
            .unwrap()
            .modify(b"child edit\n".to_vec(), t, "e")
            .unwrap();

        let report = merge_context(&mut parent, &child, fork, ConflictPolicy::Fail).unwrap();
        assert_eq!(report.nodes_modified, vec![a]);
        assert_eq!(
            parent.node(a).unwrap().contents_at(Time::CURRENT).unwrap()[..],
            b"child edit\n"[..]
        );
    }

    #[test]
    fn conflicting_content_fails_or_resolves() {
        let (parent0, a, _) = base_graph();
        let fork = parent0.now();

        let make_diverged = || {
            let mut parent = parent0.clone();
            let mut child = parent0.clone();
            let tp = parent.tick();
            parent
                .node_mut(a)
                .unwrap()
                .modify(b"parent edit\n".to_vec(), tp, "p")
                .unwrap();
            let tc = child.tick();
            child
                .node_mut(a)
                .unwrap()
                .modify(b"child edit\n".to_vec(), tc, "c")
                .unwrap();
            (parent, child)
        };

        let (mut parent, child) = make_diverged();
        assert!(matches!(
            merge_context(&mut parent, &child, fork, ConflictPolicy::Fail),
            Err(HamError::MergeConflict { .. })
        ));

        let (mut parent, child) = make_diverged();
        let report = merge_context(&mut parent, &child, fork, ConflictPolicy::PreferChild).unwrap();
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(
            parent.node(a).unwrap().contents_at(Time::CURRENT).unwrap()[..],
            b"child edit\n"[..]
        );

        let (mut parent, child) = make_diverged();
        merge_context(&mut parent, &child, fork, ConflictPolicy::PreferParent).unwrap();
        assert_eq!(
            parent.node(a).unwrap().contents_at(Time::CURRENT).unwrap()[..],
            b"parent edit\n"[..]
        );
    }

    #[test]
    fn attribute_merge_and_conflict() {
        let (parent0, a, _) = base_graph();
        let mut parent = parent0.clone();
        let status_p = parent.attribute_index("status");
        parent
            .set_node_attr(a, status_p, Value::str("base"))
            .unwrap();
        let fork = parent.now();
        let mut child = parent.clone();

        // Non-conflicting: child sets a fresh attribute.
        let owner = child.attribute_index("owner");
        child.set_node_attr(a, owner, Value::str("norm")).unwrap();
        // Conflicting: both set "status".
        let status_c = child.attribute_index("status");
        child
            .set_node_attr(a, status_c, Value::str("child"))
            .unwrap();
        parent
            .set_node_attr(a, status_p, Value::str("parent"))
            .unwrap();

        assert!(merge_context(&mut parent.clone(), &child, fork, ConflictPolicy::Fail).is_err());
        let report =
            merge_context(&mut parent, &child, fork, ConflictPolicy::PreferParent).unwrap();
        assert!(report.attrs_changed >= 1);
        let status = parent.attr_table.lookup("status").unwrap();
        let owner_p = parent.attr_table.lookup("owner").unwrap();
        assert_eq!(
            parent.node(a).unwrap().attrs.get(status, Time::CURRENT),
            Some(&Value::str("parent"))
        );
        assert_eq!(
            parent.node(a).unwrap().attrs.get(owner_p, Time::CURRENT),
            Some(&Value::str("norm"))
        );
    }

    #[test]
    fn deletion_propagates() {
        let (mut parent, _a, b) = base_graph();
        let fork = parent.now();
        let mut child = parent.clone();
        child.delete_node(b).unwrap();
        let report = merge_context(&mut parent, &child, fork, ConflictPolicy::Fail).unwrap();
        assert_eq!(report.nodes_deleted, vec![b]);
        assert!(!parent.node(b).unwrap().exists_at(Time::CURRENT));
    }

    #[test]
    fn node_created_and_deleted_in_child_never_reaches_parent() {
        let (mut parent, _, _) = base_graph();
        let fork = parent.now();
        let mut child = parent.clone();
        let (tmp, _) = child.add_node(true);
        child.delete_node(tmp).unwrap();
        let report = merge_context(&mut parent, &child, fork, ConflictPolicy::Fail).unwrap();
        assert!(report.nodes_added.is_empty());
    }

    #[test]
    fn pinned_links_from_child_become_tracking() {
        let (mut parent, a, _) = base_graph();
        let fork = parent.now();
        let mut child = parent.clone();
        let (c, _) = child.add_node(true);
        child
            .add_link(LinkPt::pinned(a, 0, Time(10)), LinkPt::current(c, 0))
            .unwrap();
        let report = merge_context(&mut parent, &child, fork, ConflictPolicy::Fail).unwrap();
        let (_, new_link) = report.links_added[0];
        assert!(parent.link(new_link).unwrap().from.track_current);
    }
}
