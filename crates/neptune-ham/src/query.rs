//! The HAM's two query mechanisms.
//!
//! Paper §3: *"Two basic query mechanisms are supported by the HAM:
//! traversal and query. The traversal mechanism, `linearizeGraph`, starts at
//! a designated node and follows a depth-first traversal of out-links
//! ordered by the links' offsets within the node. The associative query
//! mechanism, `getGraphQuery`, directly accesses a set of nodes and their
//! interconnecting links. Both of these mechanisms use predicates based on
//! attribute/value pairs to determine which nodes and links satisfy the
//! query."*

use std::collections::HashSet;

use crate::error::Result;
use crate::graph::HamGraph;
use crate::predicate::Predicate;
use crate::types::{AttributeIndex, LinkIndex, NodeIndex, Time};
use crate::value::Value;

/// A sub-graph returned by `linearizeGraph` or `getGraphQuery`: per the
/// appendix, `(NodeIndex × Value^m)* × (LinkIndex × Value^n)*` — each node
/// with its requested attribute values, each link likewise. Attributes the
/// object does not carry come back as `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubGraph {
    /// Nodes in result order (traversal preorder for `linearizeGraph`,
    /// index order for `getGraphQuery`), with requested attribute values.
    pub nodes: Vec<(NodeIndex, Vec<Option<Value>>)>,
    /// Links connecting result nodes, with requested attribute values.
    pub links: Vec<(LinkIndex, Vec<Option<Value>>)>,
}

impl SubGraph {
    /// Just the node indices, in result order.
    pub fn node_ids(&self) -> Vec<NodeIndex> {
        self.nodes.iter().map(|(id, _)| *id).collect()
    }

    /// Just the link indices, in result order.
    pub fn link_ids(&self) -> Vec<LinkIndex> {
        self.links.iter().map(|(id, _)| *id).collect()
    }
}

fn node_matches(graph: &HamGraph, id: NodeIndex, time: Time, pred: &Predicate) -> bool {
    match graph.node(id) {
        Ok(n) if n.exists_at(time) => {
            let lookup = graph.node_attr_lookup(&n.attrs, time);
            pred.matches(&lookup)
        }
        _ => false,
    }
}

fn link_matches(graph: &HamGraph, id: LinkIndex, time: Time, pred: &Predicate) -> bool {
    match graph.link(id) {
        Ok(l) if l.exists_at(time) => {
            let lookup = graph.node_attr_lookup(&l.attrs, time);
            pred.matches(&lookup)
        }
        _ => false,
    }
}

fn node_values(
    graph: &HamGraph,
    id: NodeIndex,
    time: Time,
    attrs: &[AttributeIndex],
) -> Vec<Option<Value>> {
    let node = graph.node(id).expect("node existence checked by caller");
    attrs
        .iter()
        .map(|a| node.attrs.get(*a, time).cloned())
        .collect()
}

fn link_values(
    graph: &HamGraph,
    id: LinkIndex,
    time: Time,
    attrs: &[AttributeIndex],
) -> Vec<Option<Value>> {
    let link = graph.link(id).expect("link existence checked by caller");
    attrs
        .iter()
        .map(|a| link.attrs.get(*a, time).cloned())
        .collect()
}

/// `linearizeGraph`: depth-first traversal from `start` at `time`.
///
/// Out-links of each visited node are followed in order of their offset
/// within the node's contents (ties broken by link index, for determinism);
/// only links satisfying `link_pred` are traversed, only nodes satisfying
/// `node_pred` are entered. Cycles are handled by visiting each node once,
/// in preorder.
#[allow(clippy::too_many_arguments)]
pub fn linearize_graph(
    graph: &HamGraph,
    start: NodeIndex,
    time: Time,
    node_pred: &Predicate,
    link_pred: &Predicate,
    node_attrs: &[AttributeIndex],
    link_attrs: &[AttributeIndex],
) -> Result<SubGraph> {
    let mut result = SubGraph::default();
    if !node_matches(graph, start, time, node_pred) {
        // The start node itself is filtered out: empty result, matching the
        // appendix's "each of the nodes … satisfies Predicate₁".
        graph.live_node(start, time)?; // but a missing node is an error
        return Ok(result);
    }

    let mut visited: HashSet<NodeIndex> = HashSet::new();
    let mut stack: Vec<NodeIndex> = vec![start];
    while let Some(current) = stack.pop() {
        if !visited.insert(current) {
            continue;
        }
        result
            .nodes
            .push((current, node_values(graph, current, time, node_attrs)));

        // Out-links of `current` alive at `time`, passing the link
        // predicate, ordered by attachment offset within the node.
        let node = graph.node(current)?;
        let mut outgoing: Vec<(u64, LinkIndex, NodeIndex)> = Vec::new();
        for &link_id in &node.incident_links {
            let link = graph.link(link_id)?;
            if link.from.node != current || !link.exists_at(time) {
                continue;
            }
            if !link_matches(graph, link_id, time, link_pred) {
                continue;
            }
            let Some(offset) = link.from.position_at(time) else {
                continue;
            };
            outgoing.push((offset, link_id, link.to.node));
        }
        outgoing.sort_by_key(|(offset, id, _)| (*offset, *id));

        // Push in reverse so the lowest-offset link is traversed first.
        for (_, link_id, target) in outgoing.iter().rev() {
            if !node_matches(graph, *target, time, node_pred) {
                continue;
            }
            result
                .links
                .push((*link_id, link_values(graph, *link_id, time, link_attrs)));
            if !visited.contains(target) {
                stack.push(*target);
            }
        }
    }
    // Links were gathered in reverse per node; restore offset order.
    // (Re-sorting globally by result-node order then offset is what a
    // document extraction expects.)
    result.links.reverse();
    let order: std::collections::HashMap<NodeIndex, usize> = result
        .nodes
        .iter()
        .enumerate()
        .map(|(i, (id, _))| (*id, i))
        .collect();
    result.links.sort_by_key(|(id, _)| {
        let link = graph.link(*id).expect("collected above");
        let from_order = order.get(&link.from.node).copied().unwrap_or(usize::MAX);
        let offset = link.from.position_at(time).unwrap_or(u64::MAX);
        (from_order, offset, *id)
    });
    result.links.dedup_by_key(|(id, _)| *id);
    Ok(result)
}

/// `getGraphQuery`: associative access. Returns all nodes at `time`
/// satisfying `node_pred`, plus every link at `time` that satisfies
/// `link_pred` **and** connects two nodes in the result.
///
/// When `node_pred` contains an `attr = literal` conjunct and the query is
/// at the current time, the attribute value index narrows the candidate set
/// instead of scanning every node (ablated by experiment E3 via
/// [`get_graph_query_scan`]).
pub fn get_graph_query(
    graph: &HamGraph,
    time: Time,
    node_pred: &Predicate,
    link_pred: &Predicate,
    node_attrs: &[AttributeIndex],
    link_attrs: &[AttributeIndex],
) -> Result<SubGraph> {
    let candidates: Vec<NodeIndex> = match node_pred.index_hint() {
        Some((attr_name, value)) if time.is_current() => {
            match graph.attr_table.lookup(attr_name) {
                Some(attr) => graph
                    .value_index()
                    .lookup(attr, value)
                    .into_iter()
                    .filter(|(kind, _)| *kind == crate::attributes::ObjKind::Node)
                    .map(|(_, id)| NodeIndex(id))
                    .collect(),
                // Unknown attribute: nothing can carry it.
                None => Vec::new(),
            }
        }
        // No usable index hint: candidates are every node the temporal
        // index says was created by `time` (all of them for CURRENT) —
        // historical queries over deep graphs skip objects that postdate
        // the asked time instead of probing every archive.
        _ => graph.nodes_created_by(time),
    };
    query_from_candidates(
        graph, candidates, time, node_pred, link_pred, node_attrs, link_attrs,
    )
}

/// `getGraphQuery` forced to scan every node — the E3 ablation baseline.
pub fn get_graph_query_scan(
    graph: &HamGraph,
    time: Time,
    node_pred: &Predicate,
    link_pred: &Predicate,
    node_attrs: &[AttributeIndex],
    link_attrs: &[AttributeIndex],
) -> Result<SubGraph> {
    let candidates: Vec<NodeIndex> = graph.nodes().map(|n| n.id).collect();
    query_from_candidates(
        graph, candidates, time, node_pred, link_pred, node_attrs, link_attrs,
    )
}

fn query_from_candidates(
    graph: &HamGraph,
    mut candidates: Vec<NodeIndex>,
    time: Time,
    node_pred: &Predicate,
    link_pred: &Predicate,
    node_attrs: &[AttributeIndex],
    link_attrs: &[AttributeIndex],
) -> Result<SubGraph> {
    candidates.sort_unstable();
    candidates.dedup();
    let mut result = SubGraph::default();
    let mut in_result: HashSet<NodeIndex> = HashSet::new();
    for id in candidates {
        if node_matches(graph, id, time, node_pred) {
            in_result.insert(id);
            result
                .nodes
                .push((id, node_values(graph, id, time, node_attrs)));
        }
    }
    // Links, pruned by creation time like the nodes above; result order is
    // by link index, so sort (the temporal index yields creation order and
    // may repeat an id reused across a rollback).
    let mut link_ids = graph.links_created_by(time);
    link_ids.sort_unstable();
    link_ids.dedup();
    for id in link_ids {
        let Ok(link) = graph.link(id) else {
            continue;
        };
        if !link.exists_at(time) {
            continue;
        }
        if !in_result.contains(&link.from.node) || !in_result.contains(&link.to.node) {
            continue;
        }
        if link_matches(graph, link.id, time, link_pred) {
            result
                .links
                .push((link.id, link_values(graph, link.id, time, link_attrs)));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LinkPt, ProjectId};

    /// Build the paper-style document tree:
    ///
    /// ```text
    ///        root
    ///       /    \      (offsets: 10, 20)
    ///    sec1    sec2
    ///     |        \    (offset 5)  (offset 7)
    ///    sub1      sub2
    /// ```
    fn document_graph() -> (HamGraph, Vec<NodeIndex>) {
        let mut g = HamGraph::new(ProjectId(1));
        let doc = g.attribute_index("document");
        let icon = g.attribute_index("icon");
        let rel = g.attribute_index("relation");
        let mut ids = Vec::new();
        for name in ["root", "sec1", "sec2", "sub1", "sub2"] {
            let (id, _) = g.add_node(true);
            g.set_node_attr(id, doc, Value::str("paper")).unwrap();
            g.set_node_attr(id, icon, Value::str(name)).unwrap();
            ids.push(id);
        }
        let edges = [(0usize, 1usize, 10u64), (0, 2, 20), (1, 3, 5), (2, 4, 7)];
        for (from, to, offset) in edges {
            let (l, _) = g
                .add_link(
                    LinkPt::current(ids[from], offset),
                    LinkPt::current(ids[to], 0),
                )
                .unwrap();
            g.set_link_attr(l, rel, Value::str("isPartOf")).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn linearize_visits_depth_first_in_offset_order() {
        let (g, ids) = document_graph();
        let result = linearize_graph(
            &g,
            ids[0],
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[],
            &[],
        )
        .unwrap();
        assert_eq!(
            result.node_ids(),
            vec![ids[0], ids[1], ids[3], ids[2], ids[4]]
        );
        assert_eq!(result.links.len(), 4);
    }

    #[test]
    fn linearize_respects_link_predicate() {
        let (mut g, ids) = document_graph();
        // Add a cross-reference link that should not be traversed.
        let rel = g.attribute_index("relation");
        let (xref, _) = g
            .add_link(LinkPt::current(ids[0], 1), LinkPt::current(ids[4], 0))
            .unwrap();
        g.set_link_attr(xref, rel, Value::str("references"))
            .unwrap();

        let only_structure = Predicate::parse("relation = isPartOf").unwrap();
        let result = linearize_graph(
            &g,
            ids[0],
            Time::CURRENT,
            &Predicate::True,
            &only_structure,
            &[],
            &[],
        )
        .unwrap();
        assert_eq!(
            result.node_ids(),
            vec![ids[0], ids[1], ids[3], ids[2], ids[4]]
        );
        assert!(!result.link_ids().contains(&xref));
    }

    #[test]
    fn linearize_filters_nodes() {
        let (mut g, ids) = document_graph();
        let skip = g.attribute_index("skip");
        g.set_node_attr(ids[2], skip, Value::Bool(true)).unwrap();
        let pred = Predicate::parse("not exists(skip)").unwrap();
        let result =
            linearize_graph(&g, ids[0], Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
        // sec2 and everything below it disappears.
        assert_eq!(result.node_ids(), vec![ids[0], ids[1], ids[3]]);
    }

    #[test]
    fn linearize_handles_cycles() {
        let (mut g, ids) = document_graph();
        // sub1 -> root creates a cycle.
        g.add_link(LinkPt::current(ids[3], 0), LinkPt::current(ids[0], 0))
            .unwrap();
        let result = linearize_graph(
            &g,
            ids[0],
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[],
            &[],
        )
        .unwrap();
        assert_eq!(result.nodes.len(), 5, "each node visited once");
    }

    #[test]
    fn linearize_returns_requested_attributes() {
        let (g, ids) = document_graph();
        let icon = g.attr_table.lookup("icon").unwrap();
        let missing = AttributeIndex(99);
        let result = linearize_graph(
            &g,
            ids[0],
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[icon, missing],
            &[],
        )
        .unwrap();
        assert_eq!(result.nodes[0].1, vec![Some(Value::str("root")), None]);
        assert_eq!(result.nodes[1].1[0], Some(Value::str("sec1")));
    }

    #[test]
    fn linearize_missing_start_is_error() {
        let (g, _) = document_graph();
        assert!(linearize_graph(
            &g,
            NodeIndex(99),
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[],
            &[]
        )
        .is_err());
    }

    #[test]
    fn query_returns_matching_nodes_and_connecting_links() {
        let (mut g, ids) = document_graph();
        // Tag a subset.
        let kind = g.attribute_index("kind");
        g.set_node_attr(ids[0], kind, Value::str("sec")).unwrap();
        g.set_node_attr(ids[1], kind, Value::str("sec")).unwrap();
        g.set_node_attr(ids[2], kind, Value::str("sec")).unwrap();
        let pred = Predicate::parse("kind = sec").unwrap();
        let result = get_graph_query(&g, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
        assert_eq!(result.node_ids(), vec![ids[0], ids[1], ids[2]]);
        // Only root->sec1 and root->sec2 connect two result nodes.
        assert_eq!(result.links.len(), 2);
    }

    #[test]
    fn query_index_and_scan_agree() {
        let (mut g, ids) = document_graph();
        let kind = g.attribute_index("kind");
        for &id in &ids[..3] {
            g.set_node_attr(id, kind, Value::str("sec")).unwrap();
        }
        let pred = Predicate::parse("kind = sec and exists(icon)").unwrap();
        let fast = get_graph_query(&g, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
        let slow =
            get_graph_query_scan(&g, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.nodes.len(), 3);
    }

    #[test]
    fn query_at_historical_time() {
        let (mut g, ids) = document_graph();
        let t_before = g.now();
        let status = g.attribute_index("status");
        g.set_node_attr(ids[0], status, Value::str("final"))
            .unwrap();
        let pred = Predicate::parse("status = final").unwrap();
        let now = get_graph_query(&g, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
        assert_eq!(now.nodes.len(), 1);
        let before = get_graph_query(&g, t_before, &pred, &Predicate::True, &[], &[]).unwrap();
        assert!(before.nodes.is_empty());
    }

    #[test]
    fn historical_query_prunes_late_objects_but_agrees_with_scan() {
        let (mut g, ids) = document_graph();
        let t_mid = g.now();
        // Objects created after t_mid: the temporal index must exclude
        // them from historical candidates without changing any result.
        for _ in 0..10 {
            let (n, _) = g.add_node(true);
            g.add_link(LinkPt::current(ids[0], 1), LinkPt::current(n, 0))
                .unwrap();
        }
        let fast =
            get_graph_query(&g, t_mid, &Predicate::True, &Predicate::True, &[], &[]).unwrap();
        let slow =
            get_graph_query_scan(&g, t_mid, &Predicate::True, &Predicate::True, &[], &[]).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.nodes.len(), 5);
        assert_eq!(fast.links.len(), 4);
        assert_eq!(g.nodes_created_by(t_mid).len(), 5);
        assert_eq!(g.nodes_created_by(Time::CURRENT).len(), 15);
    }

    #[test]
    fn query_excludes_deleted_objects() {
        let (mut g, ids) = document_graph();
        let t_before = g.now();
        g.delete_node(ids[1]).unwrap();
        let all = get_graph_query(
            &g,
            Time::CURRENT,
            &Predicate::True,
            &Predicate::True,
            &[],
            &[],
        )
        .unwrap();
        assert_eq!(all.nodes.len(), 4);
        // Links into the deleted node are gone too.
        assert_eq!(all.links.len(), 2);
        // But the old time still sees everything.
        let before =
            get_graph_query(&g, t_before, &Predicate::True, &Predicate::True, &[], &[]).unwrap();
        assert_eq!(before.nodes.len(), 5);
        assert_eq!(before.links.len(), 4);
    }

    #[test]
    fn query_unknown_attribute_in_hint_yields_empty() {
        let (g, _) = document_graph();
        let pred = Predicate::parse("nonexistent = whatever").unwrap();
        let result = get_graph_query(&g, Time::CURRENT, &pred, &Predicate::True, &[], &[]).unwrap();
        assert!(result.nodes.is_empty());
    }
}
