//! # neptune-ham
//!
//! The **Hypertext Abstract Machine** (HAM) from *"Neptune: a Hypertext
//! System for CAD Applications"* (Delisle & Schwartz, SIGMOD 1986) — a
//! transaction-based, fully versioned hypergraph store.
//!
//! The paper's Appendix specifies the HAM as a set of operations over
//! nodes, links, attributes, and demons; [`ham::Ham`] implements every one
//! of them under its paper name (`createGraph` … `getNodeDemons`), plus the
//! §5 extensions the authors describe as in progress: **multiple version
//! threads** ([`context`]) and **parameterized demons** ([`demons`]).
//!
//! Layering (paper §3): applications sit on top of this crate
//! (`neptune-document`, `neptune-case`), and a network server wraps it
//! (`neptune-server`). Storage mechanics (backward deltas, WAL, snapshots)
//! come from `neptune-storage`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod context;
pub mod demons;
pub mod epoch;
pub mod error;
pub mod graph;
pub mod ham;
pub mod history;
pub mod invariants;
pub mod link;
pub mod node;
pub mod pmap;
pub mod predicate;
pub mod query;
pub mod shard;
pub mod txn;
pub mod types;
pub mod value;
pub mod view;

pub use demons::{DemonAction, DemonFireInfo, DemonRegistry, DemonSpec, Event};
pub use epoch::Published;
pub use error::{HamError, Result};
pub use graph::HamGraph;
pub use ham::Ham;
pub use predicate::Predicate;
pub use shard::{MultiView, ShardedHam};
pub use types::{
    AttributeIndex, ContextId, LinkIndex, LinkPt, Machine, NodeIndex, Position, ProjectId,
    Protections, Time, Version, MAIN_CONTEXT,
};
pub use value::Value;
pub use view::CommittedView;
