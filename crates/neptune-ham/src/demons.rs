//! Demons: application code invoked on HAM events.
//!
//! Paper §3: *"a demon mechanism is provided that invokes application or
//! user code when a specific HAM event occurs, such as an update to a
//! particular node."* §5 criticizes the original design as "very weak" and
//! asks for **parameterized demons** carrying "the demon invoking event, an
//! invocation time-stamp, or an identification of the invoking node or
//! graph" — this reproduction implements that extension: every firing
//! receives a [`DemonFireInfo`].
//!
//! A demon *value* must be durable (it is versioned and persisted with the
//! graph), so it is a [`DemonSpec`]: a name plus a [`DemonAction`]. Built-in
//! actions cover the paper's motivating examples (logging/mail, setting a
//! "dirty" attribute for checking code, touch-cascades for incremental
//! compilation); `Call` actions dispatch to Rust callbacks registered at
//! runtime in a [`DemonRegistry`] — the analogue of the paper's plan to
//! "allow parameterized demons to be written in Smalltalk, Modula-2, or C".

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::error::{Result as StorageResult, StorageError};

use crate::history::Versioned;
use crate::types::{LinkIndex, NodeIndex, Time};
use crate::value::Value;

/// A HAM event that can trigger demons (the operations the appendix marks
/// "This operation can trigger a demon").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// `openGraph` completed.
    GraphOpened,
    /// `addNode` created a node.
    NodeAdded,
    /// `deleteNode` removed a node.
    NodeDeleted,
    /// `openNode` read a node.
    NodeOpened,
    /// `modifyNode` checked in new contents.
    NodeModified,
    /// `addLink` or `copyLink` created a link.
    LinkAdded,
    /// `deleteLink` removed a link.
    LinkDeleted,
    /// An attribute value was set or deleted.
    AttributeChanged,
}

impl Event {
    /// All events, for iteration in tests and tooling.
    pub const ALL: [Event; 8] = [
        Event::GraphOpened,
        Event::NodeAdded,
        Event::NodeDeleted,
        Event::NodeOpened,
        Event::NodeModified,
        Event::LinkAdded,
        Event::LinkDeleted,
        Event::AttributeChanged,
    ];

    fn to_tag(self) -> u8 {
        match self {
            Event::GraphOpened => 0,
            Event::NodeAdded => 1,
            Event::NodeDeleted => 2,
            Event::NodeOpened => 3,
            Event::NodeModified => 4,
            Event::LinkAdded => 5,
            Event::LinkDeleted => 6,
            Event::AttributeChanged => 7,
        }
    }

    fn from_tag(tag: u8) -> StorageResult<Event> {
        Event::ALL
            .get(tag as usize)
            .copied()
            .ok_or(StorageError::InvalidTag {
                context: "Event",
                tag: tag as u64,
            })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Event::GraphOpened => "graphOpened",
            Event::NodeAdded => "nodeAdded",
            Event::NodeDeleted => "nodeDeleted",
            Event::NodeOpened => "nodeOpened",
            Event::NodeModified => "nodeModified",
            Event::LinkAdded => "linkAdded",
            Event::LinkDeleted => "linkDeleted",
            Event::AttributeChanged => "attributeChanged",
        };
        write!(f, "{name}")
    }
}

/// The parameters handed to a demon when it fires — the §5 extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemonFireInfo {
    /// The event that fired.
    pub event: Event,
    /// Invocation time-stamp (the graph's logical clock).
    pub time: Time,
    /// The invoking node, if the event concerns one.
    pub node: Option<NodeIndex>,
    /// The invoking link, if the event concerns one.
    pub link: Option<LinkIndex>,
}

/// The durable action a demon performs.
#[derive(Debug, Clone, PartialEq)]
pub enum DemonAction {
    /// Record a message in the fire journal (the paper's "sending mail to
    /// the person responsible for a node" reduces to a notification record).
    Notify(String),
    /// Attach `attr = value` to the invoking node — the "performing special
    /// checking code" pattern (e.g. marking a node `dirty = true` for a
    /// validator or incremental compiler to pick up).
    MarkNode {
        /// Attribute name to set.
        attr: String,
        /// Value to set it to.
        value: Value,
    },
    /// Invoke a named callback from the [`DemonRegistry`] — user code in
    /// the host language.
    Call(String),
}

/// A demon value: what the appendix's `Demon` domain holds.
#[derive(Debug, Clone, PartialEq)]
pub struct DemonSpec {
    /// Identifying name, shown in journals and used for debugging.
    pub name: String,
    /// What the demon does when fired.
    pub action: DemonAction,
}

impl DemonSpec {
    /// A notification demon.
    pub fn notify(name: impl Into<String>, message: impl Into<String>) -> DemonSpec {
        DemonSpec {
            name: name.into(),
            action: DemonAction::Notify(message.into()),
        }
    }

    /// A node-marking demon.
    pub fn mark_node(
        name: impl Into<String>,
        attr: impl Into<String>,
        value: impl Into<Value>,
    ) -> DemonSpec {
        DemonSpec {
            name: name.into(),
            action: DemonAction::MarkNode {
                attr: attr.into(),
                value: value.into(),
            },
        }
    }

    /// A callback demon dispatching to registered user code.
    pub fn call(name: impl Into<String>, callback: impl Into<String>) -> DemonSpec {
        DemonSpec {
            name: name.into(),
            action: DemonAction::Call(callback.into()),
        }
    }
}

impl Encode for DemonSpec {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        match &self.action {
            DemonAction::Notify(msg) => {
                w.put_u8(0);
                w.put_str(msg);
            }
            DemonAction::MarkNode { attr, value } => {
                w.put_u8(1);
                w.put_str(attr);
                value.encode(w);
            }
            DemonAction::Call(cb) => {
                w.put_u8(2);
                w.put_str(cb);
            }
        }
    }
}

impl Decode for DemonSpec {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let name = r.get_str()?.to_owned();
        let action = match r.get_u8()? {
            0 => DemonAction::Notify(r.get_str()?.to_owned()),
            1 => DemonAction::MarkNode {
                attr: r.get_str()?.to_owned(),
                value: Value::decode(r)?,
            },
            2 => DemonAction::Call(r.get_str()?.to_owned()),
            tag => {
                return Err(StorageError::InvalidTag {
                    context: "DemonAction",
                    tag: tag as u64,
                })
            }
        };
        Ok(DemonSpec { name, action })
    }
}

/// A versioned event → demon table, used at graph level and per node.
///
/// `setGraphDemonValue`/`setNodeDemon` "create a new version of the demon";
/// a null demon disables the slot, which we record as a deletion entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DemonTable {
    slots: BTreeMap<Event, Versioned<DemonSpec>>,
}

impl DemonTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or, with `None`, disable) the demon for `event` as of `now`.
    pub fn set(&mut self, event: Event, demon: Option<DemonSpec>, now: Time) {
        let slot = self.slots.entry(event).or_default();
        match demon {
            Some(d) => slot.set(now, d),
            None => slot.delete(now),
        }
    }

    /// The demon registered for `event` at `time`.
    pub fn get(&self, event: Event, time: Time) -> Option<&DemonSpec> {
        self.slots.get(&event).and_then(|v| v.get_at(time))
    }

    /// All `(event, demon)` pairs active at `time` — `getGraphDemons` /
    /// `getNodeDemons`.
    pub fn all_at(&self, time: Time) -> Vec<(Event, DemonSpec)> {
        self.slots
            .iter()
            .filter_map(|(e, v)| v.get_at(time).map(|d| (*e, d.clone())))
            .collect()
    }

    /// Every event slot's full versioned history, for integrity checking.
    pub fn histories(&self) -> impl Iterator<Item = (Event, &Versioned<DemonSpec>)> {
        self.slots.iter().map(|(e, v)| (*e, v))
    }

    /// Roll back changes after `time`.
    pub fn truncate_after(&mut self, time: Time) {
        self.slots.retain(|_, v| {
            v.truncate_after(time);
            !v.is_empty()
        });
    }

    /// Whether no demon was ever set.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl Encode for DemonTable {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.slots.len() as u64);
        for (event, versions) in &self.slots {
            w.put_u8(event.to_tag());
            versions.encode(w);
        }
    }
}

impl Decode for DemonTable {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let count = r.get_u64()? as usize;
        let mut slots = BTreeMap::new();
        for _ in 0..count {
            let event = Event::from_tag(r.get_u8()?)?;
            let versions = Versioned::<DemonSpec>::decode(r)?;
            slots.insert(event, versions);
        }
        Ok(DemonTable { slots })
    }
}

/// A runtime callback invoked by `DemonAction::Call`.
pub type DemonCallback = Arc<dyn Fn(&DemonFireInfo) + Send + Sync>;

/// Runtime registry of named demon callbacks.
///
/// Callbacks are process-local (they cannot be persisted); a graph whose
/// demons `Call` an unregistered name records the firing in the journal and
/// carries on, so opening someone else's graph never fails on their demons.
#[derive(Default, Clone)]
pub struct DemonRegistry {
    callbacks: HashMap<String, DemonCallback>,
}

impl DemonRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `callback` under `name`, replacing any previous registration.
    pub fn register<F>(&mut self, name: impl Into<String>, callback: F)
    where
        F: Fn(&DemonFireInfo) + Send + Sync + 'static,
    {
        self.callbacks.insert(name.into(), Arc::new(callback));
    }

    /// Look up a callback.
    pub fn get(&self, name: &str) -> Option<&DemonCallback> {
        self.callbacks.get(name)
    }

    /// Number of registered callbacks.
    pub fn len(&self) -> usize {
        self.callbacks.len()
    }

    /// Whether no callbacks are registered.
    pub fn is_empty(&self) -> bool {
        self.callbacks.is_empty()
    }
}

impl fmt::Debug for DemonRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.callbacks.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("DemonRegistry")
            .field("callbacks", &names)
            .finish()
    }
}

/// One recorded demon firing: the journal is how tests, tools, and the
/// demon browser observe demon activity.
#[derive(Debug, Clone, PartialEq)]
pub struct FireRecord {
    /// The demon that fired.
    pub demon: String,
    /// The parameters it received.
    pub info: DemonFireInfo,
    /// For `Notify` actions, the message; for `Call` actions that found no
    /// callback, a diagnostic.
    pub message: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn event_tags_roundtrip() {
        for e in Event::ALL {
            assert_eq!(Event::from_tag(e.to_tag()).unwrap(), e);
        }
        assert!(Event::from_tag(99).is_err());
    }

    #[test]
    fn demon_spec_codec_roundtrip() {
        for spec in [
            DemonSpec::notify("mailer", "node changed"),
            DemonSpec::mark_node("dirtier", "dirty", true),
            DemonSpec::call("recompile", "compiler.incremental"),
        ] {
            assert_eq!(DemonSpec::from_bytes(&spec.to_bytes()).unwrap(), spec);
        }
    }

    #[test]
    fn table_versions_demons() {
        let mut t = DemonTable::new();
        t.set(
            Event::NodeModified,
            Some(DemonSpec::notify("v1", "a")),
            Time(1),
        );
        t.set(
            Event::NodeModified,
            Some(DemonSpec::notify("v2", "b")),
            Time(5),
        );
        t.set(Event::NodeModified, None, Time(9));
        assert_eq!(t.get(Event::NodeModified, Time(1)).unwrap().name, "v1");
        assert_eq!(t.get(Event::NodeModified, Time(7)).unwrap().name, "v2");
        assert!(t.get(Event::NodeModified, Time(9)).is_none());
        assert!(t.get(Event::NodeModified, Time::CURRENT).is_none());
        assert!(t.get(Event::NodeAdded, Time::CURRENT).is_none());
    }

    #[test]
    fn table_all_at_and_truncate() {
        let mut t = DemonTable::new();
        t.set(Event::NodeAdded, Some(DemonSpec::notify("a", "x")), Time(1));
        t.set(Event::LinkAdded, Some(DemonSpec::notify("b", "y")), Time(6));
        assert_eq!(t.all_at(Time(1)).len(), 1);
        assert_eq!(t.all_at(Time::CURRENT).len(), 2);
        t.truncate_after(Time(3));
        assert_eq!(t.all_at(Time::CURRENT).len(), 1);
    }

    #[test]
    fn table_codec_roundtrip() {
        let mut t = DemonTable::new();
        t.set(Event::NodeOpened, Some(DemonSpec::call("c", "cb")), Time(2));
        t.set(Event::NodeOpened, None, Time(4));
        let decoded = DemonTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn registry_dispatches() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let mut reg = DemonRegistry::new();
        reg.register("count", |_info| {
            FIRED.fetch_add(1, Ordering::SeqCst);
        });
        let info = DemonFireInfo {
            event: Event::NodeModified,
            time: Time(3),
            node: Some(NodeIndex(1)),
            link: None,
        };
        (reg.get("count").unwrap())(&info);
        assert_eq!(FIRED.load(Ordering::SeqCst), 1);
        assert!(reg.get("missing").is_none());
        assert!(format!("{reg:?}").contains("count"));
    }
}
