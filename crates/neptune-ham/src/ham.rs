//! The Hypertext Abstract Machine facade.
//!
//! [`Ham`] implements every operation of the paper's Appendix under its
//! paper name (in Rust snake_case): graph operations (§A.1), node
//! operations (§A.2), link operations (§A.3), attribute operations (§A.4),
//! and demon operations (§A.5) — plus the §5 extensions (transactions are
//! §2.2 core behaviour; multiple version threads and parameterized demons
//! are the extensions the paper describes as in progress).
//!
//! Durability model: all state lives in memory (the HamGraph per context);
//! every state-changing operation is journaled to the write-ahead log at
//! commit, and `checkpoint` folds the log into an atomic snapshot. Opening
//! a graph loads the snapshot and replays committed transactions, giving
//! the paper's "complete recovery" from both aborts and crashes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{self, AtomicU64};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use neptune_storage::blobstore::BlobStore;
use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::diff::Difference;
use neptune_storage::snapshot::{read_snapshot_with, write_snapshot_with};
use neptune_storage::vcache::{CacheStats, MaterializationCache};
use neptune_storage::vfs::{StdVfs, Vfs};
use neptune_storage::wal::{RecordKind, Wal};

use crate::context::{merge_context, ConflictPolicy, MergeReport};
use crate::demons::{DemonAction, DemonFireInfo, DemonRegistry, DemonSpec, Event, FireRecord};
use crate::error::{HamError, Result};
use crate::graph::HamGraph;
use crate::predicate::Predicate;
use crate::query::SubGraph;
use crate::txn::{ActiveTxn, RedoOp};
use crate::types::{
    decode_protections, AttributeIndex, ContextId, LinkIndex, LinkPt, Machine, NodeIndex,
    ProjectId, Protections, Time, Version, MAIN_CONTEXT,
};
use crate::value::Value;
use crate::view::{CommittedView, ReadCore};
use crate::Published;

/// One version thread and where it forked from.
#[derive(Debug, Clone)]
pub(crate) struct GraphThread {
    pub(crate) graph: HamGraph,
    /// `(parent context, parent clock at fork)`; `None` for the main thread.
    pub(crate) forked_from: Option<(ContextId, Time)>,
}

/// Result of `openNode`: `Contents × LinkPt* × Value^m × Time₂`.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenedNode {
    /// The node's contents at the requested time. Shared and immutable:
    /// the same allocation may back the version cache and other concurrent
    /// readers, so callers needing a private mutable copy must `to_vec()`.
    pub contents: Arc<[u8]>,
    /// Link attachments visible on that version, in canonical order
    /// (ascending link index, "from" end before "to" end). `modifyNode`
    /// expects its `LinkPt*` operand in this same order.
    pub link_pts: Vec<LinkPt>,
    /// Values of the requested attributes (None = not set at that time).
    pub values: Vec<Option<Value>>,
    /// Version time of the **current** version of the node.
    pub current_time: Time,
}

/// Name of the metadata file inside a graph directory.
pub const META_FILE: &str = "graph.meta";
/// Name of the checkpoint snapshot file inside a graph directory.
pub const SNAPSHOT_FILE: &str = "graph.snap";
/// Name of the write-ahead log file inside a graph directory.
pub const WAL_FILE: &str = "wal.log";
/// Name of the node-contents blob directory inside a graph directory.
pub const NODES_DIR: &str = "nodes";

/// The Hypertext Abstract Machine: a single opened Neptune database.
///
/// A `Ham` is single-writer; `neptune-server` serializes concurrent clients
/// in front of it (the paper's central-server architecture, §2.2).
pub struct Ham {
    directory: PathBuf,
    /// Filesystem the durable write path runs on: the real one in
    /// production, a fault-injecting shadow in crash-consistency tests.
    vfs: Arc<dyn Vfs>,
    project_id: ProjectId,
    protections: Protections,
    wal: Wal,
    blobs: BlobStore,
    threads: HashMap<ContextId, GraphThread>,
    next_context: u64,
    txn: Option<ActiveTxn>,
    next_txn: u64,
    registry: DemonRegistry,
    journal: Vec<FireRecord>,
    in_demon: bool,
    replaying: bool,
    /// Materialized historical node versions, keyed by
    /// `(context, node, resolved time)`. Behind a mutex so read-only
    /// operations (`&self`) can consult and warm it; inside an `Arc` so
    /// every published [`CommittedView`] shares the same cache.
    vcache: Arc<Mutex<MaterializationCache>>,
    /// Publication point for committed snapshots: refreshed at every
    /// commit and rollback, loaded lock-free by snapshot readers.
    published: Arc<Published<CommittedView>>,
    /// Epoch stamped into the next published view (monotonic from 1).
    view_epoch: u64,
    /// Source of global commit sequence numbers. Private to this machine
    /// for an unsharded store; shared by every shard of a
    /// [`crate::shard::ShardedHam`], so sequences order commits across
    /// shards.
    commit_seq: Arc<AtomicU64>,
    /// Sequence stamped into the most recent durable commit (0 before the
    /// first). Published into every [`CommittedView`].
    last_seq: u64,
    /// A sequence pre-assigned by a cross-shard coordinator for the next
    /// commit; consumed by `log_txn` instead of drawing a fresh one, so
    /// every participant of a cross-shard transaction stamps the same
    /// sequence.
    forced_seq: Option<u64>,
    /// This machine's shard identity `(index, count)`; `(0, 1)` for an
    /// unsharded store. Consulted by the fork-topology invariant rules: a
    /// context adopted from another shard legitimately has no local parent.
    shard: (u32, u32),
}

impl std::fmt::Debug for Ham {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ham")
            .field("directory", &self.directory)
            .field("project_id", &self.project_id)
            .field("contexts", &self.threads.len())
            .field("in_txn", &self.txn.is_some())
            .finish()
    }
}

impl Ham {
    // =====================================================================
    // A.1 Graph operations
    // =====================================================================

    /// `createGraph: Directory × Protections → ProjectId × Time`
    ///
    /// Creates a new empty hyperdata graph in `directory`, using
    /// `protections` for the files representing it. Returns the machine
    /// with the graph open, its `ProjectId`, and the creation time.
    pub fn create_graph(
        directory: impl AsRef<Path>,
        protections: Protections,
    ) -> Result<(Ham, ProjectId, Time)> {
        Self::create_graph_with(StdVfs::arc(), directory, protections)
    }

    /// [`Ham::create_graph`] on an explicit [`Vfs`] (fault injection).
    pub fn create_graph_with(
        vfs: Arc<dyn Vfs>,
        directory: impl AsRef<Path>,
        protections: Protections,
    ) -> Result<(Ham, ProjectId, Time)> {
        let directory = directory.as_ref().to_path_buf();
        vfs.create_dir_all(&directory)
            .map_err(neptune_storage::StorageError::from)?;
        let project_id = ProjectId(fresh_project_id(&directory));
        let graph = HamGraph::new(project_id);
        let created = graph.created;
        let mut threads = HashMap::new();
        threads.insert(
            MAIN_CONTEXT,
            GraphThread {
                graph,
                forked_from: None,
            },
        );
        let wal = Wal::open_with(vfs.as_ref(), directory.join(WAL_FILE))?;
        let blobs = BlobStore::open_with(Arc::clone(&vfs), directory.join(NODES_DIR), protections)?;
        let vcache = Arc::new(Mutex::new(MaterializationCache::default()));
        let view = CommittedView::new(
            1,
            0,
            (0, 1),
            &threads,
            Arc::clone(&vcache),
            directory.clone(),
        );
        let mut ham = Ham {
            directory,
            vfs,
            project_id,
            protections,
            wal,
            blobs,
            threads,
            next_context: 1,
            txn: None,
            next_txn: 1,
            registry: DemonRegistry::new(),
            journal: Vec::new(),
            in_demon: false,
            replaying: false,
            vcache,
            published: Arc::new(Published::new(view)),
            view_epoch: 1,
            commit_seq: Arc::new(AtomicU64::new(0)),
            last_seq: 0,
            forced_seq: None,
            shard: (0, 1),
        };
        ham.write_meta()?;
        ham.checkpoint()?;
        Ok((ham, project_id, created))
    }

    /// `destroyGraph: ProjectId × Directory →`
    ///
    /// Destroys the graph in `directory`. `project_id` must match the value
    /// returned by the `createGraph` that created it.
    pub fn destroy_graph(project_id: ProjectId, directory: impl AsRef<Path>) -> Result<()> {
        Self::destroy_graph_with(&StdVfs, project_id, directory)
    }

    /// [`Ham::destroy_graph`] against an explicit [`Vfs`], so fault sweeps
    /// can cover the teardown path too.
    pub fn destroy_graph_with(
        vfs: &dyn Vfs,
        project_id: ProjectId,
        directory: impl AsRef<Path>,
    ) -> Result<()> {
        let directory = directory.as_ref();
        let meta = read_meta(vfs, directory)?;
        if meta.0 != project_id {
            return Err(HamError::ProjectMismatch {
                given: project_id,
                actual: meta.0,
            });
        }
        vfs.remove_dir_all(directory)
            .map_err(neptune_storage::StorageError::from)?;
        Ok(())
    }

    /// `openGraph: ProjectId × Machine × Directory → Context`
    ///
    /// Opens an existing graph. `machine` names where the graph lives; the
    /// in-process implementation requires the local machine (the network
    /// path goes through `neptune-server`). Returns the machine with the
    /// main context id. Triggers the `graphOpened` demon.
    pub fn open_graph(
        project_id: ProjectId,
        _machine: &Machine,
        directory: impl AsRef<Path>,
    ) -> Result<(Ham, ContextId)> {
        Self::open_graph_with(StdVfs::arc(), project_id, directory)
    }

    /// [`Ham::open_graph`] on an explicit [`Vfs`] (fault injection).
    pub fn open_graph_with(
        vfs: Arc<dyn Vfs>,
        project_id: ProjectId,
        directory: impl AsRef<Path>,
    ) -> Result<(Ham, ContextId)> {
        let directory = directory.as_ref().to_path_buf();
        let (meta_pid, protections, meta_next_context, meta_next_txn) =
            read_meta(vfs.as_ref(), &directory)?;
        if meta_pid != project_id {
            return Err(HamError::ProjectMismatch {
                given: project_id,
                actual: meta_pid,
            });
        }
        let snapshot_bytes = read_snapshot_with(vfs.as_ref(), directory.join(SNAPSHOT_FILE))?;
        let state = decode_store_state(&snapshot_bytes)?;
        let mut wal = Wal::open_with(vfs.as_ref(), directory.join(WAL_FILE))?;
        // Skip WAL records already folded into the snapshot: if a crash hit
        // after the snapshot rename became durable but before the log
        // truncation did, replaying the whole log would apply every folded
        // transaction a second time.
        let committed = wal.recover_committed_after(state.boundary_lsn)?;
        let blobs = BlobStore::open_with(Arc::clone(&vfs), directory.join(NODES_DIR), protections)?;
        let vcache = Arc::new(Mutex::new(MaterializationCache::default()));
        let view = CommittedView::new(
            1,
            state.last_seq,
            (0, 1),
            &state.threads,
            Arc::clone(&vcache),
            directory.clone(),
        );
        let mut ham = Ham {
            directory,
            vfs,
            project_id,
            protections,
            wal,
            blobs,
            threads: state.threads,
            next_context: meta_next_context.max(state.next_context),
            txn: None,
            next_txn: meta_next_txn.max(state.next_txn),
            registry: DemonRegistry::new(),
            journal: Vec::new(),
            in_demon: false,
            replaying: false,
            vcache,
            published: Arc::new(Published::new(view)),
            view_epoch: 1,
            commit_seq: Arc::new(AtomicU64::new(state.last_seq)),
            last_seq: state.last_seq,
            forced_seq: None,
            shard: (0, 1),
        };
        // Replay committed transactions that postdate the snapshot.
        ham.replaying = true;
        for txn in committed {
            ham.next_txn = ham.next_txn.max(txn.txn_id + 1);
            for payload in txn.ops {
                let op = RedoOp::from_bytes(&payload)?;
                ham.apply_redo(op)?;
            }
            // Re-adopt the persisted sequence so post-recovery commits
            // continue the global order.
            ham.last_seq = ham.last_seq.max(txn.seq);
        }
        ham.commit_seq
            .fetch_max(ham.last_seq, atomic::Ordering::Relaxed);
        ham.replaying = false;
        // The placeholder epoch-1 view predates replay; republish so
        // lock-free readers see the recovered state.
        ham.publish_view();
        ham.fire(MAIN_CONTEXT, Event::GraphOpened, None, None)?;
        Ok((ham, MAIN_CONTEXT))
    }

    /// Open a graph without knowing its `ProjectId` (directory inspection).
    pub fn open_existing(directory: impl AsRef<Path>) -> Result<(Ham, ContextId, ProjectId)> {
        Self::open_existing_with(StdVfs::arc(), directory)
    }

    /// [`Ham::open_existing`] on an explicit [`Vfs`] (fault injection).
    pub fn open_existing_with(
        vfs: Arc<dyn Vfs>,
        directory: impl AsRef<Path>,
    ) -> Result<(Ham, ContextId, ProjectId)> {
        let (pid, ..) = read_meta(vfs.as_ref(), directory.as_ref())?;
        let (ham, ctx) = Ham::open_graph_with(vfs, pid, directory)?;
        Ok((ham, ctx, pid))
    }

    /// `addNode: Context × Boolean → NodeIndex × Time`
    ///
    /// Creates a new empty node; `keep_history = true` maintains a complete
    /// version history (archive). Triggers the `nodeAdded` demon.
    pub fn add_node(
        &mut self,
        context: ContextId,
        keep_history: bool,
    ) -> Result<(NodeIndex, Time)> {
        let _span = neptune_obs::span!("ham.add_node", "context {}", context.0);
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let (id, time) = ham.graph_mut(context)?.add_node(keep_history);
            ham.push_redo(RedoOp::AddNode {
                context,
                id,
                time,
                keep_history,
            });
            ham.fire(context, Event::NodeAdded, Some(id), None)?;
            Ok((id, time))
        })
    }

    /// `deleteNode: Context × NodeIndex →`
    ///
    /// Removes the node; all links into or out of it are deleted. History
    /// is preserved: earlier versions of the graph still see it. Triggers
    /// the `nodeDeleted` demon.
    pub fn delete_node(&mut self, context: ContextId, node: NodeIndex) -> Result<()> {
        let _span = neptune_obs::span!("ham.delete_node", "context {} node {}", context.0, node.0);
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let time = ham.graph_mut(context)?.delete_node(node)?;
            ham.push_redo(RedoOp::DeleteNode {
                context,
                id: node,
                time,
            });
            ham.fire(context, Event::NodeDeleted, Some(node), None)?;
            Ok(())
        })
    }

    /// `addLink: Context × LinkPt₁ × LinkPt₂ → LinkIndex × Time`
    ///
    /// Creates a link from `from` to `to`. Both nodes must exist at their
    /// respective times; a zero time means the attachment tracks the
    /// current version. Triggers the `linkAdded` demon.
    pub fn add_link(
        &mut self,
        context: ContextId,
        from: LinkPt,
        to: LinkPt,
    ) -> Result<(LinkIndex, Time)> {
        let _span = neptune_obs::span!("ham.add_link", "context {}", context.0);
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let (id, time) = ham.graph_mut(context)?.add_link(from, to)?;
            ham.push_redo(RedoOp::AddLink {
                context,
                id,
                from,
                to,
                time,
            });
            ham.fire(context, Event::LinkAdded, None, Some(id))?;
            Ok((id, time))
        })
    }

    /// `copyLink: Context × LinkIndex × Time₁ × Boolean × LinkPt → LinkIndex × Time`
    ///
    /// Creates a new link sharing one end with `link` as of `time1`: with
    /// `keep_source = true` the new link's source is `link`'s source and
    /// `pt` is the destination; otherwise the destination is shared and
    /// `pt` is the source. Triggers the `linkAdded` demon.
    pub fn copy_link(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
        keep_source: bool,
        pt: LinkPt,
    ) -> Result<(LinkIndex, Time)> {
        let shared = {
            let graph = self.graph(context)?;
            let l = graph.live_link(link, time1)?;
            let end = if keep_source { &l.from } else { &l.to };
            end.linkpt_at(time1).ok_or(HamError::NoSuchLink(link))?
        };
        let (from, to) = if keep_source {
            (shared, pt)
        } else {
            (pt, shared)
        };
        self.add_link(context, from, to)
    }

    /// `deleteLink: Context × LinkIndex →`
    ///
    /// Removes the link (history preserved). Triggers `linkDeleted`.
    pub fn delete_link(&mut self, context: ContextId, link: LinkIndex) -> Result<()> {
        let _span = neptune_obs::span!("ham.delete_link", "context {} link {}", context.0, link.0);
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let time = ham.graph_mut(context)?.delete_link(link)?;
            ham.push_redo(RedoOp::DeleteLink {
                context,
                id: link,
                time,
            });
            ham.fire(context, Event::LinkDeleted, None, Some(link))?;
            Ok(())
        })
    }

    /// `linearizeGraph`: depth-first, offset-ordered traversal from `start`
    /// at `time`, filtered by node and link predicates, returning each
    /// result object's requested attribute values.
    #[allow(clippy::too_many_arguments)]
    pub fn linearize_graph(
        &self,
        context: ContextId,
        start: NodeIndex,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let _span = neptune_obs::span!("ham.linearize_graph", "context {}", context.0);
        self.read_core().linearize_graph(
            context, start, time, node_pred, link_pred, node_attrs, link_attrs,
        )
    }

    /// `getGraphQuery`: associative access to all nodes satisfying the node
    /// predicate and their interconnecting links satisfying the link
    /// predicate, at `time`.
    #[allow(clippy::too_many_arguments)]
    pub fn get_graph_query(
        &self,
        context: ContextId,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        let _span = neptune_obs::span!("ham.get_graph_query", "context {}", context.0);
        self.read_core()
            .get_graph_query(context, time, node_pred, link_pred, node_attrs, link_attrs)
    }

    /// [`Ham::get_graph_query`] with the value-index accelerator disabled —
    /// the ablation baseline for experiment E3.
    #[allow(clippy::too_many_arguments)]
    pub fn get_graph_query_scan(
        &self,
        context: ContextId,
        time: Time,
        node_pred: &Predicate,
        link_pred: &Predicate,
        node_attrs: &[AttributeIndex],
        link_attrs: &[AttributeIndex],
    ) -> Result<SubGraph> {
        self.read_core()
            .get_graph_query_scan(context, time, node_pred, link_pred, node_attrs, link_attrs)
    }

    // =====================================================================
    // A.2 Node operations
    // =====================================================================

    /// `openNode: NodeIndex × Time₁ × AttributeIndexᵐ → Contents × LinkPt* × Valueᵐ × Time₂`
    ///
    /// Returns the node's contents at `time` (zero = current), the link
    /// attachments of that version, the requested attribute values, and the
    /// current version time. Triggers the `nodeOpened` demon.
    pub fn open_node(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        attrs: &[AttributeIndex],
    ) -> Result<OpenedNode> {
        let _span = neptune_obs::span!("ham.open_node", "context {} node {}", context.0, node.0);
        let opened = self.read_node_inner(context, node, time, attrs)?;
        // `openNode` can trigger a demon; only pay the dispatch cost if one
        // is actually registered for this event.
        if self.open_demon_registered(context, node) {
            self.auto_txn(|ham| ham.fire(context, Event::NodeOpened, Some(node), None))?;
        }
        Ok(opened)
    }

    /// The read-only core of [`Ham::open_node`]: everything except firing
    /// the `nodeOpened` demon. The server dispatches here under its shared
    /// reader lock when [`Ham::open_demon_registered`] says no demon would
    /// fire; callers that must preserve demon semantics use `open_node`.
    pub fn read_node(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        attrs: &[AttributeIndex],
    ) -> Result<OpenedNode> {
        let _span = neptune_obs::span!("ham.read_node", "context {} node {}", context.0, node.0);
        self.read_node_inner(context, node, time, attrs)
    }

    /// Shared body of [`Ham::open_node`] and [`Ham::read_node`], unspanned
    /// so each public entry point records exactly one span.
    fn read_node_inner(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        attrs: &[AttributeIndex],
    ) -> Result<OpenedNode> {
        self.read_core().read_node(context, node, time, attrs)
    }

    /// Whether opening `node` in `context` would fire a `nodeOpened` demon
    /// (in which case `open_node`'s mutable path must be used).
    pub fn open_demon_registered(&self, context: ContextId, node: NodeIndex) -> bool {
        self.demon_registered(context, Event::NodeOpened, Some(node))
    }

    /// `modifyNode: NodeIndex × Time × Contents × LinkPt* →`
    ///
    /// Checks in new contents. `time` must equal the node's current version
    /// time (optimistic concurrency); `link_pts` must supply one point per
    /// attachment of the current version, in the canonical order returned
    /// by `openNode`. Attachments whose position changed get a new version
    /// of their offset; pinned attachments may not move. Triggers the
    /// `nodeModified` demon.
    pub fn modify_node(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        contents: impl Into<Arc<[u8]>>,
        link_pts: &[LinkPt],
    ) -> Result<Time> {
        let _span = neptune_obs::span!("ham.modify_node", "context {} node {}", context.0, node.0);
        // One shared allocation backs the version store, the redo log, and
        // the warm cache entry below — check-in never copies the contents.
        let contents: Arc<[u8]> = contents.into();
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let now = apply_modify_node(
                ham.graph_mut(context)?,
                node,
                Some(time),
                contents.clone(),
                link_pts,
            )?;
            ham.push_redo(RedoOp::ModifyNode {
                context,
                id: node,
                contents: contents.clone(),
                link_pts: link_pts.to_vec(),
                time: now,
            });
            // Warm the version cache: once a newer check-in displaces this
            // version from the head, readers of time `now` hit this entry
            // instead of replaying deltas.
            ham.lock_vcache()
                .insert((context.0, node.0, now.0), contents.clone());
            ham.fire(context, Event::NodeModified, Some(node), None)?;
            Ok(now)
        })
    }

    /// `getNodeTimeStamp: NodeIndex → Time`
    ///
    /// The version time of the node's current version.
    pub fn get_node_time_stamp(&self, context: ContextId, node: NodeIndex) -> Result<Time> {
        self.read_core().get_node_time_stamp(context, node)
    }

    /// `changeNodeProtection: NodeIndex × Protections →`
    ///
    /// Sets the protections for the file storing the node's contents.
    pub fn change_node_protection(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        protections: Protections,
    ) -> Result<()> {
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            ham.graph_mut(context)?.live_node(node, Time::CURRENT)?;
            ham.graph_mut(context)?.node_mut(node)?.protections = protections;
            if context == MAIN_CONTEXT && ham.blobs.contains(node.0) {
                ham.blobs.set_protections(node.0, protections)?;
            }
            ham.push_redo(RedoOp::ChangeProtection {
                context,
                node,
                protections,
            });
            Ok(())
        })
    }

    /// `getNodeVersions: NodeIndex → Version₁⁺ × Version₂*`
    ///
    /// The node's version history: major versions (content updates) and
    /// minor versions (link/attribute changes).
    pub fn get_node_versions(
        &self,
        context: ContextId,
        node: NodeIndex,
    ) -> Result<(Vec<Version>, Vec<Version>)> {
        self.read_core().get_node_versions(context, node)
    }

    /// `getNodeDifferences: NodeIndex × Time₁ × Time₂ → Difference*`
    ///
    /// Line-level differences between the node's contents at the two times.
    pub fn get_node_differences(
        &self,
        context: ContextId,
        node: NodeIndex,
        time1: Time,
        time2: Time,
    ) -> Result<Vec<Difference>> {
        self.read_core()
            .get_node_differences(context, node, time1, time2)
    }

    // =====================================================================
    // A.3 Link operations
    // =====================================================================

    /// `getToNode: LinkIndex × Time₁ → NodeIndex × Time₂`
    ///
    /// The destination node and the version of it the link refers to at
    /// `time1` (the pinned version for pinned ends, the version current at
    /// `time1` for tracking ends).
    pub fn get_to_node(
        &self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
    ) -> Result<(NodeIndex, Time)> {
        self.read_core().get_to_node(context, link, time1)
    }

    /// `getFromNode: LinkIndex × Time₁ → NodeIndex × Time₂`
    ///
    /// The source-node analogue of [`Ham::get_to_node`].
    pub fn get_from_node(
        &self,
        context: ContextId,
        link: LinkIndex,
        time1: Time,
    ) -> Result<(NodeIndex, Time)> {
        self.read_core().get_from_node(context, link, time1)
    }

    // =====================================================================
    // A.4 Attribute operations
    // =====================================================================

    /// `getAttributes: Context × Time → (Attribute × AttributeIndex)*`
    ///
    /// All attribute names (and their indices) that existed at `time`.
    pub fn get_attributes(
        &self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex)>> {
        self.read_core().get_attributes(context, time)
    }

    /// `getAttributeValues: Context × AttributeIndex × Time → Value*`
    ///
    /// The set of all values defined for the attribute at `time`, across
    /// all nodes and links.
    pub fn get_attribute_values(
        &self,
        context: ContextId,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Vec<Value>> {
        self.read_core().get_attribute_values(context, attr, time)
    }

    /// `getAttributeIndex: Context × Attribute → AttributeIndex`
    ///
    /// The unique identification for the attribute name, creating it if it
    /// does not exist.
    pub fn get_attribute_index(
        &mut self,
        context: ContextId,
        name: &str,
    ) -> Result<AttributeIndex> {
        if let Some(idx) = self.graph(context)?.attr_table.lookup(name) {
            return Ok(idx);
        }
        let name = name.to_string();
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let idx = ham.graph_mut(context)?.attribute_index(&name);
            let time = ham.graph(context)?.now();
            ham.push_redo(RedoOp::InternAttr {
                context,
                name,
                time,
            });
            Ok(idx)
        })
    }

    /// `setNodeAttributeValue: NodeIndex × AttributeIndex × Value →`
    ///
    /// Sets the attribute's value for the node, creating a new version of
    /// the attribute value. Triggers the `attributeChanged` demon.
    pub fn set_node_attribute_value(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
        value: Value,
    ) -> Result<()> {
        let _span = neptune_obs::span!(
            "ham.set_node_attribute_value",
            "context {} node {}",
            context.0,
            node.0
        );
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let time = ham
                .graph_mut(context)?
                .set_node_attr(node, attr, value.clone())?;
            let name = ham.graph(context)?.attr_name(attr)?.to_string();
            ham.push_redo(RedoOp::SetNodeAttr {
                context,
                node,
                attr: name,
                value,
                time,
            });
            ham.fire(context, Event::AttributeChanged, Some(node), None)?;
            Ok(())
        })
    }

    /// `deleteNodeAttribute: NodeIndex × AttributeIndex →`
    ///
    /// Deletes the attribute's value for the node (the history remains
    /// queryable at earlier times). Triggers `attributeChanged`.
    pub fn delete_node_attribute(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
    ) -> Result<()> {
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let time = ham.graph_mut(context)?.delete_node_attr(node, attr)?;
            let name = ham.graph(context)?.attr_name(attr)?.to_string();
            ham.push_redo(RedoOp::DeleteNodeAttr {
                context,
                node,
                attr: name,
                time,
            });
            ham.fire(context, Event::AttributeChanged, Some(node), None)?;
            Ok(())
        })
    }

    /// `getNodeAttributeValue: NodeIndex × AttributeIndex × Time → Value`
    pub fn get_node_attribute_value(
        &self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        self.read_core()
            .get_node_attribute_value(context, node, attr, time)
    }

    /// `getNodeAttributes: NodeIndex × Time → (Attribute × AttributeIndex × Value)*`
    pub fn get_node_attributes(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        self.read_core().get_node_attributes(context, node, time)
    }

    /// `setLinkAttributeValue: LinkIndex × AttributeIndex × Value →`
    pub fn set_link_attribute_value(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
        value: Value,
    ) -> Result<()> {
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let time = ham
                .graph_mut(context)?
                .set_link_attr(link, attr, value.clone())?;
            let name = ham.graph(context)?.attr_name(attr)?.to_string();
            ham.push_redo(RedoOp::SetLinkAttr {
                context,
                link,
                attr: name,
                value,
                time,
            });
            ham.fire(context, Event::AttributeChanged, None, Some(link))?;
            Ok(())
        })
    }

    /// `deleteLinkAttribute: LinkIndex × AttributeIndex →`
    pub fn delete_link_attribute(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
    ) -> Result<()> {
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            let time = ham.graph_mut(context)?.delete_link_attr(link, attr)?;
            let name = ham.graph(context)?.attr_name(attr)?.to_string();
            ham.push_redo(RedoOp::DeleteLinkAttr {
                context,
                link,
                attr: name,
                time,
            });
            ham.fire(context, Event::AttributeChanged, None, Some(link))?;
            Ok(())
        })
    }

    /// `getLinkAttributeValue: LinkIndex × AttributeIndex × Time → Value`
    pub fn get_link_attribute_value(
        &self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        self.read_core()
            .get_link_attribute_value(context, link, attr, time)
    }

    /// `getLinkAttributes: LinkIndex × Time → (Attribute × AttributeIndex × Value)*`
    pub fn get_link_attributes(
        &self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        self.read_core().get_link_attributes(context, link, time)
    }

    // =====================================================================
    // A.5 Demon operations
    // =====================================================================

    /// `setGraphDemonValue: Context × Event × Demon →`
    ///
    /// Sets the graph-level demon for `event` (a new version of the demon
    /// is created); `None` disables it.
    pub fn set_graph_demon_value(
        &mut self,
        context: ContextId,
        event: Event,
        demon: Option<DemonSpec>,
    ) -> Result<()> {
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            // A mark-node demon's attribute must exist for the demon to be
            // meaningful; intern it now rather than at first fire.
            if let Some(DemonSpec {
                action: DemonAction::MarkNode { attr, .. },
                ..
            }) = &demon
            {
                let attr = attr.clone();
                ham.get_attribute_index(context, &attr)?;
            }
            let time = ham.graph_mut(context)?.tick();
            ham.graph_mut(context)?
                .graph_demons
                .set(event, demon.clone(), time);
            ham.push_redo(RedoOp::SetGraphDemon {
                context,
                event,
                demon,
                time,
            });
            Ok(())
        })
    }

    /// `getGraphDemons: Context × Time → (Event × Demon)*`
    pub fn get_graph_demons(
        &self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        self.read_core().get_graph_demons(context, time)
    }

    /// `setNodeDemon: NodeIndex × Event × Demon →`
    pub fn set_node_demon(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        event: Event,
        demon: Option<DemonSpec>,
    ) -> Result<()> {
        self.auto_txn(|ham| {
            ham.note_context(context)?;
            ham.graph_mut(context)?.live_node(node, Time::CURRENT)?;
            if let Some(DemonSpec {
                action: DemonAction::MarkNode { attr, .. },
                ..
            }) = &demon
            {
                let attr = attr.clone();
                ham.get_attribute_index(context, &attr)?;
            }
            let time = ham.graph_mut(context)?.tick();
            let g = ham.graph_mut(context)?;
            g.node_mut(node)?.demons.set(event, demon.clone(), time);
            g.node_mut(node)?.record_minor(time, "demon set");
            ham.push_redo(RedoOp::SetNodeDemon {
                context,
                node,
                event,
                demon,
                time,
            });
            Ok(())
        })
    }

    /// `getNodeDemons: NodeIndex × Time → (Event × Demon)*`
    pub fn get_node_demons(
        &self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        self.read_core().get_node_demons(context, node, time)
    }

    /// Register a named Rust callback for `DemonAction::Call` demons — the
    /// §5 "parameterized demons … written in Smalltalk, Modula-2, or C".
    pub fn register_demon_callback<F>(&mut self, name: impl Into<String>, callback: F)
    where
        F: Fn(&DemonFireInfo) + Send + Sync + 'static,
    {
        self.registry.register(name, callback);
    }

    /// The journal of demon firings (notifications, missing callbacks).
    pub fn demon_journal(&self) -> &[FireRecord] {
        &self.journal
    }

    /// Clear the demon journal (e.g. between test phases).
    pub fn clear_demon_journal(&mut self) {
        self.journal.clear();
    }

    // =====================================================================
    // Transactions (paper §2.2)
    // =====================================================================

    /// Begin an explicit transaction bundling several primitive operations.
    pub fn begin_transaction(&mut self) -> Result<u64> {
        if self.txn.is_some() {
            return Err(HamError::TransactionState {
                reason: "transaction already active",
            });
        }
        let id = self.next_txn;
        self.next_txn += 1;
        self.txn = Some(ActiveTxn::new(id));
        Ok(id)
    }

    /// Commit the active transaction: its operations become durable (the
    /// WAL is forced) before this returns.
    pub fn commit_transaction(&mut self) -> Result<()> {
        let _span = neptune_obs::span!("ham.commit_transaction");
        let txn = self.txn.take().ok_or(HamError::TransactionState {
            reason: "no active transaction",
        })?;
        if txn.redo.is_empty() {
            // A coordinator-forced sequence must not outlive the (empty)
            // commit it was meant for.
            self.forced_seq = None;
            self.count_txn_outcome("neptune_ham_txn_commits_total");
            return Ok(()); // read-only transaction: nothing new to publish
        }
        if let Err(e) = self.log_txn(&txn) {
            // The commit never became durable (or its durability is
            // unknown and the WAL has poisoned itself). Roll the in-memory
            // state back so what readers see matches what recovery will
            // reconstruct — returning the error while keeping the changes
            // would leave the machine serving state that a crash loses.
            self.rollback(txn);
            self.count_txn_outcome("neptune_ham_txn_commit_failures_total");
            return Err(e.into());
        }
        #[cfg(feature = "strict-invariants")]
        self.assert_strict_invariants("commit_transaction");
        self.count_txn_outcome("neptune_ham_txn_commits_total");
        // The commit is durable; hand the new state to lock-free readers.
        self.publish_view();
        Ok(())
    }

    /// Append a transaction's records and force the commit to disk. The
    /// commit record is stamped with the next global commit sequence (or a
    /// coordinator-forced one for cross-shard transactions); the sequence
    /// becomes `last_seq` — and visible to readers — only once durable.
    fn log_txn(&mut self, txn: &ActiveTxn) -> neptune_storage::Result<()> {
        self.wal.append(txn.id, RecordKind::Begin, Vec::new())?;
        for op in &txn.redo {
            self.wal.append(txn.id, RecordKind::Op, op.to_bytes())?;
        }
        let seq = match self.forced_seq.take() {
            Some(seq) => seq,
            None => self.commit_seq.fetch_add(1, atomic::Ordering::Relaxed) + 1,
        };
        self.wal
            .append_commit_with(txn.id, seq.to_le_bytes().to_vec())?;
        self.last_seq = seq;
        Ok(())
    }

    /// Bump one of the `neptune_ham_txn_*_total` outcome counters.
    fn count_txn_outcome(&self, key: &str) {
        if neptune_obs::enabled() {
            neptune_obs::registry().counter(key).inc();
        }
    }

    /// With the `strict-invariants` feature, every commit and checkpoint
    /// re-verifies the integrity rules the `neptune-check` crate reports on
    /// and panics on the first violation — a debug harness for catching
    /// corruption at the operation that introduces it.
    #[cfg(feature = "strict-invariants")]
    fn assert_strict_invariants(&self, site: &str) {
        if self.replaying {
            return; // replay re-applies ops one at a time; check at the end
        }
        let violations = crate::invariants::ham_violations(self);
        assert!(
            violations.is_empty(),
            "strict-invariants violated at {site}: {violations:?}"
        );
    }

    /// Abort the active transaction: every context it touched is rolled
    /// back to its state at transaction start ("complete recovery from any
    /// aborted transaction").
    pub fn abort_transaction(&mut self) -> Result<()> {
        let _span = neptune_obs::span!("ham.abort_transaction");
        let txn = self.txn.take().ok_or(HamError::TransactionState {
            reason: "no active transaction",
        })?;
        self.count_txn_outcome("neptune_ham_txn_aborts_total");
        self.rollback(txn);
        Ok(())
    }

    /// Undo everything a transaction did in memory (shared by explicit
    /// aborts and failed commits).
    fn rollback(&mut self, txn: ActiveTxn) {
        // A commit the WAL refused must not leak its forced sequence into
        // a later unrelated commit.
        self.forced_seq = None;
        // Contexts destroyed/overwritten during the txn come back first.
        for (id, graph) in txn.saved_contexts.into_iter().rev() {
            let forked_from = self.threads.get(&id).and_then(|t| t.forked_from);
            self.threads.insert(id, GraphThread { graph, forked_from });
        }
        for id in txn.created_contexts {
            self.threads.remove(&id);
        }
        // Fork points rewritten by merges are not clock-versioned; restore
        // them explicitly, oldest record last so the pre-transaction value
        // wins when one context was re-forked twice.
        for (id, forked_from) in txn.saved_forks.into_iter().rev() {
            if let Some(thread) = self.threads.get_mut(&id) {
                thread.forked_from = forked_from;
            }
        }
        for (context, start) in txn.start_times {
            if let Some(thread) = self.threads.get_mut(&context) {
                thread.graph.truncate_after(start);
            }
        }
        // Rollback rewinds version clocks, so future check-ins can reuse
        // the exact (node, time) pairs just discarded with different
        // contents. Drop every materialized version (which also starts a
        // new cache generation, fencing off readers still pinned to views
        // published before the rollback); aborts are rare.
        self.lock_vcache().clear();
        // Republish: the rolled-back state equals the last committed one,
        // but the new view repins the post-clear cache generation so
        // future lock-free reads can warm the cache again.
        if !self.replaying {
            self.publish_view();
        }
    }

    /// Whether a transaction is currently active.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Fold the WAL into an atomic snapshot: after this, recovery starts
    /// from the snapshot instead of replaying history. Also mirrors each
    /// main-context node's current contents into its per-node file with the
    /// node's protections (the paper's file-per-node storage model).
    ///
    /// Ordering is the durability contract (DESIGN.md §12): every side
    /// effect — the snapshot, the blob mirror, and their fsyncs — completes
    /// *before* [`Wal::checkpoint`] truncates the log. An error before the
    /// truncation is recoverable (the old snapshot + full log still
    /// describe the complete state); the truncation itself is the point of
    /// no return. The snapshot embeds the LSN boundary it folded, so a
    /// crash after the snapshot rename but before the truncation cannot
    /// double-apply replayed transactions.
    pub fn checkpoint(&mut self) -> Result<()> {
        let _span = neptune_obs::span!("ham.checkpoint");
        if self.txn.is_some() {
            return Err(HamError::TransactionState {
                reason: "cannot checkpoint inside a transaction",
            });
        }
        if let Err(e) = self.checkpoint_side_effects() {
            // Recoverable: the WAL is untouched, so reopening replays the
            // full log over whichever snapshot generation survived.
            self.count_checkpoint_failure();
            return Err(e);
        }
        if let Err(e) = self.wal.checkpoint() {
            // The WAL poisons itself; the durable state stays consistent
            // either way because the new snapshot's boundary LSN already
            // covers everything the old log contains.
            self.count_checkpoint_failure();
            return Err(e.into());
        }
        #[cfg(feature = "strict-invariants")]
        self.assert_strict_invariants("checkpoint");
        Ok(())
    }

    /// Everything a checkpoint must make durable before the WAL truncates:
    /// the snapshot (which carries the fold boundary) and the per-node blob
    /// mirror, ending with one directory fsync over the blobs.
    fn checkpoint_side_effects(&self) -> Result<()> {
        // Highest LSN currently in the log: all of it is folded into this
        // snapshot, so recovery must skip records at or below it.
        let boundary_lsn = self.wal.next_lsn() - 1;
        let bytes = encode_store_state(
            boundary_lsn,
            self.next_context,
            self.next_txn,
            self.last_seq,
            &self.threads,
        );
        write_snapshot_with(
            self.vfs.as_ref(),
            self.directory.join(SNAPSHOT_FILE),
            &bytes,
        )?;
        // Mirror current node contents to per-node files.
        let main = &self.threads[&MAIN_CONTEXT].graph;
        for node in main.nodes() {
            if node.exists_at(Time::CURRENT) {
                let contents = node.contents_at(Time::CURRENT)?;
                self.blobs.put(node.id.0, &contents)?;
                self.blobs.set_protections(node.id.0, node.protections)?;
            } else if self.blobs.contains(node.id.0) {
                self.blobs.delete(node.id.0)?;
            }
        }
        self.blobs.sync_root()?;
        Ok(())
    }

    /// Bump the failed-checkpoint counter.
    fn count_checkpoint_failure(&self) {
        if neptune_obs::enabled() {
            neptune_obs::registry()
                .counter("neptune_ham_checkpoint_failures_total")
                .inc();
        }
    }

    // =====================================================================
    // Contexts: multiple version threads (paper §5)
    // =====================================================================

    /// Fork a new context ("private world") from `from`, sharing all its
    /// history up to now.
    pub fn create_context(&mut self, from: ContextId) -> Result<ContextId> {
        let id = ContextId(self.next_context);
        self.create_context_as(id, from)?;
        Ok(id)
    }

    /// [`Ham::create_context`] with a caller-assigned id: a
    /// [`crate::shard::ShardedHam`] allocates context ids globally (so a
    /// context's home shard is a pure function of its id) and hands each
    /// shard the id to use. `id` must be at least this machine's next free
    /// id; the internal allocator is advanced past it.
    pub fn create_context_as(&mut self, id: ContextId, from: ContextId) -> Result<()> {
        let _span = neptune_obs::span!("ham.create_context", "from {}", from.0);
        self.auto_txn(|ham| {
            if ham.threads.contains_key(&id) {
                return Err(HamError::TransactionState {
                    reason: "context id already in use",
                });
            }
            let parent = ham.thread(from)?;
            let fork_time = parent.graph.now();
            let graph = parent.graph.clone();
            ham.next_context = ham.next_context.max(id.0 + 1);
            ham.threads.insert(
                id,
                GraphThread {
                    graph,
                    forked_from: Some((from, fork_time)),
                },
            );
            if let Some(txn) = &mut ham.txn {
                txn.created_contexts.push(id);
            }
            ham.push_redo(RedoOp::CreateContext {
                id,
                from,
                time: fork_time,
            });
            Ok(())
        })
    }

    /// Merge the changes made in `child` since its fork back into its
    /// parent context. The child remains usable afterwards (re-forked from
    /// the merge point).
    pub fn merge_context(
        &mut self,
        child: ContextId,
        policy: ConflictPolicy,
    ) -> Result<MergeReport> {
        let _span = neptune_obs::span!("ham.merge_context", "child {}", child.0);
        let (parent_id, fork_time) =
            self.thread(child)?
                .forked_from
                .ok_or(HamError::TransactionState {
                    reason: "cannot merge the main context",
                })?;
        self.auto_txn(|ham| {
            ham.note_context(parent_id)?;
            let child_graph = ham.thread(child)?.graph.clone();
            let parent = ham.graph_mut(parent_id)?;
            let report = merge_context(parent, &child_graph, fork_time, policy)?;
            if neptune_obs::enabled() && !report.conflicts.is_empty() {
                neptune_obs::registry()
                    .counter("neptune_ham_merge_conflicts_total")
                    .add(report.conflicts.len() as u64);
            }
            let new_fork = ham.graph(parent_id)?.now();
            if let Some(thread) = ham.threads.get_mut(&child) {
                // Fork points are not clock-versioned: save the old one so
                // an abort restores it (truncating the parent alone would
                // leave the child forked beyond the parent's clock).
                let old = thread.forked_from;
                thread.forked_from = Some((parent_id, new_fork));
                if let Some(txn) = &mut ham.txn {
                    txn.saved_forks.push((child, old));
                }
            }
            ham.push_redo(RedoOp::MergeContext {
                child,
                into: parent_id,
                policy: policy_tag(policy),
            });
            // The merge rewrote parent archives; drop its cached versions.
            ham.lock_vcache().invalidate_context(parent_id.0);
            Ok(report)
        })
    }

    /// Discard a context and its private history.
    pub fn destroy_context(&mut self, id: ContextId) -> Result<()> {
        let _span = neptune_obs::span!("ham.destroy_context", "context {}", id.0);
        if id == MAIN_CONTEXT {
            return Err(HamError::TransactionState {
                reason: "cannot destroy the main context",
            });
        }
        self.auto_txn(|ham| {
            let thread = ham.threads.get(&id).ok_or(HamError::NoSuchContext(id))?;
            if let Some(txn) = &mut ham.txn {
                txn.saved_contexts.push((id, thread.graph.clone()));
            }
            ham.threads.remove(&id);
            ham.push_redo(RedoOp::DestroyContext { id });
            ham.lock_vcache().invalidate_context(id.0);
            Ok(())
        })
    }

    /// All live context ids (the main context first).
    pub fn contexts(&self) -> Vec<ContextId> {
        let mut ids: Vec<ContextId> = self.threads.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    // =====================================================================
    // Cross-shard context surgery (driven by `crate::shard::ShardedHam`)
    // =====================================================================
    //
    // Each op is journaled with enough state (including encoded foreign
    // graphs) that this shard's WAL replays without consulting any other
    // shard — per-shard recovery stays independent ("recovery fan-in" is
    // simply opening every shard).

    /// A read-only export of `context`'s graph and clock, cloned O(changes)
    /// thanks to the persistent node/link tries. The coordinator hands it
    /// to another shard's [`Ham::adopt_context`] or [`Ham::merge_foreign`].
    pub(crate) fn export_graph(&self, context: ContextId) -> Result<(HamGraph, Time)> {
        let thread = self.thread(context)?;
        Ok((thread.graph.clone(), thread.graph.now()))
    }

    /// Adopt a context forked on another shard: install `graph` (the parent
    /// shard's export) as context `id`, forked from the foreign context
    /// `from` at `time`.
    pub(crate) fn adopt_context(
        &mut self,
        id: ContextId,
        from: ContextId,
        time: Time,
        graph: HamGraph,
    ) -> Result<()> {
        let _span = neptune_obs::span!("ham.adopt_context", "context {}", id.0);
        self.auto_txn(|ham| {
            if ham.threads.contains_key(&id) {
                return Err(HamError::TransactionState {
                    reason: "context id already in use",
                });
            }
            let mut gw = Writer::new();
            graph.encode(&mut gw);
            let encoded = gw.into_bytes();
            ham.next_context = ham.next_context.max(id.0 + 1);
            ham.threads.insert(
                id,
                GraphThread {
                    graph,
                    forked_from: Some((from, time)),
                },
            );
            if let Some(txn) = &mut ham.txn {
                txn.created_contexts.push(id);
            }
            ham.push_redo(RedoOp::AdoptContext {
                id,
                from,
                time,
                graph: encoded,
            });
            Ok(())
        })
    }

    /// Merge a foreign (other-shard) child graph into local context `into`.
    /// The parent half of a cross-shard merge; the child shard separately
    /// re-forks via [`Ham::set_fork_point`].
    pub(crate) fn merge_foreign(
        &mut self,
        into: ContextId,
        child_graph: &HamGraph,
        fork_time: Time,
        policy: ConflictPolicy,
    ) -> Result<MergeReport> {
        let _span = neptune_obs::span!("ham.merge_foreign", "into {}", into.0);
        self.auto_txn(|ham| {
            ham.note_context(into)?;
            let parent = ham.graph_mut(into)?;
            let report = merge_context(parent, child_graph, fork_time, policy)?;
            if neptune_obs::enabled() && !report.conflicts.is_empty() {
                neptune_obs::registry()
                    .counter("neptune_ham_merge_conflicts_total")
                    .add(report.conflicts.len() as u64);
            }
            let mut gw = Writer::new();
            child_graph.encode(&mut gw);
            ham.push_redo(RedoOp::MergeForeign {
                into,
                policy: policy_tag(policy),
                fork_time,
                graph: gw.into_bytes(),
            });
            // Merges only append at fresh parent clock ticks, so resolved
            // historical keys stay valid; the invalidation drops now-stale
            // current-version materializations.
            ham.lock_vcache().invalidate_context(into.0);
            Ok(report)
        })
    }

    /// Rewrite `child`'s fork point to `(into, time)` — the child half of a
    /// cross-shard merge, after the parent shard folded the child in.
    pub(crate) fn set_fork_point(
        &mut self,
        child: ContextId,
        into: ContextId,
        time: Time,
    ) -> Result<()> {
        let _span = neptune_obs::span!("ham.set_fork_point", "context {}", child.0);
        self.auto_txn(|ham| {
            let thread = ham
                .threads
                .get_mut(&child)
                .ok_or(HamError::NoSuchContext(child))?;
            let old = thread.forked_from;
            thread.forked_from = Some((into, time));
            if let Some(txn) = &mut ham.txn {
                txn.saved_forks.push((child, old));
            }
            ham.push_redo(RedoOp::RefixFork { child, into, time });
            Ok(())
        })
    }

    /// The shared commit-sequence source (see [`Ham::attach_commit_seq`]).
    pub(crate) fn commit_seq_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.commit_seq)
    }

    /// Rebind this machine to a shared commit-sequence source, raising it
    /// to at least this shard's last persisted sequence. Called once per
    /// shard when a [`crate::shard::ShardedHam`] assembles.
    pub(crate) fn attach_commit_seq(&mut self, seq: Arc<AtomicU64>) {
        seq.fetch_max(self.last_seq, atomic::Ordering::Relaxed);
        self.commit_seq = seq;
    }

    /// Sequence stamped into the most recent durable commit (0 before any).
    pub fn last_commit_seq(&self) -> u64 {
        self.last_seq
    }

    /// Pre-assign the sequence for the next commit. Used by the cross-shard
    /// coordinator so every participant of one logical transaction stamps
    /// the same sequence; consumed (or discarded on rollback) by that
    /// commit.
    pub(crate) fn force_commit_seq(&mut self, seq: u64) {
        self.forced_seq = Some(seq);
    }

    /// Declare this machine shard `index` of `count` (invariant rules use
    /// this to recognize legitimately-foreign fork parents).
    pub(crate) fn set_shard_identity(&mut self, index: usize, count: usize) {
        self.shard = (index as u32, count as u32);
    }

    /// This machine's shard identity `(index, count)`; `(0, 1)` unsharded.
    pub(crate) fn shard_identity(&self) -> (u32, u32) {
        self.shard
    }

    /// The next context id this machine would allocate on its own.
    pub(crate) fn next_context_hint(&self) -> u64 {
        self.next_context
    }

    /// The next transaction id this machine would hand out — the sharded
    /// coordinator seeds its logical transaction counter above every
    /// shard's, so ids it returns never collide with persisted ones.
    pub(crate) fn next_txn_hint(&self) -> u64 {
        self.next_txn
    }

    /// Re-publish the current committed state; used after
    /// [`crate::shard::ShardedHam`] assembly rebinds shard identity and the
    /// commit-sequence source, both of which are stamped into views.
    pub(crate) fn republish(&mut self) {
        self.publish_view();
    }

    // =====================================================================
    // Introspection
    // =====================================================================

    /// The graph's project id.
    pub fn project_id(&self) -> ProjectId {
        self.project_id
    }

    /// The graph directory.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// Read-only access to a context's graph (for tools, browsers, tests).
    pub fn graph(&self, context: ContextId) -> Result<&HamGraph> {
        self.threads
            .get(&context)
            .map(|t| &t.graph)
            .ok_or(HamError::NoSuchContext(context))
    }

    // =====================================================================
    // Committed-snapshot publication (lock-free read path)
    // =====================================================================

    /// The live-state read core: every inherent read method funnels
    /// through this, sharing its implementation with [`CommittedView`].
    fn read_core(&self) -> ReadCore<'_> {
        ReadCore {
            threads: &self.threads,
            vcache: &self.vcache,
            generation: None,
        }
    }

    /// Invariant checkers (same crate) walk the raw threads.
    pub(crate) fn threads(&self) -> &HashMap<ContextId, GraphThread> {
        &self.threads
    }

    /// The publication handle lock-free readers load snapshots from.
    /// Servers clone this once and call [`Published::load`] per read.
    pub fn published_handle(&self) -> Arc<Published<CommittedView>> {
        Arc::clone(&self.published)
    }

    /// The currently published committed snapshot (what a lock-free reader
    /// loading right now would see).
    pub fn committed_view(&self) -> Arc<CommittedView> {
        self.published.load()
    }

    /// Build a snapshot of the current committed state and install it as
    /// the published view. Called after every durable commit, after
    /// rollback (to repin the cache generation), and at the end of
    /// recovery. O(changes): the graph's internal maps are persistent, so
    /// the clone is Arc bumps plus per-graph scalar state.
    fn publish_view(&mut self) {
        let start = std::time::Instant::now();
        self.view_epoch += 1;
        let view = CommittedView::new(
            self.view_epoch,
            self.last_seq,
            self.shard,
            &self.threads,
            Arc::clone(&self.vcache),
            self.directory.clone(),
        );
        self.published.publish(view);
        if neptune_obs::enabled() {
            let registry = neptune_obs::registry();
            registry
                .histogram("neptune_ham_snapshot_publish_ns")
                .observe_duration(start.elapsed());
            registry
                .gauge("neptune_ham_snapshot_epoch")
                .set(self.view_epoch.min(i64::MAX as u64) as i64);
        }
    }

    // =====================================================================
    // Version-materialization cache
    // =====================================================================

    fn lock_vcache(&self) -> MutexGuard<'_, MaterializationCache> {
        // The cache holds derived state only; recover from poison rather
        // than failing every future read after one panicked thread.
        self.vcache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Hit/miss counters and occupancy of the version-materialization cache.
    pub fn version_cache_stats(&self) -> CacheStats {
        self.lock_vcache().stats()
    }

    /// Enable or disable the version-materialization cache. Disabling also
    /// makes historical reads bypass the archive's temporal index (skip
    /// ladder and anchors), giving the true full-replay baseline; it drops
    /// all cached entries.
    pub fn set_version_cache_enabled(&self, enabled: bool) {
        self.lock_vcache().set_enabled(enabled);
    }

    /// Replace the cache bounds (entries, payload bytes), dropping current
    /// contents but keeping hit/miss counters at zero for the new instance.
    /// The generation advances past the old cache's so views pinned to the
    /// replaced instance can never alias entries of the new one.
    pub fn configure_version_cache(&self, max_entries: usize, max_bytes: u64) {
        let mut cache = self.lock_vcache();
        let old_gen = cache.generation();
        *cache = MaterializationCache::new(max_entries, max_bytes);
        cache.advance_generation_past(old_gen);
    }

    /// Where `context` was forked from: `(parent, parent clock at fork)`,
    /// or `None` for the main context. Integrity checkers use this to
    /// verify the context-partition topology.
    pub fn context_forked_from(&self, context: ContextId) -> Result<Option<(ContextId, Time)>> {
        self.threads
            .get(&context)
            .map(|t| t.forked_from)
            .ok_or(HamError::NoSuchContext(context))
    }

    // =====================================================================
    // Internals
    // =====================================================================

    fn thread(&self, context: ContextId) -> Result<&GraphThread> {
        self.threads
            .get(&context)
            .ok_or(HamError::NoSuchContext(context))
    }

    fn graph_mut(&mut self, context: ContextId) -> Result<&mut HamGraph> {
        self.threads
            .get_mut(&context)
            .map(|t| &mut t.graph)
            .ok_or(HamError::NoSuchContext(context))
    }

    fn note_context(&mut self, context: ContextId) -> Result<()> {
        let now = self.graph(context)?.now();
        if let Some(txn) = &mut self.txn {
            txn.note_context(context, now);
        }
        Ok(())
    }

    fn push_redo(&mut self, op: RedoOp) {
        if self.replaying {
            return;
        }
        if let Some(txn) = &mut self.txn {
            txn.redo.push(op);
        }
    }

    /// Run `f` inside the active transaction, or wrap it in a single-op
    /// transaction (begin/commit, abort on error) if none is active.
    fn auto_txn<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        if self.replaying || self.txn.is_some() {
            return f(self);
        }
        self.begin_transaction()?;
        match f(self) {
            Ok(v) => {
                self.commit_transaction()?;
                Ok(v)
            }
            Err(e) => {
                let _ = self.abort_transaction();
                Err(e)
            }
        }
    }

    /// Whether any demon is registered for `event` (graph-level, or on the
    /// specific node).
    fn demon_registered(&self, context: ContextId, event: Event, node: Option<NodeIndex>) -> bool {
        let Ok(graph) = self.graph(context) else {
            return false;
        };
        if graph.graph_demons.get(event, Time::CURRENT).is_some() {
            return true;
        }
        if let Some(node) = node {
            if let Ok(n) = graph.node(node) {
                return n.demons.get(event, Time::CURRENT).is_some();
            }
        }
        false
    }

    /// Fire graph-level and node-level demons for `event`.
    fn fire(
        &mut self,
        context: ContextId,
        event: Event,
        node: Option<NodeIndex>,
        link: Option<LinkIndex>,
    ) -> Result<()> {
        if self.in_demon || self.replaying {
            return Ok(());
        }
        let graph = self.graph(context)?;
        let mut demons: Vec<DemonSpec> = Vec::new();
        if let Some(d) = graph.graph_demons.get(event, Time::CURRENT) {
            demons.push(d.clone());
        }
        if let Some(node_id) = node {
            if let Ok(n) = graph.node(node_id) {
                if let Some(d) = n.demons.get(event, Time::CURRENT) {
                    demons.push(d.clone());
                }
            }
        }
        if demons.is_empty() {
            return Ok(());
        }
        if neptune_obs::enabled() {
            // Demon firings are rare enough that the per-event key lookup
            // is fine here.
            neptune_obs::registry()
                .counter(&neptune_obs::labeled(
                    "neptune_ham_demon_firings_total",
                    "event",
                    &event.to_string(),
                ))
                .add(demons.len() as u64);
        }
        let info = DemonFireInfo {
            event,
            time: graph.now(),
            node,
            link,
        };
        for demon in demons {
            match &demon.action {
                DemonAction::Notify(message) => {
                    self.journal.push(FireRecord {
                        demon: demon.name.clone(),
                        info: info.clone(),
                        message: Some(message.clone()),
                    });
                }
                DemonAction::MarkNode { attr, value } => {
                    if let Some(node_id) = node {
                        let attr_idx = {
                            self.in_demon = true;
                            let r = self.get_attribute_index(context, attr);
                            self.in_demon = false;
                            r?
                        };
                        self.in_demon = true;
                        let result = self.set_node_attribute_value(
                            context,
                            node_id,
                            attr_idx,
                            value.clone(),
                        );
                        self.in_demon = false;
                        result?;
                    }
                    self.journal.push(FireRecord {
                        demon: demon.name.clone(),
                        info: info.clone(),
                        message: None,
                    });
                }
                DemonAction::Call(callback) => match self.registry.get(callback).cloned() {
                    Some(cb) => {
                        self.in_demon = true;
                        cb(&info);
                        self.in_demon = false;
                        self.journal.push(FireRecord {
                            demon: demon.name.clone(),
                            info: info.clone(),
                            message: None,
                        });
                    }
                    None => {
                        self.journal.push(FireRecord {
                            demon: demon.name.clone(),
                            info: info.clone(),
                            message: Some(format!("no callback registered for '{callback}'")),
                        });
                    }
                },
            }
        }
        Ok(())
    }

    /// Apply a logged operation during recovery.
    fn apply_redo(&mut self, op: RedoOp) -> Result<()> {
        match op {
            RedoOp::AddNode {
                context,
                id,
                time,
                keep_history,
            } => {
                self.graph_mut(context)?
                    .add_node_forced(id, time, keep_history);
            }
            RedoOp::DeleteNode { context, id, time } => {
                let g = self.graph_mut(context)?;
                g.set_clock(Time(time.0 - 1));
                g.delete_node(id)?;
            }
            RedoOp::AddLink {
                context,
                id,
                from,
                to,
                time,
            } => {
                self.graph_mut(context)?.add_link_forced(id, from, to, time);
            }
            RedoOp::DeleteLink { context, id, time } => {
                let g = self.graph_mut(context)?;
                g.set_clock(Time(time.0 - 1));
                g.delete_link(id)?;
            }
            RedoOp::ModifyNode {
                context,
                id,
                contents,
                link_pts,
                time,
            } => {
                let g = self.graph_mut(context)?;
                g.set_clock(Time(time.0 - 1));
                apply_modify_node(g, id, None, contents, &link_pts)?;
            }
            RedoOp::SetNodeAttr {
                context,
                node,
                attr,
                value,
                time,
            } => {
                let g = self.graph_mut(context)?;
                // The name was interned by an earlier InternAttr record, so
                // this lookup does not advance the clock.
                let idx = g.attribute_index(&attr);
                g.set_clock(Time(time.0 - 1));
                g.set_node_attr(node, idx, value)?;
            }
            RedoOp::DeleteNodeAttr {
                context,
                node,
                attr,
                time,
            } => {
                let g = self.graph_mut(context)?;
                let idx = g.attribute_index(&attr);
                g.set_clock(Time(time.0 - 1));
                g.delete_node_attr(node, idx)?;
            }
            RedoOp::SetLinkAttr {
                context,
                link,
                attr,
                value,
                time,
            } => {
                let g = self.graph_mut(context)?;
                let idx = g.attribute_index(&attr);
                g.set_clock(Time(time.0 - 1));
                g.set_link_attr(link, idx, value)?;
            }
            RedoOp::DeleteLinkAttr {
                context,
                link,
                attr,
                time,
            } => {
                let g = self.graph_mut(context)?;
                let idx = g.attribute_index(&attr);
                g.set_clock(Time(time.0 - 1));
                g.delete_link_attr(link, idx)?;
            }
            RedoOp::InternAttr {
                context,
                name,
                time,
            } => {
                let g = self.graph_mut(context)?;
                g.set_clock(Time(time.0 - 1));
                g.attribute_index(&name);
            }
            RedoOp::SetGraphDemon {
                context,
                event,
                demon,
                time,
            } => {
                let g = self.graph_mut(context)?;
                g.set_clock(time);
                g.graph_demons.set(event, demon, time);
            }
            RedoOp::SetNodeDemon {
                context,
                node,
                event,
                demon,
                time,
            } => {
                let g = self.graph_mut(context)?;
                g.set_clock(time);
                g.node_mut(node)?.demons.set(event, demon, time);
                g.node_mut(node)?.record_minor(time, "demon set");
            }
            RedoOp::ChangeProtection {
                context,
                node,
                protections,
            } => {
                self.graph_mut(context)?.node_mut(node)?.protections = protections;
            }
            RedoOp::CreateContext { id, from, time } => {
                let parent = self.thread(from)?;
                let graph = parent.graph.clone();
                self.next_context = self.next_context.max(id.0 + 1);
                self.threads.insert(
                    id,
                    GraphThread {
                        graph,
                        forked_from: Some((from, time)),
                    },
                );
            }
            RedoOp::MergeContext {
                child,
                into,
                policy,
            } => {
                let (parent_id, fork_time) = self
                    .thread(child)?
                    .forked_from
                    .ok_or(HamError::NoSuchContext(child))?;
                debug_assert_eq!(parent_id, into);
                let child_graph = self.thread(child)?.graph.clone();
                let parent = self.graph_mut(into)?;
                merge_context(parent, &child_graph, fork_time, policy_from_tag(policy))?;
                let new_fork = self.graph(into)?.now();
                if let Some(thread) = self.threads.get_mut(&child) {
                    thread.forked_from = Some((into, new_fork));
                }
            }
            RedoOp::DestroyContext { id } => {
                self.threads.remove(&id);
            }
            RedoOp::AdoptContext {
                id,
                from,
                time,
                graph,
            } => {
                // The record carries the encoded parent graph, so replay
                // never consults the (foreign) parent shard.
                let mut r = Reader::new(&graph);
                let graph = HamGraph::decode(&mut r)?;
                self.next_context = self.next_context.max(id.0 + 1);
                self.threads.insert(
                    id,
                    GraphThread {
                        graph,
                        forked_from: Some((from, time)),
                    },
                );
            }
            RedoOp::MergeForeign {
                into,
                policy,
                fork_time,
                graph,
            } => {
                let mut r = Reader::new(&graph);
                let child_graph = HamGraph::decode(&mut r)?;
                let parent = self.graph_mut(into)?;
                merge_context(parent, &child_graph, fork_time, policy_from_tag(policy))?;
            }
            RedoOp::RefixFork { child, into, time } => {
                let thread = self
                    .threads
                    .get_mut(&child)
                    .ok_or(HamError::NoSuchContext(child))?;
                thread.forked_from = Some((into, time));
            }
        }
        Ok(())
    }

    fn write_meta(&self) -> Result<()> {
        let mut w = Writer::new();
        self.project_id.encode(&mut w);
        self.protections.encode(&mut w);
        w.put_u64(self.next_context);
        w.put_u64(self.next_txn);
        write_snapshot_with(
            self.vfs.as_ref(),
            self.directory.join(META_FILE),
            w.as_slice(),
        )?;
        Ok(())
    }
}

fn policy_tag(p: ConflictPolicy) -> u8 {
    match p {
        ConflictPolicy::Fail => 0,
        ConflictPolicy::PreferChild => 1,
        ConflictPolicy::PreferParent => 2,
    }
}

fn policy_from_tag(tag: u8) -> ConflictPolicy {
    match tag {
        1 => ConflictPolicy::PreferChild,
        2 => ConflictPolicy::PreferParent,
        _ => ConflictPolicy::Fail,
    }
}

fn read_meta(vfs: &dyn Vfs, directory: &Path) -> Result<(ProjectId, Protections, u64, u64)> {
    let bytes = read_snapshot_with(vfs, directory.join(META_FILE))?;
    let mut r = Reader::new(&bytes);
    let pid = ProjectId::decode(&mut r)?;
    let protections = decode_protections(&mut r)?;
    let next_context = r.get_u64()?;
    let next_txn = r.get_u64()?;
    Ok((pid, protections, next_context, next_txn))
}

/// State decoded from a snapshot: the WAL fold boundary, allocator
/// counters, and every context thread.
struct StoreState {
    /// Highest LSN folded into this snapshot; recovery skips WAL records
    /// at or below it (closes the snapshot-renamed-but-WAL-not-yet-
    /// truncated double-apply window).
    boundary_lsn: u64,
    next_context: u64,
    next_txn: u64,
    /// Commit sequence of the last transaction folded into this snapshot
    /// (v2 snapshots only; v1 decodes as 0).
    last_seq: u64,
    threads: HashMap<ContextId, GraphThread>,
}

/// v2 snapshots open with this sentinel where v1 stored `boundary_lsn`.
/// An LSN can never reach it (the WAL would overflow first), so the first
/// u64 unambiguously selects the format.
const STORE_STATE_SENTINEL: u64 = u64::MAX;
const STORE_STATE_VERSION: u8 = 2;

fn encode_store_state(
    boundary_lsn: u64,
    next_context: u64,
    next_txn: u64,
    last_seq: u64,
    threads: &HashMap<ContextId, GraphThread>,
) -> Vec<u8> {
    let mut ids: Vec<ContextId> = threads.keys().copied().collect();
    ids.sort_unstable();
    let mut w = Writer::new();
    w.put_u64(STORE_STATE_SENTINEL);
    w.put_u8(STORE_STATE_VERSION);
    w.put_u64(boundary_lsn);
    w.put_u64(next_context);
    w.put_u64(next_txn);
    w.put_u64(last_seq);
    w.put_u64(ids.len() as u64);
    for id in ids {
        let t = &threads[&id];
        id.encode(&mut w);
        t.forked_from.encode(&mut w);
        t.graph.encode(&mut w);
    }
    w.into_bytes()
}

fn decode_store_state(bytes: &[u8]) -> Result<StoreState> {
    let mut r = Reader::new(bytes);
    let first = r.get_u64()?;
    let (boundary_lsn, last_seq) = if first == STORE_STATE_SENTINEL {
        let version = r.get_u8()?;
        if version != STORE_STATE_VERSION {
            return Err(HamError::Storage(
                neptune_storage::StorageError::BadFileHeader {
                    context: "store snapshot: unknown version",
                },
            ));
        }
        let boundary_lsn = r.get_u64()?;
        // next_context / next_txn read below, shared with v1.
        (boundary_lsn, None)
    } else {
        // v1: the first u64 *was* boundary_lsn; no sequence persisted.
        (first, Some(0))
    };
    let next_context = r.get_u64()?;
    let next_txn = r.get_u64()?;
    let last_seq = match last_seq {
        Some(s) => s,
        None => r.get_u64()?,
    };
    let count = r.get_u64()? as usize;
    let mut threads = HashMap::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        let id = ContextId::decode(&mut r)?;
        let forked_from = Option::<(ContextId, Time)>::decode(&mut r)?;
        let graph = HamGraph::decode(&mut r)?;
        threads.insert(id, GraphThread { graph, forked_from });
    }
    Ok(StoreState {
        boundary_lsn,
        next_context,
        next_txn,
        last_seq,
        threads,
    })
}

/// Generate a fresh project id: unique per creation, stable thereafter
/// (persisted in the graph's meta file).
fn fresh_project_id(directory: &Path) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write(directory.as_os_str().as_encoded_bytes());
    let v = h.finish();
    if v == 0 {
        1
    } else {
        v
    }
}

/// Canonical attachment list for a node at a version: every live incident
/// endpoint visible on that version, ordered by (link index, from-end
/// first). Returns `(link, is_to_end, LinkPt)`.
pub(crate) fn canonical_attachments(
    graph: &HamGraph,
    node: NodeIndex,
    time: Time,
) -> Result<Vec<(LinkIndex, bool, LinkPt)>> {
    let n = graph.node(node)?;
    let version = n.resolve_content_time(time)?;
    let mut out = Vec::new();
    let mut link_ids = n.incident_links.clone();
    link_ids.sort_unstable();
    for link_id in link_ids {
        let link = graph.link(link_id)?;
        if !link.exists_at(time) {
            continue;
        }
        for (is_to, end) in [(false, &link.from), (true, &link.to)] {
            if end.node != node {
                continue;
            }
            if end.track_current {
                if let Some(pt) = end.linkpt_at(time) {
                    out.push((link_id, is_to, pt));
                }
            } else {
                // Pinned attachments belong to exactly one version.
                let pinned_version = n.resolve_content_time(end.pinned_time)?;
                if pinned_version == version {
                    if let Some(pt) = end.linkpt_at(time) {
                        out.push((link_id, is_to, pt));
                    }
                }
            }
        }
    }
    Ok(out)
}

pub(crate) fn endpoint_version(
    graph: &HamGraph,
    end: &crate::link::Endpoint,
    time1: Time,
) -> Result<(NodeIndex, Time)> {
    let node = graph.node(end.node)?;
    let version = if end.track_current {
        node.resolve_content_time(time1)?
    } else {
        node.resolve_content_time(end.pinned_time)?
    };
    Ok((end.node, version))
}

pub(crate) fn resolve_attr_names(
    graph: &HamGraph,
    pairs: Vec<(AttributeIndex, Value)>,
) -> Vec<(String, AttributeIndex, Value)> {
    pairs
        .into_iter()
        .filter_map(|(idx, value)| {
            graph
                .attr_table
                .name(idx)
                .map(|name| (name.to_string(), idx, value))
        })
        .collect()
}

/// Shared implementation of `modifyNode` for live execution (with the
/// optimistic `expected_time` check) and WAL replay (check skipped).
fn apply_modify_node(
    graph: &mut HamGraph,
    node: NodeIndex,
    expected_time: Option<Time>,
    contents: Arc<[u8]>,
    link_pts: &[LinkPt],
) -> Result<Time> {
    graph.live_node(node, Time::CURRENT)?;
    let current = graph.node(node)?.current_time();
    if let Some(expected) = expected_time {
        if expected != current {
            return Err(HamError::StaleVersion {
                node,
                given: expected,
                current,
            });
        }
    }
    let attachments = canonical_attachments(graph, node, Time::CURRENT)?;
    if attachments.len() != link_pts.len() {
        return Err(HamError::AttachmentMismatch {
            node,
            expected: attachments.len(),
            supplied: link_pts.len(),
        });
    }
    // Validate before mutating: supplied points must refer to this node and
    // may not move pinned attachments.
    for ((link_id, is_to, old_pt), new_pt) in attachments.iter().zip(link_pts) {
        if new_pt.node != node {
            return Err(HamError::BadEndpoint {
                node: new_pt.node,
                time: new_pt.time,
            });
        }
        if !old_pt.track_current && new_pt.position != old_pt.position {
            let _ = (link_id, is_to);
            return Err(HamError::AttachmentMismatch {
                node,
                expected: attachments.len(),
                supplied: link_pts.len(),
            });
        }
    }
    let now = graph.tick();
    graph.node_mut(node)?.modify(contents, now, "modifyNode")?;
    for ((link_id, is_to, old_pt), new_pt) in attachments.iter().zip(link_pts) {
        if old_pt.track_current && new_pt.position != old_pt.position {
            let link = graph.link_mut(*link_id)?;
            let end = if *is_to { &mut link.to } else { &mut link.from };
            end.move_to(new_pt.position, now);
            link.record_version(now, "attachment moved");
        }
    }
    Ok(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-ham-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh(name: &str) -> (Ham, ContextId) {
        let (ham, _, _) = Ham::create_graph(tmpdir(name), Protections::DEFAULT).unwrap();
        (ham, MAIN_CONTEXT)
    }

    #[test]
    fn create_open_destroy_graph() {
        let dir = tmpdir("lifecycle");
        let (ham, pid, created) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        assert_eq!(created, Time(1));
        drop(ham);
        let (ham, ctx) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
        assert_eq!(ctx, MAIN_CONTEXT);
        drop(ham);
        // Wrong pid is rejected.
        assert!(matches!(
            Ham::open_graph(ProjectId(pid.0.wrapping_add(1)), &Machine::local(), &dir),
            Err(HamError::ProjectMismatch { .. })
        ));
        Ham::destroy_graph(pid, &dir).unwrap();
        assert!(!dir.exists());
    }

    #[test]
    fn node_roundtrip_with_versions() {
        let (mut ham, ctx) = fresh("node-rt");
        let (n, t0) = ham.add_node(ctx, true).unwrap();
        let opened = ham.open_node(ctx, n, Time::CURRENT, &[]).unwrap();
        assert!(opened.contents.is_empty());
        assert_eq!(opened.current_time, t0);

        ham.modify_node(ctx, n, t0, b"first version\n".to_vec(), &[])
            .unwrap();
        let t1 = ham.get_node_time_stamp(ctx, n).unwrap();
        ham.modify_node(ctx, n, t1, b"second version\n".to_vec(), &[])
            .unwrap();

        assert_eq!(
            ham.open_node(ctx, n, Time::CURRENT, &[]).unwrap().contents[..],
            b"second version\n"[..]
        );
        assert_eq!(
            ham.open_node(ctx, n, t1, &[]).unwrap().contents[..],
            b"first version\n"[..]
        );

        // Stale modify is rejected.
        let err = ham.modify_node(ctx, n, t1, b"stale\n".to_vec(), &[]);
        assert!(matches!(err, Err(HamError::StaleVersion { .. })));

        let (major, _) = ham.get_node_versions(ctx, n).unwrap();
        assert_eq!(major.len(), 3);
        let diffs = ham.get_node_differences(ctx, n, t1, Time::CURRENT).unwrap();
        assert_eq!(diffs.len(), 1);
    }

    #[test]
    fn links_and_attachment_motion() {
        let (mut ham, ctx) = fresh("links");
        let (a, ta) = ham.add_node(ctx, true).unwrap();
        let (b, _) = ham.add_node(ctx, true).unwrap();
        ham.modify_node(ctx, a, ta, b"0123456789".to_vec(), &[])
            .unwrap();
        let (l, t_linked) = ham
            .add_link(ctx, LinkPt::current(a, 4), LinkPt::current(b, 0))
            .unwrap();

        // openNode reports the attachment.
        let opened = ham.open_node(ctx, a, Time::CURRENT, &[]).unwrap();
        assert_eq!(opened.link_pts.len(), 1);
        assert_eq!(opened.link_pts[0].position, 4);

        // modifyNode must account for it and can move it.
        let t = opened.current_time;
        let moved = LinkPt::current(a, 7);
        ham.modify_node(ctx, a, t, b"0123456789ABC".to_vec(), &[moved])
            .unwrap();
        let now_open = ham.open_node(ctx, a, Time::CURRENT, &[]).unwrap();
        assert_eq!(now_open.link_pts[0].position, 7);
        // At the time the link was added (before the move) the offset
        // history still shows the original attachment point.
        let old_open = ham.open_node(ctx, a, t_linked, &[]).unwrap();
        assert_eq!(old_open.link_pts[0].position, 4);
        // Before the link existed, the version had no attachments.
        let pre_link = ham.open_node(ctx, a, t, &[]).unwrap();
        assert!(pre_link.link_pts.is_empty());

        // Wrong arity is rejected.
        let err = ham.modify_node(ctx, a, now_open.current_time, b"x".to_vec(), &[]);
        assert!(matches!(err, Err(HamError::AttachmentMismatch { .. })));

        // getTo/FromNode.
        let (to, _) = ham.get_to_node(ctx, l, Time::CURRENT).unwrap();
        assert_eq!(to, b);
        let (from, _) = ham.get_from_node(ctx, l, Time::CURRENT).unwrap();
        assert_eq!(from, a);
    }

    #[test]
    fn copy_link_shares_one_end() {
        let (mut ham, ctx) = fresh("copylink");
        let (a, t) = ham.add_node(ctx, true).unwrap();
        ham.modify_node(ctx, a, t, b"source\n".to_vec(), &[])
            .unwrap();
        let (b, _) = ham.add_node(ctx, true).unwrap();
        let (c, t) = ham.add_node(ctx, true).unwrap();
        ham.modify_node(ctx, c, t, b"third\n".to_vec(), &[])
            .unwrap();
        let (l, _) = ham
            .add_link(ctx, LinkPt::current(a, 3), LinkPt::current(b, 0))
            .unwrap();
        // Keep the source, point to c.
        let (l2, _) = ham
            .copy_link(ctx, l, Time::CURRENT, true, LinkPt::current(c, 0))
            .unwrap();
        let (from, _) = ham.get_from_node(ctx, l2, Time::CURRENT).unwrap();
        let (to, _) = ham.get_to_node(ctx, l2, Time::CURRENT).unwrap();
        assert_eq!((from, to), (a, c));
        // Keep the destination, source from c.
        let (l3, _) = ham
            .copy_link(ctx, l, Time::CURRENT, false, LinkPt::current(c, 1))
            .unwrap();
        let (from, _) = ham.get_from_node(ctx, l3, Time::CURRENT).unwrap();
        let (to, _) = ham.get_to_node(ctx, l3, Time::CURRENT).unwrap();
        assert_eq!((from, to), (c, b));
    }

    #[test]
    fn attributes_via_facade() {
        let (mut ham, ctx) = fresh("attrs");
        let (n, _) = ham.add_node(ctx, true).unwrap();
        let doc = ham.get_attribute_index(ctx, "document").unwrap();
        assert_eq!(ham.get_attribute_index(ctx, "document").unwrap(), doc);
        ham.set_node_attribute_value(ctx, n, doc, Value::str("requirements"))
            .unwrap();
        assert_eq!(
            ham.get_node_attribute_value(ctx, n, doc, Time::CURRENT)
                .unwrap(),
            Value::str("requirements")
        );
        let all = ham.get_node_attributes(ctx, n, Time::CURRENT).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "document");
        let vals = ham.get_attribute_values(ctx, doc, Time::CURRENT).unwrap();
        assert_eq!(vals, vec![Value::str("requirements")]);
        ham.delete_node_attribute(ctx, n, doc).unwrap();
        assert!(ham
            .get_node_attribute_value(ctx, n, doc, Time::CURRENT)
            .is_err());
        let names = ham.get_attributes(ctx, Time::CURRENT).unwrap();
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn explicit_transaction_commit_and_abort() {
        let (mut ham, ctx) = fresh("txn");
        let (keep, tk) = ham.add_node(ctx, true).unwrap();
        ham.modify_node(ctx, keep, tk, b"kept\n".to_vec(), &[])
            .unwrap();

        // Abort: everything inside vanishes.
        ham.begin_transaction().unwrap();
        let (doomed, _) = ham.add_node(ctx, true).unwrap();
        let t = ham.get_node_time_stamp(ctx, keep).unwrap();
        ham.modify_node(ctx, keep, t, b"should vanish\n".to_vec(), &[])
            .unwrap();
        ham.abort_transaction().unwrap();
        assert!(ham.open_node(ctx, doomed, Time::CURRENT, &[]).is_err());
        assert_eq!(
            ham.open_node(ctx, keep, Time::CURRENT, &[])
                .unwrap()
                .contents[..],
            b"kept\n"[..]
        );

        // Commit: annotate-style bundle survives.
        ham.begin_transaction().unwrap();
        let (note, tn) = ham.add_node(ctx, true).unwrap();
        ham.modify_node(ctx, note, tn, b"an annotation\n".to_vec(), &[])
            .unwrap();
        let (l, _) = ham
            .add_link(ctx, LinkPt::current(keep, 2), LinkPt::current(note, 0))
            .unwrap();
        let rel = ham.get_attribute_index(ctx, "relation").unwrap();
        ham.set_link_attribute_value(ctx, l, rel, Value::str("annotates"))
            .unwrap();
        ham.commit_transaction().unwrap();
        assert_eq!(
            ham.get_link_attribute_value(ctx, l, rel, Time::CURRENT)
                .unwrap(),
            Value::str("annotates")
        );
    }

    #[test]
    fn crash_recovery_replays_committed_transactions() {
        let dir = tmpdir("recovery");
        let pid;
        let node;
        {
            let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
            pid = p;
            let (n, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
            node = n;
            ham.modify_node(MAIN_CONTEXT, n, t0, b"durable contents\n".to_vec(), &[])
                .unwrap();
            let doc = ham.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
            ham.set_node_attribute_value(MAIN_CONTEXT, n, doc, Value::str("spec"))
                .unwrap();
            // Drop without checkpoint: simulates a crash after commits.
        }
        let (mut ham, ctx) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
        let opened = ham.open_node(ctx, node, Time::CURRENT, &[]).unwrap();
        assert_eq!(&opened.contents[..], b"durable contents\n");
        let doc = ham.get_attribute_index(ctx, "document").unwrap();
        assert_eq!(
            ham.get_node_attribute_value(ctx, node, doc, Time::CURRENT)
                .unwrap(),
            Value::str("spec")
        );
        // History survives recovery too.
        let (major, _) = ham.get_node_versions(ctx, node).unwrap();
        assert_eq!(major.len(), 2);
    }

    #[test]
    fn recovery_after_checkpoint_and_more_commits() {
        let dir = tmpdir("recovery2");
        let pid;
        let node;
        {
            let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
            pid = p;
            let (n, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
            node = n;
            ham.modify_node(MAIN_CONTEXT, n, t0, b"before checkpoint\n".to_vec(), &[])
                .unwrap();
            ham.checkpoint().unwrap();
            let t = ham.get_node_time_stamp(MAIN_CONTEXT, n).unwrap();
            ham.modify_node(MAIN_CONTEXT, n, t, b"after checkpoint\n".to_vec(), &[])
                .unwrap();
        }
        let (mut ham, ctx) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
        assert_eq!(
            ham.open_node(ctx, node, Time::CURRENT, &[])
                .unwrap()
                .contents[..],
            b"after checkpoint\n"[..]
        );
        // And the pre-checkpoint version is still reachable.
        let (major, _) = ham.get_node_versions(ctx, node).unwrap();
        assert_eq!(major.len(), 3);
    }

    #[test]
    fn demons_fire_with_parameters() {
        let (mut ham, ctx) = fresh("demons");
        let (n, _) = ham.add_node(ctx, true).unwrap();
        ham.set_graph_demon_value(
            ctx,
            Event::NodeModified,
            Some(DemonSpec::notify("watcher", "node changed")),
        )
        .unwrap();
        ham.set_node_demon(
            ctx,
            n,
            Event::NodeModified,
            Some(DemonSpec::mark_node("dirtier", "dirty", true)),
        )
        .unwrap();
        let t = ham.get_node_time_stamp(ctx, n).unwrap();
        ham.modify_node(ctx, n, t, b"edited\n".to_vec(), &[])
            .unwrap();

        let journal = ham.demon_journal();
        assert_eq!(journal.len(), 2);
        assert_eq!(journal[0].demon, "watcher");
        assert_eq!(journal[0].info.event, Event::NodeModified);
        assert_eq!(journal[0].info.node, Some(n));
        assert!(journal[0].info.time > Time(0));
        // The MarkNode demon actually set the attribute.
        let dirty = ham.get_attribute_index(ctx, "dirty").unwrap();
        assert_eq!(
            ham.get_node_attribute_value(ctx, n, dirty, Time::CURRENT)
                .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn callback_demons_dispatch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let (mut ham, ctx) = fresh("callbacks");
        let count = Arc::new(AtomicU64::new(0));
        let count2 = count.clone();
        ham.register_demon_callback("counter", move |info| {
            assert_eq!(info.event, Event::NodeAdded);
            count2.fetch_add(1, Ordering::SeqCst);
        });
        ham.set_graph_demon_value(
            ctx,
            Event::NodeAdded,
            Some(DemonSpec::call("adder", "counter")),
        )
        .unwrap();
        ham.add_node(ctx, true).unwrap();
        ham.add_node(ctx, true).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
        // Unregistered callback: journaled, not fatal.
        ham.set_graph_demon_value(
            ctx,
            Event::NodeAdded,
            Some(DemonSpec::call("ghost", "missing")),
        )
        .unwrap();
        ham.add_node(ctx, true).unwrap();
        assert!(ham
            .demon_journal()
            .last()
            .unwrap()
            .message
            .as_deref()
            .unwrap()
            .contains("missing"));
    }

    #[test]
    fn demon_versions_are_queryable() {
        let (mut ham, ctx) = fresh("demonver");
        ham.set_graph_demon_value(ctx, Event::NodeAdded, Some(DemonSpec::notify("v1", "a")))
            .unwrap();
        let t1 = ham.graph(ctx).unwrap().now();
        ham.set_graph_demon_value(ctx, Event::NodeAdded, Some(DemonSpec::notify("v2", "b")))
            .unwrap();
        ham.set_graph_demon_value(ctx, Event::NodeAdded, None)
            .unwrap();
        assert_eq!(ham.get_graph_demons(ctx, t1).unwrap()[0].1.name, "v1");
        assert!(ham.get_graph_demons(ctx, Time::CURRENT).unwrap().is_empty());
    }

    #[test]
    fn contexts_fork_and_merge() {
        let (mut ham, main) = fresh("contexts");
        let (n, t0) = ham.add_node(main, true).unwrap();
        ham.modify_node(main, n, t0, b"main line\n".to_vec(), &[])
            .unwrap();

        let private = ham.create_context(main).unwrap();
        let t = ham.get_node_time_stamp(private, n).unwrap();
        ham.modify_node(private, n, t, b"tentative design\n".to_vec(), &[])
            .unwrap();
        let (extra, te) = ham.add_node(private, true).unwrap();
        ham.modify_node(private, extra, te, b"extra node\n".to_vec(), &[])
            .unwrap();

        // Main is untouched until the merge.
        assert_eq!(
            ham.open_node(main, n, Time::CURRENT, &[]).unwrap().contents[..],
            b"main line\n"[..]
        );
        let report = ham.merge_context(private, ConflictPolicy::Fail).unwrap();
        assert_eq!(report.nodes_modified, vec![n]);
        assert_eq!(report.nodes_added.len(), 1);
        assert_eq!(
            ham.open_node(main, n, Time::CURRENT, &[]).unwrap().contents[..],
            b"tentative design\n"[..]
        );

        ham.destroy_context(private).unwrap();
        assert_eq!(ham.contexts(), vec![main]);
        assert!(ham.merge_context(private, ConflictPolicy::Fail).is_err());
    }

    #[test]
    fn contexts_survive_recovery() {
        let dir = tmpdir("ctx-recovery");
        let pid;
        let private;
        let node;
        {
            let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
            pid = p;
            let (n, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
            node = n;
            ham.modify_node(MAIN_CONTEXT, n, t0, b"base\n".to_vec(), &[])
                .unwrap();
            private = ham.create_context(MAIN_CONTEXT).unwrap();
            let t = ham.get_node_time_stamp(private, n).unwrap();
            ham.modify_node(private, n, t, b"private edit\n".to_vec(), &[])
                .unwrap();
        }
        let (mut ham, main) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
        assert_eq!(ham.contexts(), vec![main, private]);
        assert_eq!(
            ham.open_node(private, node, Time::CURRENT, &[])
                .unwrap()
                .contents[..],
            b"private edit\n"[..]
        );
        assert_eq!(
            ham.open_node(main, node, Time::CURRENT, &[])
                .unwrap()
                .contents[..],
            b"base\n"[..]
        );
        // The recovered fork metadata still supports merging.
        ham.merge_context(private, ConflictPolicy::Fail).unwrap();
        assert_eq!(
            ham.open_node(main, node, Time::CURRENT, &[])
                .unwrap()
                .contents[..],
            b"private edit\n"[..]
        );
    }

    #[test]
    fn abort_rolls_back_context_operations() {
        let (mut ham, main) = fresh("ctx-abort");
        ham.begin_transaction().unwrap();
        let private = ham.create_context(main).unwrap();
        ham.add_node(private, true).unwrap();
        ham.abort_transaction().unwrap();
        assert_eq!(ham.contexts(), vec![main]);

        // Destroy inside an aborted txn is undone.
        let keep = ham.create_context(main).unwrap();
        ham.begin_transaction().unwrap();
        ham.destroy_context(keep).unwrap();
        ham.abort_transaction().unwrap();
        assert!(ham.contexts().contains(&keep));
    }

    #[test]
    fn queries_via_facade() {
        let (mut ham, ctx) = fresh("queries");
        let doc = ham.get_attribute_index(ctx, "document").unwrap();
        let (root, _) = ham.add_node(ctx, true).unwrap();
        let (child, _) = ham.add_node(ctx, true).unwrap();
        ham.set_node_attribute_value(ctx, root, doc, Value::str("spec"))
            .unwrap();
        ham.set_node_attribute_value(ctx, child, doc, Value::str("spec"))
            .unwrap();
        ham.add_link(ctx, LinkPt::current(root, 0), LinkPt::current(child, 0))
            .unwrap();

        let pred = Predicate::parse("document = spec").unwrap();
        let q = ham
            .get_graph_query(ctx, Time::CURRENT, &pred, &Predicate::True, &[doc], &[])
            .unwrap();
        assert_eq!(q.nodes.len(), 2);
        assert_eq!(q.links.len(), 1);
        assert_eq!(q.nodes[0].1[0], Some(Value::str("spec")));

        let lin = ham
            .linearize_graph(
                ctx,
                root,
                Time::CURRENT,
                &Predicate::True,
                &Predicate::True,
                &[],
                &[],
            )
            .unwrap();
        assert_eq!(lin.node_ids(), vec![root, child]);
    }

    #[test]
    fn protections_apply_at_checkpoint() {
        let (mut ham, ctx) = fresh("protections");
        let (n, t0) = ham.add_node(ctx, true).unwrap();
        ham.modify_node(ctx, n, t0, b"guarded\n".to_vec(), &[])
            .unwrap();
        ham.change_node_protection(ctx, n, Protections::READ_ONLY)
            .unwrap();
        ham.checkpoint().unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let blob = ham
                .directory()
                .join(NODES_DIR)
                .join(format!("{:016x}.blob", n.0));
            let mode = std::fs::metadata(blob).unwrap().permissions().mode() & 0o777;
            assert_eq!(mode, 0o444);
        }
        assert_eq!(
            ham.graph(ctx).unwrap().node(n).unwrap().protections,
            Protections::READ_ONLY
        );
    }

    #[test]
    fn read_only_ops_write_nothing_to_wal() {
        let (mut ham, ctx) = fresh("readonly");
        let (n, _) = ham.add_node(ctx, true).unwrap();
        let wal_len_before = std::fs::metadata(ham.directory().join(WAL_FILE))
            .unwrap()
            .len();
        for _ in 0..10 {
            ham.open_node(ctx, n, Time::CURRENT, &[]).unwrap();
            ham.get_node_time_stamp(ctx, n).unwrap();
        }
        let wal_len_after = std::fs::metadata(ham.directory().join(WAL_FILE))
            .unwrap()
            .len();
        assert_eq!(wal_len_before, wal_len_after);
    }
}
