//! The hypergraph: the complete versioned state of one Neptune database.
//!
//! A [`HamGraph`] owns the nodes, links, attribute vocabulary, graph-level
//! demons, the logical version clock, and the derived value index. It is a
//! purely in-memory, single-writer structure; the [`crate::ham::Ham`]
//! facade layers transactions, durability, demon firing, and the appendix
//! operation signatures on top.

use neptune_storage::codec::{decode_seq, encode_seq, Decode, Encode, Reader, Writer};
use neptune_storage::error::Result as StorageResult;

use crate::attributes::{AttrMap, AttributeTable, ObjKind, ValueIndex};
use crate::demons::DemonTable;
use crate::error::{HamError, Result};
use crate::history::{TemporalIndex, Versioned};
use crate::link::Link;
use crate::node::Node;
use crate::pmap::Pam;
use crate::types::{AttributeIndex, LinkIndex, LinkPt, NodeIndex, ProjectId, Time, Version};
use crate::value::Value;

/// The complete versioned state of a hyperdata graph.
#[derive(Debug, Clone)]
pub struct HamGraph {
    /// Unique identification of this graph.
    pub project_id: ProjectId,
    /// Creation time (always `Time(1)`).
    pub created: Time,
    clock: u64,
    next_node: u64,
    next_link: u64,
    /// All nodes ever created, keyed by `NodeIndex.0`. Persistent/COW so
    /// graph clones (snapshot publication, context forks, transaction
    /// save-state) are O(1) and mutation copies only the touched path.
    nodes: Pam<Node>,
    /// All links ever created, keyed by `LinkIndex.0`; persistent like
    /// `nodes`.
    links: Pam<Link>,
    /// Graph-wide attribute name registry.
    pub attr_table: AttributeTable,
    /// Graph-level demons.
    pub graph_demons: DemonTable,
    graph_versions: Vec<Version>,
    value_index: ValueIndex,
    temporal_index: TemporalIndex,
}

impl PartialEq for HamGraph {
    fn eq(&self, other: &Self) -> bool {
        // The value and temporal indexes are derived state; compare
        // canonical state only.
        self.project_id == other.project_id
            && self.created == other.created
            && self.clock == other.clock
            && self.next_node == other.next_node
            && self.next_link == other.next_link
            && self.nodes == other.nodes
            && self.links == other.links
            && self.attr_table == other.attr_table
            && self.graph_demons == other.graph_demons
            && self.graph_versions == other.graph_versions
    }
}

impl HamGraph {
    /// Create an empty graph. The creation consumes logical time 1.
    pub fn new(project_id: ProjectId) -> HamGraph {
        HamGraph {
            project_id,
            created: Time(1),
            clock: 1,
            next_node: 1,
            next_link: 1,
            nodes: Pam::new(),
            links: Pam::new(),
            attr_table: AttributeTable::new(),
            graph_demons: DemonTable::new(),
            graph_versions: vec![Version::new(Time(1), "graph created")],
            value_index: ValueIndex::new(),
            temporal_index: TemporalIndex::new(),
        }
    }

    // ----- clock -----

    /// Advance the logical version clock and return the new time.
    pub fn tick(&mut self) -> Time {
        self.clock += 1;
        Time(self.clock)
    }

    /// The newest issued time.
    pub fn now(&self) -> Time {
        Time(self.clock)
    }

    /// Force the clock to `time` (used by deterministic WAL replay).
    pub fn set_clock(&mut self, time: Time) {
        debug_assert!(time.0 >= self.clock, "clock may only move forward");
        self.clock = time.0;
    }

    // ----- object access -----

    /// The node with index `id`, regardless of liveness.
    pub fn node(&self, id: NodeIndex) -> Result<&Node> {
        self.nodes.get(id.0).ok_or(HamError::NoSuchNode(id))
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeIndex) -> Result<&mut Node> {
        self.nodes.get_mut(id.0).ok_or(HamError::NoSuchNode(id))
    }

    /// The node, checked to exist (not deleted) at `time`.
    pub fn live_node(&self, id: NodeIndex, time: Time) -> Result<&Node> {
        let n = self.node(id)?;
        if n.exists_at(time) {
            Ok(n)
        } else {
            Err(HamError::NoSuchNode(id))
        }
    }

    /// The link with index `id`, regardless of liveness.
    pub fn link(&self, id: LinkIndex) -> Result<&Link> {
        self.links.get(id.0).ok_or(HamError::NoSuchLink(id))
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, id: LinkIndex) -> Result<&mut Link> {
        self.links.get_mut(id.0).ok_or(HamError::NoSuchLink(id))
    }

    /// The link, checked to exist (not deleted) at `time`.
    pub fn live_link(&self, id: LinkIndex, time: Time) -> Result<&Link> {
        let l = self.link(id)?;
        if l.exists_at(time) {
            Ok(l)
        } else {
            Err(HamError::NoSuchLink(id))
        }
    }

    /// Iterate all nodes ever created, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        let mut v: Vec<&Node> = self.nodes.values().collect();
        v.sort_by_key(|n| n.id);
        v.into_iter()
    }

    /// Iterate all links ever created, in index order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        let mut v: Vec<&Link> = self.links.values().collect();
        v.sort_by_key(|l| l.id);
        v.into_iter()
    }

    /// Number of nodes alive at the current time.
    pub fn live_node_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| n.exists_at(Time::CURRENT))
            .count()
    }

    /// Number of links alive at the current time.
    pub fn live_link_count(&self) -> usize {
        self.links
            .values()
            .filter(|l| l.exists_at(Time::CURRENT))
            .count()
    }

    // ----- structural mutation -----

    /// Create a node; `keep_history` selects archive vs file storage.
    pub fn add_node(&mut self, keep_history: bool) -> (NodeIndex, Time) {
        let now = self.tick();
        let id = NodeIndex(self.next_node);
        self.next_node += 1;
        self.nodes.insert(id.0, Node::new(id, now, keep_history));
        self.temporal_index.record_node(now, id.0);
        (id, now)
    }

    /// Create a node with a forced id and time (WAL replay).
    pub fn add_node_forced(&mut self, id: NodeIndex, now: Time, keep_history: bool) {
        self.set_clock(now);
        self.next_node = self.next_node.max(id.0 + 1);
        self.nodes.insert(id.0, Node::new(id, now, keep_history));
        self.temporal_index.record_node(now, id.0);
    }

    /// Delete a node: records its death and that of every incident link
    /// (paper: "All links into or out of the node are deleted").
    pub fn delete_node(&mut self, id: NodeIndex) -> Result<Time> {
        if !self.node(id)?.exists_at(Time::CURRENT) {
            return Err(HamError::NoSuchNode(id));
        }
        let now = self.tick();
        let incident = self.node(id)?.incident_links.clone();
        for link_id in incident {
            let remove_pairs = {
                let link = self.links.get_mut(link_id.0).expect("incident link exists");
                if link.exists_at(Time::CURRENT) {
                    link.alive.delete(now);
                    link.attrs.all_at(Time::CURRENT)
                } else {
                    Vec::new()
                }
            };
            for (attr, value) in remove_pairs {
                self.value_index
                    .remove((ObjKind::Link, link_id.0), attr, &value);
            }
        }
        let remove_pairs = {
            let node = self.nodes.get_mut(id.0).expect("checked above");
            node.alive.delete(now);
            node.attrs.all_at(Time::CURRENT)
        };
        for (attr, value) in remove_pairs {
            self.value_index.remove((ObjKind::Node, id.0), attr, &value);
        }
        Ok(now)
    }

    /// Create a link between two `LinkPt`s.
    ///
    /// Validates the paper's precondition: "The from and to nodes must
    /// exist at their respective times."
    pub fn add_link(&mut self, from: LinkPt, to: LinkPt) -> Result<(LinkIndex, Time)> {
        self.validate_endpoint(&from)?;
        self.validate_endpoint(&to)?;
        let now = self.tick();
        let id = LinkIndex(self.next_link);
        self.next_link += 1;
        self.insert_link(Link::new(id, from, to, now), now);
        Ok((id, now))
    }

    /// Create a link with forced id and time (WAL replay).
    pub fn add_link_forced(&mut self, id: LinkIndex, from: LinkPt, to: LinkPt, now: Time) {
        self.set_clock(now);
        self.next_link = self.next_link.max(id.0 + 1);
        self.insert_link(Link::new(id, from, to, now), now);
    }

    fn insert_link(&mut self, link: Link, now: Time) {
        let id = link.id;
        let from_node = link.from.node;
        let to_node = link.to.node;
        self.links.insert(id.0, link);
        self.temporal_index.record_link(now, id.0);
        if let Some(n) = self.nodes.get_mut(from_node.0) {
            n.attach_link(id);
            n.record_minor(now, "link added");
        }
        if to_node != from_node {
            if let Some(n) = self.nodes.get_mut(to_node.0) {
                n.attach_link(id);
                n.record_minor(now, "link added");
            }
        }
    }

    fn validate_endpoint(&self, pt: &LinkPt) -> Result<()> {
        let node = self.node(pt.node).map_err(|_| HamError::BadEndpoint {
            node: pt.node,
            time: pt.time,
        })?;
        let check_time = if pt.track_current {
            Time::CURRENT
        } else {
            pt.time
        };
        if !node.exists_at(check_time) || node.resolve_content_time(check_time).is_err() {
            return Err(HamError::BadEndpoint {
                node: pt.node,
                time: pt.time,
            });
        }
        Ok(())
    }

    /// Delete a link (records its death; history is preserved).
    pub fn delete_link(&mut self, id: LinkIndex) -> Result<Time> {
        if !self.link(id)?.exists_at(Time::CURRENT) {
            return Err(HamError::NoSuchLink(id));
        }
        let now = self.tick();
        let remove_pairs = {
            let link = self.links.get_mut(id.0).expect("checked above");
            link.alive.delete(now);
            link.attrs.all_at(Time::CURRENT)
        };
        for (attr, value) in remove_pairs {
            self.value_index.remove((ObjKind::Link, id.0), attr, &value);
        }
        let (from_node, to_node) = {
            let link = self.link(id)?;
            (link.from.node, link.to.node)
        };
        if let Some(n) = self.nodes.get_mut(from_node.0) {
            n.record_minor(now, "link deleted");
        }
        if to_node != from_node {
            if let Some(n) = self.nodes.get_mut(to_node.0) {
                n.record_minor(now, "link deleted");
            }
        }
        Ok(now)
    }

    // ----- attributes -----

    /// Intern an attribute name — `getAttributeIndex`.
    pub fn attribute_index(&mut self, name: &str) -> AttributeIndex {
        if let Some(idx) = self.attr_table.lookup(name) {
            return idx;
        }
        let now = self.tick();
        self.attr_table.intern(name, now)
    }

    /// Set a node attribute, maintaining the value index and minor history.
    pub fn set_node_attr(
        &mut self,
        id: NodeIndex,
        attr: AttributeIndex,
        value: Value,
    ) -> Result<Time> {
        self.attr_name(attr)?; // validate the index exists
        if !self.node(id)?.exists_at(Time::CURRENT) {
            return Err(HamError::NoSuchNode(id));
        }
        let now = self.tick();
        let node = self.nodes.get_mut(id.0).expect("checked above");
        let old = node.attrs.get(attr, Time::CURRENT).cloned();
        node.attrs.set(attr, value.clone(), now);
        node.record_minor(now, "attribute set");
        self.value_index
            .update((ObjKind::Node, id.0), attr, old.as_ref(), &value);
        Ok(now)
    }

    /// Delete a node attribute.
    pub fn delete_node_attr(&mut self, id: NodeIndex, attr: AttributeIndex) -> Result<Time> {
        self.attr_name(attr)?;
        if !self.node(id)?.exists_at(Time::CURRENT) {
            return Err(HamError::NoSuchNode(id));
        }
        let now = self.tick();
        let node = self.nodes.get_mut(id.0).expect("checked above");
        let old = node.attrs.get(attr, Time::CURRENT).cloned();
        match old {
            Some(old_value) => {
                node.attrs.delete(attr, now);
                node.record_minor(now, "attribute deleted");
                self.value_index
                    .remove((ObjKind::Node, id.0), attr, &old_value);
                Ok(now)
            }
            None => Err(HamError::AttributeNotSet {
                attribute: attr,
                time: Time::CURRENT,
            }),
        }
    }

    /// Set a link attribute.
    pub fn set_link_attr(
        &mut self,
        id: LinkIndex,
        attr: AttributeIndex,
        value: Value,
    ) -> Result<Time> {
        self.attr_name(attr)?;
        if !self.link(id)?.exists_at(Time::CURRENT) {
            return Err(HamError::NoSuchLink(id));
        }
        let now = self.tick();
        let link = self.links.get_mut(id.0).expect("checked above");
        let old = link.attrs.get(attr, Time::CURRENT).cloned();
        link.attrs.set(attr, value.clone(), now);
        link.record_version(now, "attribute set");
        self.value_index
            .update((ObjKind::Link, id.0), attr, old.as_ref(), &value);
        Ok(now)
    }

    /// Delete a link attribute.
    pub fn delete_link_attr(&mut self, id: LinkIndex, attr: AttributeIndex) -> Result<Time> {
        self.attr_name(attr)?;
        if !self.link(id)?.exists_at(Time::CURRENT) {
            return Err(HamError::NoSuchLink(id));
        }
        let now = self.tick();
        let link = self.links.get_mut(id.0).expect("checked above");
        let old = link.attrs.get(attr, Time::CURRENT).cloned();
        match old {
            Some(old_value) => {
                link.attrs.delete(attr, now);
                link.record_version(now, "attribute deleted");
                self.value_index
                    .remove((ObjKind::Link, id.0), attr, &old_value);
                Ok(now)
            }
            None => Err(HamError::AttributeNotSet {
                attribute: attr,
                time: Time::CURRENT,
            }),
        }
    }

    /// Resolve an attribute index to its name.
    pub fn attr_name(&self, attr: AttributeIndex) -> Result<&str> {
        self.attr_table
            .name(attr)
            .ok_or(HamError::NoSuchAttribute(attr))
    }

    /// All values of `attr` across all live nodes and links at `time` —
    /// `getAttributeValues`. Uses the value index at the current time and
    /// scans for historical times.
    pub fn attribute_values(&self, attr: AttributeIndex, time: Time) -> Result<Vec<Value>> {
        self.attr_name(attr)?;
        if time.is_current() {
            return Ok(self.value_index.current_values(attr));
        }
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        // Historical scan, pruned by the temporal index: objects created
        // after `time` cannot carry a value at `time`.
        let node_vals = self
            .nodes_created_by(time)
            .into_iter()
            .filter_map(|id| self.nodes.get(id.0))
            .filter(|n| n.exists_at(time))
            .filter_map(|n| n.attrs.get(attr, time));
        let link_vals = self
            .links_created_by(time)
            .into_iter()
            .filter_map(|id| self.links.get(id.0))
            .filter(|l| l.exists_at(time))
            .filter_map(|l| l.attrs.get(attr, time));
        for v in node_vals.chain(link_vals) {
            let key = crate::value::value_index_key(v);
            if seen.insert(key) {
                out.push(v.clone());
            }
        }
        out.sort_by(crate::value::value_index_key_cmp);
        Ok(out)
    }

    /// The value-index accelerator (query planner hook).
    pub fn value_index(&self) -> &ValueIndex {
        &self.value_index
    }

    /// Evaluate `lookup(name)` for predicate evaluation on a node at `time`.
    pub fn node_attr_lookup<'a>(
        &'a self,
        attrs: &'a AttrMap,
        time: Time,
    ) -> impl Fn(&str) -> Option<Value> + 'a {
        move |name: &str| {
            let idx = self.attr_table.lookup(name)?;
            attrs.get(idx, time).cloned()
        }
    }

    // ----- graph versions & rollback -----

    /// Record a graph-level version entry.
    pub fn record_graph_version(&mut self, time: Time, explanation: &str) {
        self.graph_versions.push(Version::new(time, explanation));
    }

    /// The graph's version history.
    pub fn graph_versions(&self) -> &[Version] {
        &self.graph_versions
    }

    /// Roll back the entire graph to logical time `time`, discarding all
    /// newer state. This is the abort primitive: transactions remember
    /// their start time and truncate on rollback.
    pub fn truncate_after(&mut self, time: Time) {
        self.nodes.retain(|_, n| n.truncate_after(time));
        self.links.retain(|_, l| l.truncate_after(time));
        // Remove dangling incidence entries for links dropped above.
        let live_links: std::collections::HashSet<LinkIndex> =
            self.links.keys().map(LinkIndex).collect();
        self.nodes.for_each_mut(|_, n| {
            n.incident_links.retain(|l| live_links.contains(l));
        });
        self.attr_table.truncate_after(time);
        self.graph_demons.truncate_after(time);
        self.graph_versions.retain(|v| v.time <= time);
        self.clock = time.0;
        self.next_node = self.nodes.keys().map(|n| n + 1).max().unwrap_or(1);
        self.next_link = self.links.keys().map(|l| l + 1).max().unwrap_or(1);
        self.temporal_index.truncate_after(time);
        self.rebuild_value_index();
    }

    /// Rebuild the derived value index from canonical state.
    pub fn rebuild_value_index(&mut self) {
        let mut index = ValueIndex::new();
        for n in self.nodes.values() {
            if n.exists_at(Time::CURRENT) {
                for (attr, value) in n.attrs.all_at(Time::CURRENT) {
                    index.update((ObjKind::Node, n.id.0), attr, None, &value);
                }
            }
        }
        for l in self.links.values() {
            if l.exists_at(Time::CURRENT) {
                for (attr, value) in l.attrs.all_at(Time::CURRENT) {
                    index.update((ObjKind::Link, l.id.0), attr, None, &value);
                }
            }
        }
        self.value_index = index;
    }

    /// Rebuild the derived temporal index from canonical creation times.
    pub fn rebuild_temporal_index(&mut self) {
        let nodes = self.nodes.values().map(|n| (n.created, n.id.0)).collect();
        let links = self.links.values().map(|l| (l.created, l.id.0)).collect();
        self.temporal_index = TemporalIndex::from_records(nodes, links);
    }

    /// The temporal-index accelerator (query planner hook).
    pub fn temporal_index(&self) -> &TemporalIndex {
        &self.temporal_index
    }

    /// Candidate nodes for a read at `time`: every node created at or
    /// before `time` (for `CURRENT`, every node). A conservative superset —
    /// callers still filter with `exists_at` — but it skips objects the
    /// clock proves cannot exist yet, so deep-history graphs answer
    /// historical queries without probing every archive ever created.
    pub fn nodes_created_by(&self, time: Time) -> Vec<NodeIndex> {
        let ids = self.temporal_index.nodes_created_by(time);
        observe_temporal_pruned(self.temporal_index.len().0 - ids.len());
        ids.into_iter().map(NodeIndex).collect()
    }

    /// Candidate links for a read at `time`; see [`Self::nodes_created_by`].
    pub fn links_created_by(&self, time: Time) -> Vec<LinkIndex> {
        let ids = self.temporal_index.links_created_by(time);
        observe_temporal_pruned(self.temporal_index.len().1 - ids.len());
        ids.into_iter().map(LinkIndex).collect()
    }
}

/// Count objects a historical read skipped thanks to the temporal index.
fn observe_temporal_pruned(pruned: usize) {
    if pruned == 0 || !neptune_obs::enabled() {
        return;
    }
    static PRUNED: std::sync::OnceLock<std::sync::Arc<neptune_obs::Counter>> =
        std::sync::OnceLock::new();
    PRUNED
        .get_or_init(|| neptune_obs::registry().counter("neptune_ham_temporal_pruned_total"))
        .add(pruned as u64);
}

impl Encode for HamGraph {
    fn encode(&self, w: &mut Writer) {
        self.project_id.encode(w);
        self.created.encode(w);
        w.put_u64(self.clock);
        w.put_u64(self.next_node);
        w.put_u64(self.next_link);
        let mut node_ids: Vec<&Node> = self.nodes.values().collect();
        node_ids.sort_by_key(|n| n.id);
        w.put_u64(node_ids.len() as u64);
        for n in node_ids {
            n.encode(w);
        }
        let mut link_ids: Vec<&Link> = self.links.values().collect();
        link_ids.sort_by_key(|l| l.id);
        w.put_u64(link_ids.len() as u64);
        for l in link_ids {
            l.encode(w);
        }
        self.attr_table.encode(w);
        self.graph_demons.encode(w);
        encode_seq(&self.graph_versions, w);
    }
}

impl Decode for HamGraph {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let project_id = ProjectId::decode(r)?;
        let created = Time::decode(r)?;
        let clock = r.get_u64()?;
        let next_node = r.get_u64()?;
        let next_link = r.get_u64()?;
        let node_count = r.get_u64()? as usize;
        let mut nodes = Pam::new();
        for _ in 0..node_count {
            let n = Node::decode(r)?;
            nodes.insert(n.id.0, n);
        }
        let link_count = r.get_u64()? as usize;
        let mut links = Pam::new();
        for _ in 0..link_count {
            let l = Link::decode(r)?;
            links.insert(l.id.0, l);
        }
        let mut graph = HamGraph {
            project_id,
            created,
            clock,
            next_node,
            next_link,
            nodes,
            links,
            attr_table: AttributeTable::decode(r)?,
            graph_demons: DemonTable::decode(r)?,
            graph_versions: decode_seq(r)?,
            value_index: ValueIndex::new(),
            temporal_index: TemporalIndex::new(),
        };
        graph.rebuild_value_index();
        graph.rebuild_temporal_index();
        Ok(graph)
    }
}

/// Versioned existence helper shared by query code: whether an optional
/// versioned bool is true at `time`.
pub fn versioned_alive(alive: &Versioned<bool>, time: Time) -> bool {
    alive.get_at(time).copied().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_two_nodes() -> (HamGraph, NodeIndex, NodeIndex) {
        let mut g = HamGraph::new(ProjectId(1));
        let (a, _) = g.add_node(true);
        let (b, _) = g.add_node(true);
        (g, a, b)
    }

    #[test]
    fn add_node_assigns_sequential_ids_and_times() {
        let (g, a, b) = graph_with_two_nodes();
        assert_eq!(a, NodeIndex(1));
        assert_eq!(b, NodeIndex(2));
        assert_eq!(g.node(a).unwrap().created, Time(2));
        assert_eq!(g.node(b).unwrap().created, Time(3));
        assert_eq!(g.live_node_count(), 2);
    }

    #[test]
    fn add_link_validates_endpoints() {
        let (mut g, a, b) = graph_with_two_nodes();
        let ok = g.add_link(LinkPt::current(a, 0), LinkPt::current(b, 0));
        assert!(ok.is_ok());
        let err = g.add_link(LinkPt::current(a, 0), LinkPt::current(NodeIndex(99), 0));
        assert!(matches!(err, Err(HamError::BadEndpoint { .. })));
        // Pinned endpoint to a time before the node existed fails.
        let err = g.add_link(LinkPt::pinned(a, 0, Time(1)), LinkPt::current(b, 0));
        assert!(matches!(err, Err(HamError::BadEndpoint { .. })));
    }

    #[test]
    fn delete_node_cascades_to_links() {
        let (mut g, a, b) = graph_with_two_nodes();
        let (l, _) = g
            .add_link(LinkPt::current(a, 0), LinkPt::current(b, 0))
            .unwrap();
        let t_before = g.now();
        g.delete_node(a).unwrap();
        assert!(!g.node(a).unwrap().exists_at(Time::CURRENT));
        assert!(!g.link(l).unwrap().exists_at(Time::CURRENT));
        // History preserved: both visible at the earlier time.
        assert!(g.node(a).unwrap().exists_at(t_before));
        assert!(g.link(l).unwrap().exists_at(t_before));
        // Double delete errors.
        assert!(g.delete_node(a).is_err());
    }

    #[test]
    fn attribute_set_get_and_index() {
        let (mut g, a, _) = graph_with_two_nodes();
        let doc = g.attribute_index("document");
        g.set_node_attr(a, doc, Value::str("requirements")).unwrap();
        let hits = g.value_index().lookup(doc, &Value::str("requirements"));
        assert_eq!(hits, vec![(ObjKind::Node, a.0)]);
        let vals = g.attribute_values(doc, Time::CURRENT).unwrap();
        assert_eq!(vals, vec![Value::str("requirements")]);
        // Update moves the index entry.
        g.set_node_attr(a, doc, Value::str("design")).unwrap();
        assert!(g
            .value_index()
            .lookup(doc, &Value::str("requirements"))
            .is_empty());
        assert_eq!(g.value_index().lookup(doc, &Value::str("design")).len(), 1);
    }

    #[test]
    fn attribute_values_at_historical_time_scan() {
        let (mut g, a, b) = graph_with_two_nodes();
        let doc = g.attribute_index("document");
        g.set_node_attr(a, doc, Value::str("v1")).unwrap();
        let t1 = g.now();
        g.set_node_attr(a, doc, Value::str("v2")).unwrap();
        g.set_node_attr(b, doc, Value::str("v2")).unwrap();
        let at_t1 = g.attribute_values(doc, t1).unwrap();
        assert_eq!(at_t1, vec![Value::str("v1")]);
        let now = g.attribute_values(doc, Time::CURRENT).unwrap();
        assert_eq!(now, vec![Value::str("v2")]);
    }

    #[test]
    fn delete_attr_requires_value() {
        let (mut g, a, _) = graph_with_two_nodes();
        let attr = g.attribute_index("x");
        assert!(matches!(
            g.delete_node_attr(a, attr),
            Err(HamError::AttributeNotSet { .. })
        ));
        g.set_node_attr(a, attr, Value::Int(1)).unwrap();
        g.delete_node_attr(a, attr).unwrap();
        assert!(g.node(a).unwrap().attrs.get(attr, Time::CURRENT).is_none());
    }

    #[test]
    fn unknown_attribute_index_rejected() {
        let (mut g, a, _) = graph_with_two_nodes();
        assert!(matches!(
            g.set_node_attr(a, AttributeIndex(42), Value::Int(1)),
            Err(HamError::NoSuchAttribute(_))
        ));
    }

    #[test]
    fn truncate_after_rolls_back_everything() {
        let (mut g, a, _b) = graph_with_two_nodes();
        let doc = g.attribute_index("document");
        g.set_node_attr(a, doc, Value::str("keep")).unwrap();
        let checkpoint = g.now();

        // Post-checkpoint changes to discard:
        let (c, _) = g.add_node(true);
        let (l, _) = g
            .add_link(LinkPt::current(a, 0), LinkPt::current(c, 0))
            .unwrap();
        g.set_node_attr(a, doc, Value::str("drop")).unwrap();
        let late_attr = g.attribute_index("late");
        g.set_node_attr(c, late_attr, Value::Int(1)).unwrap();

        g.truncate_after(checkpoint);
        assert!(g.node(c).is_err());
        assert!(g.link(l).is_err());
        assert_eq!(
            g.node(a).unwrap().attrs.get(doc, Time::CURRENT),
            Some(&Value::str("keep"))
        );
        assert!(g.attr_table.lookup("late").is_none());
        assert_eq!(g.now(), checkpoint);
        // Index rebuilt consistently.
        assert_eq!(g.value_index().lookup(doc, &Value::str("keep")).len(), 1);
        assert!(g.value_index().lookup(doc, &Value::str("drop")).is_empty());
        // Ids are reusable after rollback.
        let (c2, _) = g.add_node(true);
        assert_eq!(c2, c);
    }

    #[test]
    fn codec_roundtrip() {
        let (mut g, a, b) = graph_with_two_nodes();
        let doc = g.attribute_index("document");
        g.set_node_attr(a, doc, Value::str("requirements")).unwrap();
        g.add_link(LinkPt::current(a, 3), LinkPt::current(b, 0))
            .unwrap();
        g.node_mut(a)
            .unwrap()
            .modify(b"section one\n".to_vec(), Time(99), "edit")
            .unwrap();
        g.set_clock(Time(99));
        let decoded = HamGraph::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(decoded, g);
        // Derived index was rebuilt on decode.
        assert_eq!(
            decoded
                .value_index()
                .lookup(doc, &Value::str("requirements"))
                .len(),
            1
        );
    }

    #[test]
    fn forced_inserts_respect_ids() {
        let mut g = HamGraph::new(ProjectId(9));
        g.add_node_forced(NodeIndex(5), Time(7), true);
        assert_eq!(g.now(), Time(7));
        let (next, _) = g.add_node(true);
        assert_eq!(next, NodeIndex(6));
    }

    #[test]
    fn self_link_is_allowed() {
        let (mut g, a, _) = graph_with_two_nodes();
        let (l, _) = g
            .add_link(LinkPt::current(a, 0), LinkPt::current(a, 5))
            .unwrap();
        assert_eq!(g.node(a).unwrap().incident_links, vec![l]);
    }
}
