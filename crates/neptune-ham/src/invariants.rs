//! In-memory integrity rules over a [`HamGraph`] and a whole [`Ham`].
//!
//! These are the semantic invariants the storage layer cannot enforce with
//! checksums alone: delta chains must replay, link attachments must point
//! into their node's contents, link endpoints must exist, contexts must
//! fork from live contexts, version histories must be monotonic, and
//! mark-node demons must reference interned attributes.
//!
//! Two consumers share this module:
//!
//! * the `neptune-check` crate's verifier, which reports each violation as
//!   a finding (`neptune-shell check`, the server's `Verify` op);
//! * the `strict-invariants` cargo feature, which re-runs these rules at
//!   every commit and checkpoint and panics on the first violation —
//!   catching corruption at the operation that introduces it.

use crate::demons::DemonAction;
use crate::graph::HamGraph;
use crate::ham::Ham;
use crate::history::Versioned;
use crate::link::Endpoint;
use crate::types::{ContextId, Time};

/// Rule name: an archive's backward-delta chain fails to replay, claims a
/// wrong length, or has out-of-order version times.
pub const RULE_DELTA_CHAIN: &str = "delta-chain";
/// Rule name: a link attachment lies beyond its node's contents.
pub const RULE_LINK_OFFSET: &str = "link-offset";
/// Rule name: a live link's endpoint node is missing or dead.
pub const RULE_DANGLING_ENDPOINT: &str = "dangling-endpoint";
/// Rule name: a context forked from a missing context, or from a point in
/// the future of its parent's clock.
pub const RULE_CONTEXT_PARTITION: &str = "context-partition";
/// Rule name: a versioned history's entries are not strictly increasing in
/// time (or carry the reserved time 0).
pub const RULE_NON_MONOTONIC_HISTORY: &str = "non-monotonic-history";
/// Rule name: a mark-node demon references an attribute name that is not
/// (or is no longer) in the attribute table.
pub const RULE_DEMON_DEAD_ATTR: &str = "demon-dead-attr";
/// Rule name: a persisted archive skip-delta (temporal-index anchor)
/// disagrees with the unit delta chain. Derived data — checkout falls back
/// to unit replay and heals the rung — so this warns rather than errors.
pub const RULE_ARCHIVE_INDEX: &str = "archive-index";

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule tripped (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// The entity the violation is about, e.g. `"context 0 node 3"`.
    pub entity: String,
    /// Human-readable description of what is wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.entity, self.detail)
    }
}

/// Check a `Versioned` history for strict time monotonicity.
fn monotonicity_error<T>(history: &Versioned<T>) -> Option<String> {
    let mut prev: Option<Time> = None;
    for (time, _) in history.entries() {
        if time.0 == 0 {
            return Some("history entry at reserved time 0".to_string());
        }
        if let Some(p) = prev {
            if time <= p {
                return Some(format!(
                    "history times out of order: {} then {}",
                    p.0, time.0
                ));
            }
        }
        prev = Some(time);
    }
    None
}

fn check_history<T>(out: &mut Vec<Violation>, entity: &str, what: &str, history: &Versioned<T>) {
    if let Some(detail) = monotonicity_error(history) {
        out.push(Violation {
            rule: RULE_NON_MONOTONIC_HISTORY,
            entity: entity.to_string(),
            detail: format!("{what}: {detail}"),
        });
    }
}

/// Every position an endpoint has held, with the time it took effect.
fn endpoint_positions(ep: &Endpoint) -> Vec<(Time, u64)> {
    ep.positions
        .entries()
        .filter_map(|(t, p)| p.map(|p| (t, *p)))
        .collect()
}

/// All integrity violations inside one context's graph.
pub fn graph_violations(ctx: ContextId, graph: &HamGraph) -> Vec<Violation> {
    let mut out = Vec::new();

    for node in graph.nodes() {
        let entity = format!("context {} node {}", ctx.0, node.id.0);
        if let Some(archive) = node.archive() {
            if let Err(detail) = archive.verify_chain() {
                out.push(Violation {
                    rule: RULE_DELTA_CHAIN,
                    entity: entity.clone(),
                    detail,
                });
            }
            if let Err(detail) = archive.verify_index() {
                out.push(Violation {
                    rule: RULE_ARCHIVE_INDEX,
                    entity: entity.clone(),
                    detail,
                });
            }
        }
        check_history(&mut out, &entity, "alive", &node.alive);
        for (attr, history) in node.attrs.histories() {
            check_history(&mut out, &entity, &format!("attribute {}", attr.0), history);
        }
        for (event, history) in node.demons.histories() {
            check_history(&mut out, &entity, &format!("demon slot {event}"), history);
        }
        for (event, demon) in node.demons.all_at(Time::CURRENT) {
            if let DemonAction::MarkNode { attr, .. } = &demon.action {
                if graph.attr_table.lookup(attr).is_none() {
                    out.push(Violation {
                        rule: RULE_DEMON_DEAD_ATTR,
                        entity: entity.clone(),
                        detail: format!(
                            "demon '{}' on {event} marks attribute '{attr}', which is not \
                             in the attribute table",
                            demon.name
                        ),
                    });
                }
            }
        }
    }

    for link in graph.links() {
        let entity = format!("context {} link {}", ctx.0, link.id.0);
        check_history(&mut out, &entity, "alive", &link.alive);
        for (attr, history) in link.attrs.histories() {
            check_history(&mut out, &entity, &format!("attribute {}", attr.0), history);
        }
        for (end_name, ep) in [("from", &link.from), ("to", &link.to)] {
            check_history(
                &mut out,
                &entity,
                &format!("{end_name} positions"),
                &ep.positions,
            );

            // Endpoint existence: wherever the link is alive, its endpoint
            // node must exist.
            let mut lifetimes: Vec<Time> = link.alive.change_times();
            lifetimes.push(Time::CURRENT);
            for t in lifetimes {
                if !link.exists_at(t) {
                    continue;
                }
                match graph.node(ep.node) {
                    Err(_) => {
                        out.push(Violation {
                            rule: RULE_DANGLING_ENDPOINT,
                            entity: entity.clone(),
                            detail: format!(
                                "{end_name} endpoint references missing node {}",
                                ep.node.0
                            ),
                        });
                        break; // one report per endpoint is enough
                    }
                    Ok(n) if !n.exists_at(t) => {
                        out.push(Violation {
                            rule: RULE_DANGLING_ENDPOINT,
                            entity: entity.clone(),
                            detail: format!(
                                "{end_name} endpoint node {} is dead at time {}",
                                ep.node.0, t.0
                            ),
                        });
                        break;
                    }
                    Ok(_) => {}
                }
            }

            // Attachment bounds: at every version where both the link and
            // its node exist, the attachment must lie within the node's
            // contents. Archive nodes answer at any time; file nodes only
            // at the current version.
            let Ok(node) = graph.node(ep.node) else {
                continue;
            };
            let mut checks: Vec<(Time, u64)> = endpoint_positions(ep);
            if let Some(pos) = ep.position_at(Time::CURRENT) {
                checks.push((Time::CURRENT, pos));
            }
            for (t, pos) in checks {
                if !link.exists_at(t) || !node.exists_at(t) {
                    continue;
                }
                let Ok(contents) = node.contents_at(t) else {
                    continue;
                };
                if pos > contents.len() as u64 {
                    out.push(Violation {
                        rule: RULE_LINK_OFFSET,
                        entity: entity.clone(),
                        detail: format!(
                            "{end_name} attachment at offset {pos} exceeds node {} contents \
                             ({} bytes) at time {}",
                            ep.node.0,
                            contents.len(),
                            t.0
                        ),
                    });
                    break; // one report per endpoint is enough
                }
            }
        }
    }

    for (event, demon) in graph.graph_demons.all_at(Time::CURRENT) {
        if let DemonAction::MarkNode { attr, .. } = &demon.action {
            if graph.attr_table.lookup(attr).is_none() {
                out.push(Violation {
                    rule: RULE_DEMON_DEAD_ATTR,
                    entity: format!("context {} graph demon {event}", ctx.0),
                    detail: format!(
                        "demon '{}' marks attribute '{attr}', which is not in the \
                         attribute table",
                        demon.name
                    ),
                });
            }
        }
    }

    out
}

/// All integrity violations in an open machine: every context's graph plus
/// the context-partition (fork) topology.
pub fn ham_violations(ham: &Ham) -> Vec<Violation> {
    thread_violations(ham.threads(), ham.shard_identity())
}

/// [`ham_violations`] against a published committed snapshot — the
/// lock-free `Verify` path checks the view it serves reads from, not the
/// live machine.
pub fn view_violations(view: &crate::view::CommittedView) -> Vec<Violation> {
    thread_violations(view.threads(), view.shard())
}

/// `shard = (index, count)` identifies which slice of the context-id space
/// this thread map covers: contexts whose home (`id % count`) is a
/// different shard legitimately appear only as *fork parents* here, so the
/// context-partition rules skip them — [`crate::shard::ShardedHam`] runs
/// the full cross-shard topology check over the merged map with `(0, 1)`.
pub(crate) fn thread_violations(
    threads: &std::collections::HashMap<ContextId, crate::ham::GraphThread>,
    shard: (u32, u32),
) -> Vec<Violation> {
    let (shard_index, shard_count) = (shard.0 as u64, shard.1.max(1) as u64);
    let mut ids: Vec<ContextId> = threads.keys().copied().collect();
    ids.sort_unstable();
    let mut out = Vec::new();
    for ctx in ids {
        let thread = &threads[&ctx];
        if let Some((parent, fork_time)) = thread.forked_from {
            if parent.0 % shard_count != shard_index {
                // Foreign parent: it lives on another shard, so neither its
                // existence nor its clock can be judged from this map.
                out.extend(graph_violations(ctx, &thread.graph));
                continue;
            }
            match threads.get(&parent) {
                None => out.push(Violation {
                    rule: RULE_CONTEXT_PARTITION,
                    entity: format!("context {}", ctx.0),
                    detail: format!("forked from context {}, which no longer exists", parent.0),
                }),
                Some(pt) if fork_time > pt.graph.now() => out.push(Violation {
                    rule: RULE_CONTEXT_PARTITION,
                    entity: format!("context {}", ctx.0),
                    detail: format!(
                        "forked at time {}, beyond parent context {}'s clock {}",
                        fork_time.0,
                        parent.0,
                        pt.graph.now().0
                    ),
                }),
                Some(_) => {}
            }
        }
        out.extend(graph_violations(ctx, &thread.graph));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demons::DemonSpec;
    use crate::types::{LinkPt, NodeIndex, ProjectId, Protections, MAIN_CONTEXT};
    use crate::value::Value;
    use neptune_storage::codec::{Decode, Encode, Writer};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("neptune-invariants-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn clean_machine_has_no_violations() {
        let dir = tmpdir("clean");
        let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        let (a, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(MAIN_CONTEXT, a, t, b"hello hypertext\n".to_vec(), &[])
            .unwrap();
        let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 5), LinkPt::current(b, 0))
            .unwrap();
        let ctx = ham.create_context(MAIN_CONTEXT).unwrap();
        ham.add_node(ctx, true).unwrap();
        assert_eq!(ham_violations(&ham), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The next two tests deliberately corrupt a machine; under
    // `strict-invariants` the commit hooks would (correctly) panic first,
    // so they only run with the feature off.
    #[test]
    #[cfg(not(feature = "strict-invariants"))]
    fn destroying_a_forked_parent_partitions_the_child() {
        let dir = tmpdir("partition");
        let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        let mid = ham.create_context(MAIN_CONTEXT).unwrap();
        let leaf = ham.create_context(mid).unwrap();
        ham.destroy_context(mid).unwrap();
        let violations = ham_violations(&ham);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == RULE_CONTEXT_PARTITION
                    && v.entity == format!("context {}", leaf.0)),
            "expected a context-partition violation, got {violations:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retargeted_endpoint_dangles() {
        let mut graph = HamGraph::new(ProjectId(1));
        let (a, _) = graph.add_node(true);
        let (b, _) = graph.add_node(true);
        let (l, _) = graph
            .add_link(LinkPt::current(a, 0), LinkPt::current(b, 0))
            .unwrap();
        // Corruption: the destination end now names a node that was never
        // created (what a decoded-but-damaged snapshot can produce).
        graph.link_mut(l).unwrap().to.node = NodeIndex(77);
        let violations = graph_violations(MAIN_CONTEXT, &graph);
        assert!(
            violations.iter().any(|v| v.rule == RULE_DANGLING_ENDPOINT),
            "expected a dangling-endpoint violation, got {violations:?}"
        );
    }

    #[test]
    fn decoded_out_of_order_history_is_non_monotonic() {
        // Versioned::set asserts time order, but Decode trusts its input —
        // craft the bytes a corrupted snapshot would hold.
        let mut w = Writer::new();
        w.put_u64(2);
        Time(5).encode(&mut w);
        Some(true).encode(&mut w);
        Time(2).encode(&mut w);
        Some(true).encode(&mut w);
        let rewound = Versioned::<bool>::from_bytes(w.as_slice()).unwrap();

        let mut graph = HamGraph::new(ProjectId(1));
        let (a, _) = graph.add_node(true);
        graph.node_mut(a).unwrap().alive = rewound;
        let violations = graph_violations(MAIN_CONTEXT, &graph);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == RULE_NON_MONOTONIC_HISTORY),
            "expected a non-monotonic-history violation, got {violations:?}"
        );
    }

    #[test]
    fn demon_marking_an_uninterned_attribute_is_flagged() {
        let mut graph = HamGraph::new(ProjectId(1));
        let (a, _) = graph.add_node(true);
        let now = graph.now();
        graph.node_mut(a).unwrap().demons.set(
            crate::demons::Event::NodeModified,
            Some(DemonSpec::mark_node("stale", "ghost", Value::Bool(true))),
            now,
        );
        let violations = graph_violations(MAIN_CONTEXT, &graph);
        assert!(
            violations.iter().any(|v| v.rule == RULE_DEMON_DEAD_ATTR),
            "expected a demon-dead-attr violation, got {violations:?}"
        );
    }

    #[test]
    #[cfg(not(feature = "strict-invariants"))]
    fn shrinking_contents_under_an_attachment_trips_link_offset() {
        let dir = tmpdir("shrink");
        let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        let (a, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(
            MAIN_CONTEXT,
            a,
            t,
            b"a reasonably long line\n".to_vec(),
            &[],
        )
        .unwrap();
        let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 15), LinkPt::current(b, 0))
            .unwrap();
        // Shrink the contents but keep the attachment where it was.
        let opened = ham.open_node(MAIN_CONTEXT, a, Time::CURRENT, &[]).unwrap();
        ham.modify_node(
            MAIN_CONTEXT,
            a,
            opened.current_time,
            b"tiny\n".to_vec(),
            &opened.link_pts,
        )
        .unwrap();
        let violations = ham_violations(&ham);
        assert!(
            violations.iter().any(|v| v.rule == RULE_LINK_OFFSET),
            "expected a link-offset violation, got {violations:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
