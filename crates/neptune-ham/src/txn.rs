//! Transactions: atomicity, rollback, and the redo log.
//!
//! Paper §2.2: Neptune *"is transaction-oriented and provides for complete
//! recovery from any aborted transaction"*; the HAM provides
//! *"transaction-based crash recovery"*. Two mechanisms cooperate:
//!
//! * **Abort** exploits the fact that *all* HAM state is versioned by the
//!   logical clock: a transaction remembers the clock value at its start
//!   for each context it touches, and aborting truncates every versioned
//!   structure back to that value ([`crate::graph::HamGraph::truncate_after`]).
//! * **Durability** uses the write-ahead log: each state-changing operation
//!   is recorded as a [`RedoOp`] carrying its *assigned* ids and times, so
//!   replay after a crash reproduces the exact same state. Demon side
//!   effects are logged as ordinary ops, so demons do not re-fire during
//!   replay.
//!
//! Operations issued outside an explicit transaction auto-commit as a
//! single-op transaction — the paper's UI does the same ("special commands
//! that bundle together several primitive hypertext operations into a
//! single transaction" are the explicit case).

use std::collections::HashMap;

use neptune_storage::codec::{decode_seq, encode_seq, Decode, Encode, Reader, Writer};
use neptune_storage::error::{Result as StorageResult, StorageError};

use crate::demons::{DemonSpec, Event};
use crate::types::{
    decode_protections, ContextId, LinkIndex, LinkPt, NodeIndex, Protections, Time,
};
use crate::value::Value;

/// A logged, replayable state-changing operation. Ids and times are the
/// values *assigned* during original execution, making replay exact.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    /// `addNode` assigned `id` at `time`.
    AddNode {
        /// Context the node was created in.
        context: ContextId,
        /// Assigned node index.
        id: NodeIndex,
        /// Assigned creation time.
        time: Time,
        /// Archive (true) or file (false) storage.
        keep_history: bool,
    },
    /// `deleteNode`.
    DeleteNode {
        /// Context operated on.
        context: ContextId,
        /// The deleted node.
        id: NodeIndex,
        /// Time of deletion.
        time: Time,
    },
    /// `addLink` / `copyLink` assigned `id` at `time`.
    AddLink {
        /// Context the link was created in.
        context: ContextId,
        /// Assigned link index.
        id: LinkIndex,
        /// The "from node" end.
        from: LinkPt,
        /// The "to node" end.
        to: LinkPt,
        /// Assigned creation time.
        time: Time,
    },
    /// `deleteLink`.
    DeleteLink {
        /// Context operated on.
        context: ContextId,
        /// The deleted link.
        id: LinkIndex,
        /// Time of deletion.
        time: Time,
    },
    /// `modifyNode` checked in new contents and moved attachments.
    ModifyNode {
        /// Context operated on.
        context: ContextId,
        /// The modified node.
        id: NodeIndex,
        /// New contents, shared with the live graph's version store.
        contents: std::sync::Arc<[u8]>,
        /// New attachment points, in canonical attachment order.
        link_pts: Vec<LinkPt>,
        /// Assigned check-in time.
        time: Time,
    },
    /// `setNodeAttributeValue` (attribute carried by name so replay
    /// re-interns deterministically).
    SetNodeAttr {
        /// Context operated on.
        context: ContextId,
        /// The node.
        node: NodeIndex,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
        /// Assigned time.
        time: Time,
    },
    /// `deleteNodeAttribute`.
    DeleteNodeAttr {
        /// Context operated on.
        context: ContextId,
        /// The node.
        node: NodeIndex,
        /// Attribute name.
        attr: String,
        /// Assigned time.
        time: Time,
    },
    /// `setLinkAttributeValue`.
    SetLinkAttr {
        /// Context operated on.
        context: ContextId,
        /// The link.
        link: LinkIndex,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
        /// Assigned time.
        time: Time,
    },
    /// `deleteLinkAttribute`.
    DeleteLinkAttr {
        /// Context operated on.
        context: ContextId,
        /// The link.
        link: LinkIndex,
        /// Attribute name.
        attr: String,
        /// Assigned time.
        time: Time,
    },
    /// `getAttributeIndex` interned a new name (clock-advancing).
    InternAttr {
        /// Context operated on.
        context: ContextId,
        /// The interned name.
        name: String,
        /// Assigned time.
        time: Time,
    },
    /// `setGraphDemonValue`.
    SetGraphDemon {
        /// Context operated on.
        context: ContextId,
        /// The triggering event.
        event: Event,
        /// The demon, or `None` to disable.
        demon: Option<DemonSpec>,
        /// Assigned time.
        time: Time,
    },
    /// `setNodeDemon`.
    SetNodeDemon {
        /// Context operated on.
        context: ContextId,
        /// The node.
        node: NodeIndex,
        /// The triggering event.
        event: Event,
        /// The demon, or `None` to disable.
        demon: Option<DemonSpec>,
        /// Assigned time.
        time: Time,
    },
    /// `changeNodeProtection`.
    ChangeProtection {
        /// Context operated on.
        context: ContextId,
        /// The node.
        node: NodeIndex,
        /// The new protections.
        protections: Protections,
    },
    /// `createContext` forked a new version thread.
    CreateContext {
        /// The new context's id.
        id: ContextId,
        /// The context it was forked from.
        from: ContextId,
        /// Fork time (in the parent's clock).
        time: Time,
    },
    /// `mergeContext` folded a child thread back into its parent.
    MergeContext {
        /// The merged (child) context.
        child: ContextId,
        /// The receiving context.
        into: ContextId,
        /// Conflict policy tag (see [`crate::context::ConflictPolicy`]):
        /// 0 = fail, 1 = prefer child, 2 = prefer parent.
        policy: u8,
    },
    /// `destroyContext` discarded a version thread.
    DestroyContext {
        /// The discarded context.
        id: ContextId,
    },
    /// A cross-shard `createContext`: this shard adopted a context whose
    /// parent lives on another shard. The record carries the parent graph's
    /// encoded bytes so replay of this shard's log is self-contained — the
    /// parent shard's log is never consulted.
    AdoptContext {
        /// The new context's id.
        id: ContextId,
        /// The (foreign) context it was forked from.
        from: ContextId,
        /// Fork time (in the parent's clock).
        time: Time,
        /// Encoded [`crate::graph::HamGraph`] snapshot of the parent at the
        /// fork point.
        graph: Vec<u8>,
    },
    /// A cross-shard `mergeContext`, parent side: fold an encoded foreign
    /// child graph into `into`. Self-contained for the same reason as
    /// [`RedoOp::AdoptContext`].
    MergeForeign {
        /// The receiving (parent) context on this shard.
        into: ContextId,
        /// Conflict policy tag (see [`crate::context::ConflictPolicy`]).
        policy: u8,
        /// The child's fork time in the parent's clock.
        fork_time: Time,
        /// Encoded [`crate::graph::HamGraph`] of the (foreign) child.
        graph: Vec<u8>,
    },
    /// A cross-shard `mergeContext`, child side: after the parent shard
    /// folded the child in, re-fork the child at the parent's new clock.
    RefixFork {
        /// The re-forked child context on this shard.
        child: ContextId,
        /// The (foreign) parent context.
        into: ContextId,
        /// The new fork time (in the parent's clock).
        time: Time,
    },
}

impl RedoOp {
    fn tag(&self) -> u8 {
        match self {
            RedoOp::AddNode { .. } => 0,
            RedoOp::DeleteNode { .. } => 1,
            RedoOp::AddLink { .. } => 2,
            RedoOp::DeleteLink { .. } => 3,
            RedoOp::ModifyNode { .. } => 4,
            RedoOp::SetNodeAttr { .. } => 5,
            RedoOp::DeleteNodeAttr { .. } => 6,
            RedoOp::SetLinkAttr { .. } => 7,
            RedoOp::DeleteLinkAttr { .. } => 8,
            RedoOp::InternAttr { .. } => 9,
            RedoOp::SetGraphDemon { .. } => 10,
            RedoOp::SetNodeDemon { .. } => 11,
            RedoOp::ChangeProtection { .. } => 12,
            RedoOp::CreateContext { .. } => 13,
            RedoOp::MergeContext { .. } => 14,
            RedoOp::DestroyContext { .. } => 15,
            RedoOp::AdoptContext { .. } => 16,
            RedoOp::MergeForeign { .. } => 17,
            RedoOp::RefixFork { .. } => 18,
        }
    }
}

fn encode_event(e: Event, w: &mut Writer) {
    // Reuse DemonTable's tag scheme indirectly: Event::ALL index.
    let tag = Event::ALL
        .iter()
        .position(|x| *x == e)
        .expect("event in ALL") as u8;
    w.put_u8(tag);
}

fn decode_event(r: &mut Reader<'_>) -> StorageResult<Event> {
    let tag = r.get_u8()?;
    Event::ALL
        .get(tag as usize)
        .copied()
        .ok_or(StorageError::InvalidTag {
            context: "Event",
            tag: tag as u64,
        })
}

impl Encode for RedoOp {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            RedoOp::AddNode {
                context,
                id,
                time,
                keep_history,
            } => {
                context.encode(w);
                id.encode(w);
                time.encode(w);
                w.put_bool(*keep_history);
            }
            RedoOp::DeleteNode { context, id, time } => {
                context.encode(w);
                id.encode(w);
                time.encode(w);
            }
            RedoOp::AddLink {
                context,
                id,
                from,
                to,
                time,
            } => {
                context.encode(w);
                id.encode(w);
                from.encode(w);
                to.encode(w);
                time.encode(w);
            }
            RedoOp::DeleteLink { context, id, time } => {
                context.encode(w);
                id.encode(w);
                time.encode(w);
            }
            RedoOp::ModifyNode {
                context,
                id,
                contents,
                link_pts,
                time,
            } => {
                context.encode(w);
                id.encode(w);
                w.put_bytes(contents);
                encode_seq(link_pts, w);
                time.encode(w);
            }
            RedoOp::SetNodeAttr {
                context,
                node,
                attr,
                value,
                time,
            } => {
                context.encode(w);
                node.encode(w);
                w.put_str(attr);
                value.encode(w);
                time.encode(w);
            }
            RedoOp::DeleteNodeAttr {
                context,
                node,
                attr,
                time,
            } => {
                context.encode(w);
                node.encode(w);
                w.put_str(attr);
                time.encode(w);
            }
            RedoOp::SetLinkAttr {
                context,
                link,
                attr,
                value,
                time,
            } => {
                context.encode(w);
                link.encode(w);
                w.put_str(attr);
                value.encode(w);
                time.encode(w);
            }
            RedoOp::DeleteLinkAttr {
                context,
                link,
                attr,
                time,
            } => {
                context.encode(w);
                link.encode(w);
                w.put_str(attr);
                time.encode(w);
            }
            RedoOp::InternAttr {
                context,
                name,
                time,
            } => {
                context.encode(w);
                w.put_str(name);
                time.encode(w);
            }
            RedoOp::SetGraphDemon {
                context,
                event,
                demon,
                time,
            } => {
                context.encode(w);
                encode_event(*event, w);
                demon.encode(w);
                time.encode(w);
            }
            RedoOp::SetNodeDemon {
                context,
                node,
                event,
                demon,
                time,
            } => {
                context.encode(w);
                node.encode(w);
                encode_event(*event, w);
                demon.encode(w);
                time.encode(w);
            }
            RedoOp::ChangeProtection {
                context,
                node,
                protections,
            } => {
                context.encode(w);
                node.encode(w);
                protections.encode(w);
            }
            RedoOp::CreateContext { id, from, time } => {
                id.encode(w);
                from.encode(w);
                time.encode(w);
            }
            RedoOp::MergeContext {
                child,
                into,
                policy,
            } => {
                child.encode(w);
                into.encode(w);
                w.put_u8(*policy);
            }
            RedoOp::DestroyContext { id } => {
                id.encode(w);
            }
            RedoOp::AdoptContext {
                id,
                from,
                time,
                graph,
            } => {
                id.encode(w);
                from.encode(w);
                time.encode(w);
                w.put_bytes(graph);
            }
            RedoOp::MergeForeign {
                into,
                policy,
                fork_time,
                graph,
            } => {
                into.encode(w);
                w.put_u8(*policy);
                fork_time.encode(w);
                w.put_bytes(graph);
            }
            RedoOp::RefixFork { child, into, time } => {
                child.encode(w);
                into.encode(w);
                time.encode(w);
            }
        }
    }
}

impl Decode for RedoOp {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(match r.get_u8()? {
            0 => RedoOp::AddNode {
                context: ContextId::decode(r)?,
                id: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
                keep_history: r.get_bool()?,
            },
            1 => RedoOp::DeleteNode {
                context: ContextId::decode(r)?,
                id: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            2 => RedoOp::AddLink {
                context: ContextId::decode(r)?,
                id: LinkIndex::decode(r)?,
                from: LinkPt::decode(r)?,
                to: LinkPt::decode(r)?,
                time: Time::decode(r)?,
            },
            3 => RedoOp::DeleteLink {
                context: ContextId::decode(r)?,
                id: LinkIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            4 => RedoOp::ModifyNode {
                context: ContextId::decode(r)?,
                id: NodeIndex::decode(r)?,
                contents: r.get_bytes()?.into(),
                link_pts: decode_seq(r)?,
                time: Time::decode(r)?,
            },
            5 => RedoOp::SetNodeAttr {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                attr: r.get_str()?.to_owned(),
                value: Value::decode(r)?,
                time: Time::decode(r)?,
            },
            6 => RedoOp::DeleteNodeAttr {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                attr: r.get_str()?.to_owned(),
                time: Time::decode(r)?,
            },
            7 => RedoOp::SetLinkAttr {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                attr: r.get_str()?.to_owned(),
                value: Value::decode(r)?,
                time: Time::decode(r)?,
            },
            8 => RedoOp::DeleteLinkAttr {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                attr: r.get_str()?.to_owned(),
                time: Time::decode(r)?,
            },
            9 => RedoOp::InternAttr {
                context: ContextId::decode(r)?,
                name: r.get_str()?.to_owned(),
                time: Time::decode(r)?,
            },
            10 => RedoOp::SetGraphDemon {
                context: ContextId::decode(r)?,
                event: decode_event(r)?,
                demon: Option::<DemonSpec>::decode(r)?,
                time: Time::decode(r)?,
            },
            11 => RedoOp::SetNodeDemon {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                event: decode_event(r)?,
                demon: Option::<DemonSpec>::decode(r)?,
                time: Time::decode(r)?,
            },
            12 => RedoOp::ChangeProtection {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                protections: decode_protections(r)?,
            },
            13 => RedoOp::CreateContext {
                id: ContextId::decode(r)?,
                from: ContextId::decode(r)?,
                time: Time::decode(r)?,
            },
            14 => RedoOp::MergeContext {
                child: ContextId::decode(r)?,
                into: ContextId::decode(r)?,
                policy: r.get_u8()?,
            },
            15 => RedoOp::DestroyContext {
                id: ContextId::decode(r)?,
            },
            16 => RedoOp::AdoptContext {
                id: ContextId::decode(r)?,
                from: ContextId::decode(r)?,
                time: Time::decode(r)?,
                graph: r.get_bytes()?.to_vec(),
            },
            17 => RedoOp::MergeForeign {
                into: ContextId::decode(r)?,
                policy: r.get_u8()?,
                fork_time: Time::decode(r)?,
                graph: r.get_bytes()?.to_vec(),
            },
            18 => RedoOp::RefixFork {
                child: ContextId::decode(r)?,
                into: ContextId::decode(r)?,
                time: Time::decode(r)?,
            },
            tag => {
                return Err(StorageError::InvalidTag {
                    context: "RedoOp",
                    tag: tag as u64,
                })
            }
        })
    }
}

/// An in-flight transaction.
#[derive(Debug, Clone)]
pub struct ActiveTxn {
    /// Transaction id (monotonic per graph).
    pub id: u64,
    /// Clock value at transaction start, per touched context — the rollback
    /// points for abort.
    pub start_times: HashMap<ContextId, Time>,
    /// Contexts created inside this transaction (dropped on abort).
    pub created_contexts: Vec<ContextId>,
    /// Contexts destroyed or merged inside this transaction, with their
    /// pre-transaction state (restored on abort).
    pub saved_contexts: Vec<(ContextId, crate::graph::HamGraph)>,
    /// Fork points rewritten inside this transaction (by the cross-shard
    /// `RefixFork` path), with their pre-transaction values. Fork points
    /// are not clock-versioned, so abort must restore them explicitly.
    pub saved_forks: Vec<(ContextId, Option<(ContextId, Time)>)>,
    /// Redo records accumulated so far.
    pub redo: Vec<RedoOp>,
}

impl ActiveTxn {
    /// Start a transaction.
    pub fn new(id: u64) -> ActiveTxn {
        ActiveTxn {
            id,
            start_times: HashMap::new(),
            created_contexts: Vec::new(),
            saved_contexts: Vec::new(),
            saved_forks: Vec::new(),
            redo: Vec::new(),
        }
    }

    /// Record the rollback point for `context` if not already recorded.
    pub fn note_context(&mut self, context: ContextId, now: Time) {
        self.start_times.entry(context).or_insert(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redo_ops_roundtrip() {
        let ops = vec![
            RedoOp::AddNode {
                context: ContextId(0),
                id: NodeIndex(3),
                time: Time(7),
                keep_history: true,
            },
            RedoOp::DeleteNode {
                context: ContextId(0),
                id: NodeIndex(3),
                time: Time(9),
            },
            RedoOp::AddLink {
                context: ContextId(1),
                id: LinkIndex(2),
                from: LinkPt::current(NodeIndex(1), 5),
                to: LinkPt::pinned(NodeIndex(2), 0, Time(3)),
                time: Time(8),
            },
            RedoOp::DeleteLink {
                context: ContextId(0),
                id: LinkIndex(2),
                time: Time(10),
            },
            RedoOp::ModifyNode {
                context: ContextId(0),
                id: NodeIndex(1),
                contents: b"hello".to_vec().into(),
                link_pts: vec![LinkPt::current(NodeIndex(1), 2)],
                time: Time(11),
            },
            RedoOp::SetNodeAttr {
                context: ContextId(0),
                node: NodeIndex(1),
                attr: "document".into(),
                value: Value::str("requirements"),
                time: Time(12),
            },
            RedoOp::DeleteNodeAttr {
                context: ContextId(0),
                node: NodeIndex(1),
                attr: "document".into(),
                time: Time(13),
            },
            RedoOp::SetLinkAttr {
                context: ContextId(0),
                link: LinkIndex(1),
                attr: "relation".into(),
                value: Value::str("isPartOf"),
                time: Time(14),
            },
            RedoOp::DeleteLinkAttr {
                context: ContextId(0),
                link: LinkIndex(1),
                attr: "relation".into(),
                time: Time(15),
            },
            RedoOp::InternAttr {
                context: ContextId(0),
                name: "icon".into(),
                time: Time(16),
            },
            RedoOp::SetGraphDemon {
                context: ContextId(0),
                event: Event::NodeModified,
                demon: Some(DemonSpec::notify("d", "msg")),
                time: Time(17),
            },
            RedoOp::SetNodeDemon {
                context: ContextId(0),
                node: NodeIndex(1),
                event: Event::NodeOpened,
                demon: None,
                time: Time(18),
            },
            RedoOp::ChangeProtection {
                context: ContextId(0),
                node: NodeIndex(1),
                protections: Protections::PRIVATE,
            },
            RedoOp::CreateContext {
                id: ContextId(2),
                from: ContextId(0),
                time: Time(19),
            },
            RedoOp::MergeContext {
                child: ContextId(2),
                into: ContextId(0),
                policy: 1,
            },
            RedoOp::DestroyContext { id: ContextId(2) },
            RedoOp::AdoptContext {
                id: ContextId(9),
                from: ContextId(4),
                time: Time(20),
                graph: vec![1, 2, 3, 4],
            },
            RedoOp::MergeForeign {
                into: ContextId(4),
                policy: 2,
                fork_time: Time(20),
                graph: vec![5, 6, 7],
            },
            RedoOp::RefixFork {
                child: ContextId(9),
                into: ContextId(4),
                time: Time(25),
            },
        ];
        for op in ops {
            let decoded = RedoOp::from_bytes(&op.to_bytes()).unwrap();
            assert_eq!(decoded, op);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(RedoOp::from_bytes(&[200]).is_err());
    }

    #[test]
    fn active_txn_notes_first_start_time_only() {
        let mut txn = ActiveTxn::new(1);
        txn.note_context(ContextId(0), Time(5));
        txn.note_context(ContextId(0), Time(9));
        assert_eq!(txn.start_times[&ContextId(0)], Time(5));
    }
}
