//! Attribute names, versioned attribute values, and the value index.
//!
//! Paper §3: *"an unlimited number of attribute/value pairs can be attached
//! to a node or link"*; attributes are *"very dynamic"* (attachable,
//! deletable, modifiable at any time) and every change to an archive's
//! attribute *"creates a new version of the attribute value"* (§A.4). The
//! appendix also demands history of the attribute *vocabulary* itself:
//! `getAttributes(Context × Time)` lists the attributes "that existed at
//! time Time".

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::error::Result as StorageResult;

use crate::history::Versioned;
use crate::pmap::Pam;
use crate::types::{AttributeIndex, Time};
use crate::value::{value_index_key, Value};

/// The graph-wide registry interning attribute names.
///
/// `getAttributeIndex` has create-on-miss semantics in the paper ("If no
/// attribute exists, then creates one"), so the table records each name's
/// creation time for `getAttributes(… Time)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeTable {
    by_name: HashMap<String, AttributeIndex>,
    names: Vec<(String, Time)>, // indexed by AttributeIndex.0
}

impl AttributeTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `name`, creating it at `now` if absent — the HAM's
    /// `getAttributeIndex`.
    pub fn intern(&mut self, name: &str, now: Time) -> AttributeIndex {
        match self.by_name.entry(name.to_string()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let idx = AttributeIndex(self.names.len() as u64);
                self.names.push((name.to_string(), now));
                *e.insert(idx)
            }
        }
    }

    /// Look up `name` without creating it.
    pub fn lookup(&self, name: &str) -> Option<AttributeIndex> {
        self.by_name.get(name).copied()
    }

    /// The name for `idx`, if it exists.
    pub fn name(&self, idx: AttributeIndex) -> Option<&str> {
        self.names.get(idx.0 as usize).map(|(n, _)| n.as_str())
    }

    /// All `(name, index)` pairs existing at `time` — `getAttributes`.
    pub fn attributes_at(&self, time: Time) -> Vec<(String, AttributeIndex)> {
        self.names
            .iter()
            .enumerate()
            .filter(|(_, (_, created))| time.is_current() || *created <= time)
            .map(|(i, (name, _))| (name.clone(), AttributeIndex(i as u64)))
            .collect()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Drop names created after `time` (transaction rollback).
    pub fn truncate_after(&mut self, time: Time) {
        let keep = self.names.partition_point(|(_, created)| *created <= time);
        for (name, _) in self.names.drain(keep..) {
            self.by_name.remove(&name);
        }
    }
}

impl Encode for AttributeTable {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.names.len() as u64);
        for (name, created) in &self.names {
            w.put_str(name);
            created.encode(w);
        }
    }
}

impl Decode for AttributeTable {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let count = r.get_u64()? as usize;
        let mut table = AttributeTable::new();
        for i in 0..count {
            let name = r.get_str()?.to_owned();
            let created = Time::decode(r)?;
            table.by_name.insert(name.clone(), AttributeIndex(i as u64));
            table.names.push((name, created));
        }
        Ok(table)
    }
}

/// Count one attribute point-get and the probes its binary search made.
/// `neptune_ham_attr_probes_total / neptune_ham_attr_gets_total` is the
/// mean probe depth — O(log versions) when healthy; a linear regression
/// would push it toward the version count.
fn observe_attr_get(probes: u32) {
    use std::sync::{Arc, OnceLock};
    static PROBES: OnceLock<Arc<neptune_obs::Counter>> = OnceLock::new();
    static GETS: OnceLock<Arc<neptune_obs::Counter>> = OnceLock::new();
    if neptune_obs::enabled() {
        PROBES
            .get_or_init(|| neptune_obs::registry().counter("neptune_ham_attr_probes_total"))
            .add(u64::from(probes));
        GETS.get_or_init(|| neptune_obs::registry().counter("neptune_ham_attr_gets_total"))
            .inc();
    }
}

/// The versioned attribute/value pairs attached to one node or link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrMap {
    values: BTreeMap<AttributeIndex, Versioned<Value>>,
}

impl AttrMap {
    /// An empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `attr` to `value` as of `now` — `setNodeAttributeValue` /
    /// `setLinkAttributeValue`.
    pub fn set(&mut self, attr: AttributeIndex, value: Value, now: Time) {
        self.values.entry(attr).or_default().set(now, value);
    }

    /// Delete `attr` as of `now` — `deleteNodeAttribute` /
    /// `deleteLinkAttribute`. Returns whether the attribute had a value.
    pub fn delete(&mut self, attr: AttributeIndex, now: Time) -> bool {
        match self.values.get_mut(&attr) {
            Some(v) if v.exists_at(Time::CURRENT) => {
                v.delete(now);
                true
            }
            _ => false,
        }
    }

    /// The value of `attr` at `time` — `getNodeAttributeValue` /
    /// `getLinkAttributeValue`. Binary-searches the sorted version vector;
    /// the probe count feeds `neptune_ham_attr_probes_total` so a
    /// regression back to a linear walk shows up in metrics, not just in
    /// latency.
    pub fn get(&self, attr: AttributeIndex, time: Time) -> Option<&Value> {
        let versions = self.values.get(&attr)?;
        let (value, probes) = versions.get_at_counted(time);
        observe_attr_get(probes);
        value
    }

    /// All `(attribute, value)` pairs with a value at `time` —
    /// `getNodeAttributes` / `getLinkAttributes`.
    pub fn all_at(&self, time: Time) -> Vec<(AttributeIndex, Value)> {
        self.values
            .iter()
            .filter_map(|(idx, v)| v.get_at(time).map(|val| (*idx, val.clone())))
            .collect()
    }

    /// Times at which any attribute of this object changed (for minor
    /// version histories).
    pub fn change_times(&self) -> Vec<Time> {
        let mut times: Vec<Time> = self
            .values
            .values()
            .flat_map(|v| v.change_times())
            .collect();
        times.sort_unstable();
        times.dedup();
        times
    }

    /// Attributes whose value changed (set or deleted) strictly after
    /// `time` — used by context merging to find divergent attributes.
    /// Only the newest change time matters, so this reads it in O(1) per
    /// attribute instead of materializing every attribute's full
    /// `change_times()` vector (the linear-walk shape merge paid per
    /// attribute per merge).
    pub fn attrs_changed_after(&self, time: Time) -> Vec<AttributeIndex> {
        self.values
            .iter()
            .filter(|(_, v)| v.last_change_time().is_some_and(|t| t > time))
            .map(|(idx, _)| *idx)
            .collect()
    }

    /// Every attribute's full versioned history, for integrity checking.
    pub fn histories(&self) -> impl Iterator<Item = (AttributeIndex, &Versioned<Value>)> {
        self.values.iter().map(|(idx, v)| (*idx, v))
    }

    /// Roll back changes after `time`.
    pub fn truncate_after(&mut self, time: Time) {
        self.values.retain(|_, v| {
            v.truncate_after(time);
            !v.is_empty()
        });
    }

    /// Number of attributes that ever had a value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no attribute ever had a value.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Encode for AttrMap {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.values.len() as u64);
        for (idx, versions) in &self.values {
            idx.encode(w);
            versions.encode(w);
        }
    }
}

impl Decode for AttrMap {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let count = r.get_u64()? as usize;
        let mut values = BTreeMap::new();
        for _ in 0..count {
            let idx = AttributeIndex::decode(r)?;
            let versions = Versioned::<Value>::decode(r)?;
            values.insert(idx, versions);
        }
        Ok(AttrMap { values })
    }
}

/// What kind of object an index entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjKind {
    /// A node.
    Node,
    /// A link.
    Link,
}

/// An object reference in the index: what kind it is plus its raw id.
pub type ObjRef = (ObjKind, u64);

/// One collision-chain entry in [`ValueIndex::by_pair`]: the exact
/// `(attr, value key)` pair and the members currently carrying it.
type PairChain = Vec<((AttributeIndex, Vec<u8>), BTreeSet<ObjRef>)>;

/// One collision-chain entry in [`ValueIndex::values_by_attr`]:
/// `(value key, value, carrier count)`.
type ValueChain = Vec<(Vec<u8>, Value, usize)>;

/// An inverted index from `(attribute, value)` to the objects currently
/// carrying that pair.
///
/// This accelerates `getGraphQuery` for the common `attr = literal`
/// predicate (the paper's own example) and `getAttributeValues`. It tracks
/// **current** values only; historical queries fall back to scanning, which
/// experiment E3 quantifies.
///
/// Internals are persistent ([`Pam`] tries keyed by FNV-1a hashes with
/// in-bucket collision chains) so a graph clone — taken on every snapshot
/// publish and context fork — shares the whole index and a later mutation
/// copies only the touched bucket's path, keeping publication
/// O(changes) rather than O(index).
#[derive(Debug, Clone, Default)]
pub struct ValueIndex {
    /// FNV-1a of `(attr, value key)` → collision chain of
    /// `((attr, value key), members carrying that pair)`.
    by_pair: Pam<PairChain>,
    /// `attr.0` → (FNV-1a of value key → collision chain of
    /// `(value key, value, carrier count)`).
    values_by_attr: Pam<Pam<ValueChain>>,
}

/// FNV-1a over an attribute index and a value key — the bucket addresses
/// for [`ValueIndex`]'s tries. Deterministic by design (no per-process
/// hasher seed), so equal indexes have equal internal shapes.
fn index_hash(attr: u64, key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in attr.to_le_bytes().iter().chain(key) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ValueIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `obj`'s current value of `attr` is now `value`,
    /// replacing `old` if the attribute was previously set.
    pub fn update(
        &mut self,
        obj: (ObjKind, u64),
        attr: AttributeIndex,
        old: Option<&Value>,
        value: &Value,
    ) {
        if let Some(old) = old {
            self.remove(obj, attr, old);
        }
        let key = value_index_key(value);
        let slot = index_hash(attr.0, &key);
        if self.by_pair.get(slot).is_none() {
            self.by_pair.insert(slot, Vec::new());
        }
        if let Some(bucket) = self.by_pair.get_mut(slot) {
            match bucket
                .iter_mut()
                .find(|(pair, _)| pair == &(attr, key.clone()))
            {
                Some((_, members)) => {
                    members.insert(obj);
                }
                None => bucket.push(((attr, key.clone()), BTreeSet::from([obj]))),
            }
        }
        if self.values_by_attr.get(attr.0).is_none() {
            self.values_by_attr.insert(attr.0, Pam::new());
        }
        if let Some(values) = self.values_by_attr.get_mut(attr.0) {
            let vslot = index_hash(0, &key);
            if values.get(vslot).is_none() {
                values.insert(vslot, Vec::new());
            }
            if let Some(bucket) = values.get_mut(vslot) {
                match bucket.iter_mut().find(|(k, _, _)| k == &key) {
                    Some((_, _, count)) => *count += 1,
                    None => bucket.push((key, value.clone(), 1)),
                }
            }
        }
    }

    /// Record that `obj` no longer carries `attr = value`.
    pub fn remove(&mut self, obj: (ObjKind, u64), attr: AttributeIndex, value: &Value) {
        let key = value_index_key(value);
        let slot = index_hash(attr.0, &key);
        let mut drop_bucket = false;
        if let Some(bucket) = self.by_pair.get_mut(slot) {
            if let Some(pos) = bucket
                .iter()
                .position(|(pair, _)| pair == &(attr, key.clone()))
            {
                if let Some((_, members)) = bucket.get_mut(pos) {
                    members.remove(&obj);
                    if members.is_empty() {
                        bucket.remove(pos);
                    }
                }
            }
            drop_bucket = bucket.is_empty();
        }
        if drop_bucket {
            self.by_pair.remove(slot);
        }
        let mut drop_attr = false;
        if let Some(values) = self.values_by_attr.get_mut(attr.0) {
            let vslot = index_hash(0, &key);
            let mut drop_values = false;
            if let Some(bucket) = values.get_mut(vslot) {
                if let Some(pos) = bucket.iter().position(|(k, _, _)| k == &key) {
                    if let Some((_, _, count)) = bucket.get_mut(pos) {
                        *count -= 1;
                        if *count == 0 {
                            bucket.remove(pos);
                        }
                    }
                }
                drop_values = bucket.is_empty();
            }
            if drop_values {
                values.remove(vslot);
            }
            drop_attr = values.is_empty();
        }
        if drop_attr {
            self.values_by_attr.remove(attr.0);
        }
    }

    /// Objects currently carrying `attr = value`.
    pub fn lookup(&self, attr: AttributeIndex, value: &Value) -> Vec<(ObjKind, u64)> {
        let key = value_index_key(value);
        self.by_pair
            .get(index_hash(attr.0, &key))
            .and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(pair, _)| pair.0 == attr && pair.1 == key)
            })
            .map(|(_, members)| members.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Distinct current values of `attr` — the fast path of
    /// `getAttributeValues` at the current time.
    pub fn current_values(&self, attr: AttributeIndex) -> Vec<Value> {
        let mut vals: Vec<(Vec<u8>, Value)> = self
            .values_by_attr
            .get(attr.0)
            .map(|values| {
                values
                    .values()
                    .flat_map(|bucket| bucket.iter().map(|(k, v, _)| (k.clone(), v.clone())))
                    .collect()
            })
            .unwrap_or_default();
        vals.sort_by(|a, b| a.0.cmp(&b.0));
        vals.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = AttributeTable::new();
        let a = t.intern("contentType", Time(1));
        let b = t.intern("contentType", Time(2));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), Some("contentType"));
        assert_eq!(t.lookup("contentType"), Some(a));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn attributes_at_respects_creation_time() {
        let mut t = AttributeTable::new();
        t.intern("early", Time(1));
        t.intern("late", Time(10));
        assert_eq!(t.attributes_at(Time(5)).len(), 1);
        assert_eq!(t.attributes_at(Time(10)).len(), 2);
        assert_eq!(t.attributes_at(Time::CURRENT).len(), 2);
    }

    #[test]
    fn table_truncate_rolls_back_interning() {
        let mut t = AttributeTable::new();
        let early = t.intern("early", Time(1));
        t.intern("late", Time(10));
        t.truncate_after(Time(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("late"), None);
        // Re-interning after rollback reuses the freed index slot.
        let again = t.intern("late2", Time(6));
        assert_eq!(again, AttributeIndex(1));
        assert_eq!(t.lookup("early"), Some(early));
    }

    #[test]
    fn table_codec_roundtrip() {
        let mut t = AttributeTable::new();
        t.intern("a", Time(1));
        t.intern("b", Time(2));
        let decoded = AttributeTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn attrmap_versioned_values() {
        let mut m = AttrMap::new();
        let attr = AttributeIndex(0);
        m.set(attr, Value::str("draft"), Time(1));
        m.set(attr, Value::str("final"), Time(5));
        assert_eq!(m.get(attr, Time(1)), Some(&Value::str("draft")));
        assert_eq!(m.get(attr, Time(4)), Some(&Value::str("draft")));
        assert_eq!(m.get(attr, Time(5)), Some(&Value::str("final")));
        assert_eq!(m.get(attr, Time::CURRENT), Some(&Value::str("final")));
    }

    #[test]
    fn attrmap_delete_keeps_history() {
        let mut m = AttrMap::new();
        let attr = AttributeIndex(3);
        m.set(attr, Value::Int(1), Time(1));
        assert!(m.delete(attr, Time(2)));
        assert!(!m.delete(attr, Time(3)), "double delete reports false");
        assert_eq!(m.get(attr, Time(1)), Some(&Value::Int(1)));
        assert_eq!(m.get(attr, Time::CURRENT), None);
    }

    #[test]
    fn attrmap_all_at_reflects_time() {
        let mut m = AttrMap::new();
        m.set(AttributeIndex(0), Value::str("x"), Time(1));
        m.set(AttributeIndex(1), Value::Int(9), Time(5));
        assert_eq!(m.all_at(Time(1)).len(), 1);
        assert_eq!(m.all_at(Time(5)).len(), 2);
        assert_eq!(m.all_at(Time::CURRENT).len(), 2);
    }

    #[test]
    fn attrmap_truncate_after() {
        let mut m = AttrMap::new();
        m.set(AttributeIndex(0), Value::str("keep"), Time(1));
        m.set(AttributeIndex(0), Value::str("drop"), Time(9));
        m.set(AttributeIndex(1), Value::str("drop-entirely"), Time(8));
        m.truncate_after(Time(5));
        assert_eq!(
            m.get(AttributeIndex(0), Time::CURRENT),
            Some(&Value::str("keep"))
        );
        assert_eq!(m.get(AttributeIndex(1), Time::CURRENT), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn attrmap_codec_roundtrip() {
        let mut m = AttrMap::new();
        m.set(AttributeIndex(0), Value::str("v"), Time(1));
        m.delete(AttributeIndex(0), Time(2));
        m.set(AttributeIndex(7), Value::Float(2.5), Time(3));
        let decoded = AttrMap::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn value_index_tracks_current_pairs() {
        let mut ix = ValueIndex::new();
        let attr = AttributeIndex(0);
        let n1 = (ObjKind::Node, 1);
        let n2 = (ObjKind::Node, 2);
        ix.update(n1, attr, None, &Value::str("requirements"));
        ix.update(n2, attr, None, &Value::str("requirements"));
        assert_eq!(ix.lookup(attr, &Value::str("requirements")), vec![n1, n2]);
        // n2 changes document.
        ix.update(
            n2,
            attr,
            Some(&Value::str("requirements")),
            &Value::str("design"),
        );
        assert_eq!(ix.lookup(attr, &Value::str("requirements")), vec![n1]);
        assert_eq!(ix.lookup(attr, &Value::str("design")), vec![n2]);
        // Deletion.
        ix.remove(n1, attr, &Value::str("requirements"));
        assert!(ix.lookup(attr, &Value::str("requirements")).is_empty());
        let values = ix.current_values(attr);
        assert_eq!(values, vec![Value::str("design")]);
    }

    #[test]
    fn value_index_counts_duplicates() {
        let mut ix = ValueIndex::new();
        let attr = AttributeIndex(1);
        ix.update((ObjKind::Node, 1), attr, None, &Value::Int(7));
        ix.update((ObjKind::Link, 1), attr, None, &Value::Int(7));
        ix.remove((ObjKind::Node, 1), attr, &Value::Int(7));
        // The value survives because the link still carries it.
        assert_eq!(ix.current_values(attr), vec![Value::Int(7)]);
    }
}
