//! Links: directed, attributed connections between nodes.
//!
//! Paper §3: each end of a link attaches at an offset within a node's
//! contents, and there are *"two mechanisms for associating the link
//! attachment with versions of a node: the link attachment may refer to a
//! particular version of a node or it may always refer to the 'current'
//! version"*. For current-tracking ends, *"a history of link attachment
//! offsets is saved, allowing the link to be attached to different offsets
//! for each version of the node"* — so an [`Endpoint`]'s position is a
//! [`Versioned`] history.

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::error::Result as StorageResult;

use crate::attributes::AttrMap;
use crate::history::Versioned;
use crate::types::{LinkIndex, LinkPt, NodeIndex, Position, Time, Version};

/// One end of a link.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// The node this end attaches to.
    pub node: NodeIndex,
    /// Attachment offset history (current-tracking ends accumulate one
    /// entry per node version whose offset moved).
    pub positions: Versioned<Position>,
    /// For pinned ends, the node version the attachment refers to.
    pub pinned_time: Time,
    /// Whether the attachment follows the node's current version.
    pub track_current: bool,
}

impl Endpoint {
    /// Build an endpoint from the `LinkPt` operand of `addLink`.
    pub fn from_linkpt(pt: LinkPt, now: Time) -> Endpoint {
        Endpoint {
            node: pt.node,
            positions: Versioned::with_initial(now, pt.position),
            pinned_time: if pt.track_current {
                Time::CURRENT
            } else {
                pt.time
            },
            track_current: pt.track_current,
        }
    }

    /// The attachment's offset at `time`.
    pub fn position_at(&self, time: Time) -> Option<Position> {
        self.positions.get_at(time).copied()
    }

    /// Reconstruct the `LinkPt` visible at `time`.
    pub fn linkpt_at(&self, time: Time) -> Option<LinkPt> {
        let position = self.position_at(time)?;
        Some(LinkPt {
            node: self.node,
            position,
            time: if self.track_current {
                Time::CURRENT
            } else {
                self.pinned_time
            },
            track_current: self.track_current,
        })
    }

    /// Record a new offset for this end (current-tracking ends only; the
    /// caller enforces that pinned ends never move).
    pub fn move_to(&mut self, position: Position, now: Time) {
        self.positions.set(now, position);
    }
}

impl Encode for Endpoint {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        self.positions.encode(w);
        self.pinned_time.encode(w);
        w.put_bool(self.track_current);
    }
}

impl Decode for Endpoint {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(Endpoint {
            node: NodeIndex::decode(r)?,
            positions: Versioned::<Position>::decode(r)?,
            pinned_time: Time::decode(r)?,
            track_current: r.get_bool()?,
        })
    }
}

/// A directed link between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// The link's unique identification.
    pub id: LinkIndex,
    /// Creation time.
    pub created: Time,
    /// Existence history (deleteLink records a deletion; old graph versions
    /// still see the link).
    pub alive: Versioned<bool>,
    /// The "from node" end.
    pub from: Endpoint,
    /// The "to node" end.
    pub to: Endpoint,
    /// Attribute/value pairs describing the relationship.
    pub attrs: AttrMap,
    /// Minor version history (attribute/offset changes).
    pub versions: Vec<Version>,
}

impl Link {
    /// Create a link from the two `LinkPt` operands of `addLink`.
    pub fn new(id: LinkIndex, from: LinkPt, to: LinkPt, now: Time) -> Link {
        Link {
            id,
            created: now,
            alive: Versioned::with_initial(now, true),
            from: Endpoint::from_linkpt(from, now),
            to: Endpoint::from_linkpt(to, now),
            attrs: AttrMap::new(),
            versions: vec![Version::new(now, "created")],
        }
    }

    /// Whether the link exists (is not deleted) at `time`.
    pub fn exists_at(&self, time: Time) -> bool {
        self.alive.get_at(time).copied().unwrap_or(false)
    }

    /// Record a change for version bookkeeping.
    pub fn record_version(&mut self, now: Time, explanation: &str) {
        if self.versions.last().map(|v| v.time) == Some(now) {
            return;
        }
        self.versions.push(Version::new(now, explanation));
    }

    /// Roll back all link state after `time`; `false` means the link was
    /// created after `time` and should be dropped entirely.
    pub fn truncate_after(&mut self, time: Time) -> bool {
        if self.created > time {
            return false;
        }
        self.alive.truncate_after(time);
        self.from.positions.truncate_after(time);
        self.to.positions.truncate_after(time);
        self.attrs.truncate_after(time);
        self.versions.retain(|v| v.time <= time);
        true
    }
}

impl Encode for Link {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.created.encode(w);
        self.alive.encode(w);
        self.from.encode(w);
        self.to.encode(w);
        self.attrs.encode(w);
        neptune_storage::codec::encode_seq(&self.versions, w);
    }
}

impl Decode for Link {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(Link {
            id: LinkIndex::decode(r)?,
            created: Time::decode(r)?,
            alive: Versioned::<bool>::decode(r)?,
            from: Endpoint::decode(r)?,
            to: Endpoint::decode(r)?,
            attrs: AttrMap::decode(r)?,
            versions: neptune_storage::codec::decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Link {
        Link::new(
            LinkIndex(1),
            LinkPt::current(NodeIndex(10), 5),
            LinkPt::pinned(NodeIndex(20), 0, Time(3)),
            Time(4),
        )
    }

    #[test]
    fn endpoints_reflect_linkpt_kinds() {
        let l = sample();
        assert!(l.from.track_current);
        assert!(l.from.pinned_time.is_current());
        assert!(!l.to.track_current);
        assert_eq!(l.to.pinned_time, Time(3));
    }

    #[test]
    fn offset_history_is_versioned() {
        let mut l = sample();
        l.from.move_to(42, Time(8));
        assert_eq!(l.from.position_at(Time(4)), Some(5));
        assert_eq!(l.from.position_at(Time(7)), Some(5));
        assert_eq!(l.from.position_at(Time(8)), Some(42));
        assert_eq!(l.from.position_at(Time::CURRENT), Some(42));
        assert_eq!(l.from.position_at(Time(3)), None);
    }

    #[test]
    fn linkpt_at_reconstructs_operand() {
        let l = sample();
        let pt = l.from.linkpt_at(Time::CURRENT).unwrap();
        assert_eq!(pt, LinkPt::current(NodeIndex(10), 5));
        let pt = l.to.linkpt_at(Time::CURRENT).unwrap();
        assert_eq!(pt, LinkPt::pinned(NodeIndex(20), 0, Time(3)));
    }

    #[test]
    fn existence_and_truncate() {
        let mut l = sample();
        l.alive.delete(Time(9));
        assert!(l.exists_at(Time(5)));
        assert!(!l.exists_at(Time(9)));
        // Roll back the deletion.
        assert!(l.truncate_after(Time(6)));
        assert!(l.exists_at(Time::CURRENT));
        // A link created later is dropped wholesale.
        let mut late = sample();
        late.created = Time(10);
        assert!(!late.truncate_after(Time(6)));
    }

    #[test]
    fn version_records_coalesce_per_tick() {
        let mut l = sample();
        l.record_version(Time(5), "a");
        l.record_version(Time(5), "b");
        l.record_version(Time(6), "c");
        assert_eq!(l.versions.len(), 3); // created + t5 + t6
    }

    #[test]
    fn codec_roundtrip() {
        let mut l = sample();
        l.from.move_to(9, Time(6));
        l.attrs.set(
            crate::types::AttributeIndex(2),
            crate::value::Value::str("annotates"),
            Time(6),
        );
        l.record_version(Time(6), "moved");
        assert_eq!(Link::from_bytes(&l.to_bytes()).unwrap(), l);
    }
}
