//! Attribute values.
//!
//! Paper §3: *"Attribute names and values tend therefore to be short strings
//! of characters."* Strings are the paper's canonical case, but the CASE
//! examples also want numbers ("version > 3") and flags, so `Value` is a
//! small typed union. Comparisons are defined within a type; cross-type
//! comparisons are always false, so predicates never conflate `"3"` and `3`.

use std::cmp::Ordering;
use std::fmt;

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::error::{Result as StorageResult, StorageError};

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A short character string — the paper's canonical value kind.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A boolean flag.
    Bool(bool),
    /// A floating-point number (e.g. coordinates in graphics nodes).
    Float(f64),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Compare two values if they are of the same kind.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// A stable name for the value's kind.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Float(_) => "float",
        }
    }

    /// Parse a literal as it appears in predicate text: quoted strings,
    /// integer and float literals, `true`/`false`; anything else is treated
    /// as a bare-word string (the paper writes `document = requirements`).
    pub fn parse_literal(text: &str) -> Value {
        if let Some(stripped) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
            return Value::Str(stripped.to_string());
        }
        if text == "true" {
            return Value::Bool(true);
        }
        if text == "false" {
            return Value::Bool(false);
        }
        if let Ok(i) = text.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(x) = text.parse::<f64>() {
            return Value::Float(x);
        }
        Value::Str(text.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Str(s) => {
                w.put_u8(0);
                w.put_str(s);
            }
            Value::Int(i) => {
                w.put_u8(1);
                w.put_i64(*i);
            }
            Value::Bool(b) => {
                w.put_u8(2);
                w.put_bool(*b);
            }
            Value::Float(x) => {
                w.put_u8(3);
                w.put_f64(*x);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        Ok(match r.get_u8()? {
            0 => Value::Str(r.get_str()?.to_owned()),
            1 => Value::Int(r.get_i64()?),
            2 => Value::Bool(r.get_bool()?),
            3 => Value::Float(r.get_f64()?),
            tag => {
                return Err(StorageError::InvalidTag {
                    context: "Value",
                    tag: tag as u64,
                })
            }
        })
    }
}

/// A canonical byte key for indexing values (value-equality keyed maps).
/// Floats key by bit pattern, so `-0.0` and `0.0` index separately even
/// though they compare equal — acceptable for an index accelerator, since
/// lookups fall back to predicate evaluation.
pub fn value_index_key(v: &Value) -> Vec<u8> {
    let mut key = Vec::new();
    match v {
        Value::Str(s) => {
            key.push(0);
            key.extend_from_slice(s.as_bytes());
        }
        Value::Int(i) => {
            key.push(1);
            key.extend_from_slice(&i.to_le_bytes());
        }
        Value::Bool(b) => {
            key.push(2);
            key.push(*b as u8);
        }
        Value::Float(x) => {
            key.push(3);
            key.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    key
}

/// Canonical ordering of values by their index key, for deterministic
/// result ordering in query results.
pub fn value_index_key_cmp(a: &Value, b: &Value) -> Ordering {
    value_index_key(a).cmp(&value_index_key(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_comparisons() {
        assert_eq!(
            Value::str("a").partial_cmp_same_type(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(3).partial_cmp_same_type(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.0).partial_cmp_same_type(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn cross_type_comparisons_are_none() {
        assert_eq!(Value::Int(3).partial_cmp_same_type(&Value::str("3")), None);
        assert_eq!(
            Value::Bool(true).partial_cmp_same_type(&Value::Int(1)),
            None
        );
    }

    #[test]
    fn literal_parsing() {
        assert_eq!(Value::parse_literal("\"quoted\""), Value::str("quoted"));
        assert_eq!(
            Value::parse_literal("requirements"),
            Value::str("requirements")
        );
        assert_eq!(Value::parse_literal("42"), Value::Int(42));
        assert_eq!(Value::parse_literal("-7"), Value::Int(-7));
        assert_eq!(Value::parse_literal("2.5"), Value::Float(2.5));
        assert_eq!(Value::parse_literal("true"), Value::Bool(true));
        assert_eq!(Value::parse_literal("false"), Value::Bool(false));
    }

    #[test]
    fn codec_roundtrips() {
        for v in [
            Value::str("x"),
            Value::Int(-9),
            Value::Bool(true),
            Value::Float(1.5),
        ] {
            assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn index_keys_distinguish_types_and_values() {
        let keys: Vec<Vec<u8>> = [
            Value::str("1"),
            Value::Int(1),
            Value::Bool(true),
            Value::Float(1.0),
            Value::str("2"),
        ]
        .iter()
        .map(value_index_key)
        .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
        assert_eq!(
            value_index_key(&Value::Int(5)),
            value_index_key(&Value::Int(5))
        );
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(Value::str("doc").to_string(), "doc");
        assert_eq!(Value::Int(7).to_string(), "7");
    }
}
