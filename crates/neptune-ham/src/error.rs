//! Error type for HAM operations.
//!
//! The appendix gives every operation an implicit `result₀: Boolean` —
//! success or failure. This reproduction refines that single bit into an
//! error enum; callers who want the paper's exact shape can use
//! `result.is_ok()`.

use std::fmt;

use neptune_storage::StorageError;

use crate::types::{AttributeIndex, ContextId, LinkIndex, NodeIndex, ProjectId, Time};

/// Errors produced by HAM operations.
#[derive(Debug)]
pub enum HamError {
    /// The storage substrate failed.
    Storage(StorageError),
    /// No node with this index exists (or it did not exist at the time asked).
    NoSuchNode(NodeIndex),
    /// No link with this index exists (or it did not exist at the time asked).
    NoSuchLink(LinkIndex),
    /// No attribute with this index has been created.
    NoSuchAttribute(AttributeIndex),
    /// The attribute exists but has no value for this object at this time.
    AttributeNotSet {
        /// The attribute queried.
        attribute: AttributeIndex,
        /// The time queried.
        time: Time,
    },
    /// No graph version existed at the requested time.
    NoSuchTime(Time),
    /// No context (version thread) with this id exists.
    NoSuchContext(ContextId),
    /// The supplied `ProjectId` does not match the graph in the directory.
    ProjectMismatch {
        /// What the caller supplied.
        given: ProjectId,
        /// What the graph on disk actually is.
        actual: ProjectId,
    },
    /// `modifyNode`'s optimistic check failed: the node changed since the
    /// caller read it.
    StaleVersion {
        /// The node being modified.
        node: NodeIndex,
        /// Version time the caller believed was current.
        given: Time,
        /// The actual current version time.
        current: Time,
    },
    /// `modifyNode` must supply a `LinkPt` for each link attached to the
    /// current version of the node.
    AttachmentMismatch {
        /// The node being modified.
        node: NodeIndex,
        /// How many attachments the node has.
        expected: usize,
        /// How many the caller supplied.
        supplied: usize,
    },
    /// The operation needs an enclosing transaction but none is active, or a
    /// transaction is already active where none may be.
    TransactionState {
        /// Description of the violation.
        reason: &'static str,
    },
    /// A predicate string failed to parse.
    BadPredicate {
        /// Parser diagnostic.
        message: String,
    },
    /// A link endpoint referred to a node version that does not exist
    /// (`addLink`: "the from and to nodes must exist at their respective
    /// times").
    BadEndpoint {
        /// The offending endpoint's node.
        node: NodeIndex,
        /// The version time the endpoint asked for.
        time: Time,
    },
    /// The node is a `file` (no history) and a historical version was asked.
    NoHistory(NodeIndex),
    /// Merging a context hit a conflict and no resolution policy allowed it.
    MergeConflict {
        /// Human-readable description of the first conflict found.
        detail: String,
    },
    /// An operation was attempted on a deleted node or link.
    Deleted {
        /// Description of the object.
        what: &'static str,
        /// Its id.
        id: u64,
    },
    /// A demon action failed.
    DemonFailed {
        /// The demon's name.
        name: String,
        /// Why it failed.
        reason: String,
    },
}

impl fmt::Display for HamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HamError::Storage(e) => write!(f, "storage: {e}"),
            HamError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            HamError::NoSuchLink(l) => write!(f, "no such link: {l}"),
            HamError::NoSuchAttribute(a) => write!(f, "no such attribute: {a}"),
            HamError::AttributeNotSet { attribute, time } => {
                write!(f, "attribute {attribute} has no value at {time}")
            }
            HamError::NoSuchTime(t) => write!(f, "no graph version at {t}"),
            HamError::NoSuchContext(c) => write!(f, "no such context: {c}"),
            HamError::ProjectMismatch { given, actual } => {
                write!(f, "project id mismatch: given {given}, graph is {actual}")
            }
            HamError::StaleVersion {
                node,
                given,
                current,
            } => write!(
                f,
                "stale version for {node}: caller saw {given}, current is {current}"
            ),
            HamError::AttachmentMismatch {
                node,
                expected,
                supplied,
            } => write!(
                f,
                "modifyNode on {node} must supply {expected} link points, got {supplied}"
            ),
            HamError::TransactionState { reason } => write!(f, "transaction state: {reason}"),
            HamError::BadPredicate { message } => write!(f, "bad predicate: {message}"),
            HamError::BadEndpoint { node, time } => {
                write!(
                    f,
                    "link endpoint refers to {node} at {time}, which does not exist"
                )
            }
            HamError::NoHistory(n) => {
                write!(
                    f,
                    "{n} is a file node; only its current version is available"
                )
            }
            HamError::MergeConflict { detail } => write!(f, "merge conflict: {detail}"),
            HamError::Deleted { what, id } => write!(f, "{what} {id} has been deleted"),
            HamError::DemonFailed { name, reason } => {
                write!(f, "demon '{name}' failed: {reason}")
            }
        }
    }
}

impl std::error::Error for HamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HamError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for HamError {
    fn from(e: StorageError) -> Self {
        HamError::Storage(e)
    }
}

/// Result alias for HAM operations.
pub type Result<T> = std::result::Result<T, HamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_ids() {
        assert!(HamError::NoSuchNode(NodeIndex(7)).to_string().contains('7'));
        assert!(HamError::StaleVersion {
            node: NodeIndex(1),
            given: Time(2),
            current: Time(3)
        }
        .to_string()
        .contains("stale"));
    }

    #[test]
    fn storage_errors_convert() {
        let e: HamError = StorageError::NotFound { id: 1 }.into();
        assert!(matches!(e, HamError::Storage(_)));
    }
}
