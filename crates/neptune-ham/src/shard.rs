//! Sharded HAM: parallel disjoint-shard commits over N independent
//! [`Ham`] machines.
//!
//! The paper's HAM is a single *"transaction-based server"*; one machine
//! lock therefore serializes every commit. [`ShardedHam`] splits the
//! context-id space across `nshards` full machines — context `c` lives on
//! shard `c % nshards` (its *home shard*) — so transactions touching
//! disjoint shards validate, WAL-append, and epoch-publish with no shared
//! lock at all. Each shard is a complete store (own snapshot, own WAL
//! stream, own blob mirror, own version cache, own `Published` view slot),
//! so recovery "fan-in" is simply opening every shard.
//!
//! What crosses shards:
//!
//! * **A global commit sequence** — one shared `AtomicU64` stamped into
//!   every commit record, totally ordering commits across shards without
//!   coordinating them.
//! * **Cross-shard transactions** (fork onto / merge from another shard)
//!   — the minority path: shard locks are taken in ascending index order
//!   (= ascending lockcheck rank, so inversions panic in debug builds),
//!   both halves stamp the *same* forced sequence, and the pair is noted
//!   in a small in-memory [`CrossLog`] so readers can detect half-visible
//!   pairs.
//! * **Consistent multi-shard reads** — [`ShardedHam::multi_view`]
//!   assembles a vector of per-shard published views and retries (bounded,
//!   counted) whenever the cross log shows a sequence published on one
//!   shard of a pair but not yet the other.
//!
//! ## Crash atomicity across shards
//!
//! Each shard's WAL commits independently, so a crash between the two
//! halves of a cross-shard transaction can persist one half (the parent's
//! merge) without the other (the child's re-fork). Both halves are
//! individually consistent stores — the surviving half is exactly the
//! prefix a single-shard crash would leave — and the cross log is rebuilt
//! empty on open, so readers see a consistent (if torn-in-history) pair.
//! This is the documented trade for independent per-shard commit paths
//! (DESIGN.md §13).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use neptune_storage::codec::{Reader, Writer};
use neptune_storage::snapshot::{read_snapshot_with, write_snapshot_with};
use neptune_storage::vcache::CacheStats;
use neptune_storage::vfs::{StdVfs, Vfs};

use crate::context::{ConflictPolicy, MergeReport};
use crate::demons::DemonFireInfo;
use crate::error::{HamError, Result};
use crate::ham::Ham;
use crate::invariants::{thread_violations, Violation};
use crate::types::{ContextId, ProjectId, Protections, Time, MAIN_CONTEXT};
use crate::view::CommittedView;
use crate::Published;

/// File at the store root recording the shard count. Absent on stores
/// created before sharding (and on `nshards = 1` stores): both open as a
/// single-shard machine, so v1 directories stay readable unchanged.
pub const SHARDS_FILE: &str = "shards.meta";

/// Subdirectory of the root holding shard `k` (for `k >= 1`; shard 0 *is*
/// the root directory, keeping the layout v1-compatible).
pub fn shard_dir(root: &Path, index: usize) -> PathBuf {
    if index == 0 {
        root.to_path_buf()
    } else {
        root.join(format!("shard.{index}"))
    }
}

/// Most shards a store may declare. The cross log tracks participating
/// shards as a `u64` bitmask.
pub const MAX_SHARDS: usize = 64;

/// Bounded retries when assembling a consistent multi-shard view before
/// falling back to locking every shard.
const SKEW_RETRIES: usize = 8;

/// Soft cap on cross-log entries; beyond it, fully-published entries are
/// evicted from the front (unpublished ones keep the log growing until
/// their shards publish — correctness over the cap).
const CROSS_LOG_CAP: usize = 1024;

/// One cross-shard transaction: its commit sequence and the bitmask of
/// participating shards. Readers treat the sequence as torn while some
/// participant has published it and another has not.
#[derive(Debug, Clone, Copy)]
struct CrossEntry {
    seq: u64,
    mask: u64,
}

/// In-memory journal of recent cross-shard commits (the *cross log*).
/// Rebuilt empty on open: pre-restart pairs are either fully durable on
/// both shards or half-lost to the crash — neither can tear further.
#[derive(Debug, Default)]
struct CrossLog {
    entries: VecDeque<CrossEntry>,
}

/// An explicit transaction spanning whichever shards its operations touch.
#[derive(Debug, Default)]
struct TxnState {
    /// Shards holding an open per-shard transaction for this logical one.
    shards: BTreeSet<usize>,
}

/// One shard: a full machine behind its own lock, ranked
/// `lockcheck::shard(index)` so ascending-index acquisition is
/// ascending-rank acquisition.
struct ShardCell {
    ham: Mutex<Ham>,
    name: &'static str,
}

/// A locked shard: the machine guard plus its lock-order token.
pub struct ShardGuard<'a> {
    guard: MutexGuard<'a, Ham>,
    _held: neptune_obs::lockcheck::Held,
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = Ham;
    fn deref(&self) -> &Ham {
        &self.guard
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut Ham {
        &mut self.guard
    }
}

/// A consistent cross-shard read snapshot: one published [`CommittedView`]
/// per shard, assembled so that no cross-shard transaction is visible on
/// one participating shard but not another.
#[derive(Clone)]
pub struct MultiView {
    views: Vec<Arc<CommittedView>>,
}

impl MultiView {
    /// How many shards this snapshot covers.
    pub fn shard_count(&self) -> usize {
        self.views.len()
    }

    /// The home shard of `context` under this snapshot's shard count.
    pub fn shard_of(&self, context: ContextId) -> usize {
        (context.0 % self.views.len() as u64) as usize
    }

    /// The published view of `context`'s home shard.
    pub fn view_for(&self, context: ContextId) -> &Arc<CommittedView> {
        &self.views[self.shard_of(context)]
    }

    /// The published view of shard `index`.
    pub fn view(&self, index: usize) -> &Arc<CommittedView> {
        &self.views[index]
    }

    /// The highest commit sequence visible anywhere in this snapshot.
    pub fn max_seq(&self) -> u64 {
        self.views.iter().map(|v| v.commit_seq()).max().unwrap_or(0)
    }

    /// All live contexts across every shard, sorted. Non-zero shards carry
    /// a vestigial main-context graph from their own creation; context 0's
    /// home is shard 0, so those are skipped.
    pub fn contexts(&self) -> Vec<ContextId> {
        let mut ids: Vec<ContextId> = Vec::new();
        for (k, view) in self.views.iter().enumerate() {
            ids.extend(
                view.contexts()
                    .into_iter()
                    .filter(|c| k == 0 || *c != MAIN_CONTEXT),
            );
        }
        ids.sort_unstable();
        ids
    }
}

/// The sharded machine. See the module docs for the design.
pub struct ShardedHam {
    shards: Vec<ShardCell>,
    /// Per-shard publication slots, cloned out of each machine at assembly
    /// so views load without touching any shard lock — the sharded read
    /// path is as lock-free as the single-machine one.
    published: Vec<Arc<Published<CommittedView>>>,
    /// The shared global commit-sequence source (also held by every shard).
    commit_seq: Arc<AtomicU64>,
    /// Global context-id allocator: ids are handed out here (not by the
    /// shards) so a context's home shard is a pure function of its id.
    next_context: Mutex<u64>,
    cross_log: Mutex<CrossLog>,
    /// The active explicit transaction, if any. Writers must be externally
    /// serialized while one is open (the server's gate does this), exactly
    /// as `&mut Ham` serializes the unsharded machine.
    txn: Mutex<Option<TxnState>>,
    /// Logical transaction-id allocator for [`ShardedHam::begin_transaction`],
    /// seeded above every id any shard has persisted — a real identifier,
    /// not a prediction of the commit sequence (which is only chosen at
    /// commit time).
    next_txn: AtomicU64,
    directory: PathBuf,
    project_id: ProjectId,
}

/// Names for lockcheck tokens (must be `&'static str`).
static SHARD_NAMES: [&str; MAX_SHARDS] = {
    // Indexed display names without runtime formatting.
    [
        "shard 0", "shard 1", "shard 2", "shard 3", "shard 4", "shard 5", "shard 6", "shard 7",
        "shard 8", "shard 9", "shard 10", "shard 11", "shard 12", "shard 13", "shard 14",
        "shard 15", "shard 16", "shard 17", "shard 18", "shard 19", "shard 20", "shard 21",
        "shard 22", "shard 23", "shard 24", "shard 25", "shard 26", "shard 27", "shard 28",
        "shard 29", "shard 30", "shard 31", "shard 32", "shard 33", "shard 34", "shard 35",
        "shard 36", "shard 37", "shard 38", "shard 39", "shard 40", "shard 41", "shard 42",
        "shard 43", "shard 44", "shard 45", "shard 46", "shard 47", "shard 48", "shard 49",
        "shard 50", "shard 51", "shard 52", "shard 53", "shard 54", "shard 55", "shard 56",
        "shard 57", "shard 58", "shard 59", "shard 60", "shard 61", "shard 62", "shard 63",
    ]
};

fn count_metric(name: &'static str) {
    if neptune_obs::enabled() {
        neptune_obs::registry().counter(name).inc();
    }
}

fn count_shard_commit(index: usize) {
    if neptune_obs::enabled() {
        neptune_obs::registry()
            .counter(&neptune_obs::labeled(
                "neptune_ham_shard_commits_total",
                "shard",
                SHARD_NAMES[index].trim_start_matches("shard "),
            ))
            .inc();
    }
}

impl ShardedHam {
    // =====================================================================
    // Lifecycle
    // =====================================================================

    /// Create a new sharded store: shard 0 at `directory` (v1-compatible
    /// layout), shards 1..n under `shard.<k>/`, and a `shards.meta` file
    /// recording the count. `nshards` must be in `1..=64`.
    pub fn create(
        directory: impl AsRef<Path>,
        protections: Protections,
        nshards: usize,
    ) -> Result<(ShardedHam, ProjectId, Time)> {
        Self::create_with(StdVfs::arc(), directory, protections, nshards)
    }

    /// [`ShardedHam::create`] on an explicit [`Vfs`] (fault injection).
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        directory: impl AsRef<Path>,
        protections: Protections,
        nshards: usize,
    ) -> Result<(ShardedHam, ProjectId, Time)> {
        if nshards == 0 || nshards > MAX_SHARDS {
            return Err(HamError::TransactionState {
                reason: "shard count must be between 1 and 64",
            });
        }
        let directory = directory.as_ref().to_path_buf();
        let mut hams = Vec::with_capacity(nshards);
        let mut project_id = ProjectId(0);
        let mut created = Time(0);
        for k in 0..nshards {
            let (ham, pid, t) =
                Ham::create_graph_with(Arc::clone(&vfs), shard_dir(&directory, k), protections)?;
            if k == 0 {
                project_id = pid;
                created = t;
            }
            hams.push(ham);
        }
        // Written last: a crash mid-create leaves a valid single-shard
        // store at the root and orphan shard directories that reopening
        // with the intended count would recreate.
        if nshards > 1 {
            let mut w = Writer::new();
            w.put_u64(nshards as u64);
            write_snapshot_with(vfs.as_ref(), directory.join(SHARDS_FILE), w.as_slice())?;
        }
        let sharded = Self::assemble(directory, project_id, hams);
        Ok((sharded, project_id, created))
    }

    /// Open an existing store, sharded or not: `shards.meta` (absent ⇒ 1)
    /// names the shard count; every shard recovers independently from its
    /// own snapshot + WAL, and the global commit sequence resumes from the
    /// maximum any shard persisted.
    pub fn open(directory: impl AsRef<Path>) -> Result<(ShardedHam, ContextId, ProjectId)> {
        Self::open_with(StdVfs::arc(), directory)
    }

    /// [`ShardedHam::open`] on an explicit [`Vfs`] (fault injection).
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        directory: impl AsRef<Path>,
    ) -> Result<(ShardedHam, ContextId, ProjectId)> {
        let directory = directory.as_ref().to_path_buf();
        let nshards = read_shard_count(vfs.as_ref(), &directory)?;
        let mut hams = Vec::with_capacity(nshards);
        let mut project_id = ProjectId(0);
        for k in 0..nshards {
            let (ham, _, pid) =
                Ham::open_existing_with(Arc::clone(&vfs), shard_dir(&directory, k))?;
            if k == 0 {
                project_id = pid;
            }
            hams.push(ham);
        }
        let sharded = Self::assemble(directory, project_id, hams);
        Ok((sharded, MAIN_CONTEXT, project_id))
    }

    /// Wrap an already-open single machine as a one-shard `ShardedHam` —
    /// the adapter embedders (the server, tests) use to run v1 stores
    /// through the sharded code paths without re-opening them.
    pub fn from_ham(ham: Ham) -> ShardedHam {
        let directory = ham.directory().to_path_buf();
        let project_id = ham.project_id();
        Self::assemble(directory, project_id, vec![ham])
    }

    fn assemble(directory: PathBuf, project_id: ProjectId, mut hams: Vec<Ham>) -> ShardedHam {
        let count = hams.len();
        let commit_seq = hams[0].commit_seq_handle();
        let mut next_context = 1;
        let mut next_txn = 1;
        for (k, ham) in hams.iter_mut().enumerate() {
            ham.set_shard_identity(k, count);
            ham.attach_commit_seq(Arc::clone(&commit_seq));
            next_context = next_context.max(ham.next_context_hint());
            next_txn = next_txn.max(ham.next_txn_hint());
        }
        // The identity/sequence rebinding above predates any publication a
        // reader could load through these handles, because nothing shares
        // the machines until this constructor returns — but the shard
        // identity must reach views, so republish once per shard.
        let published: Vec<Arc<Published<CommittedView>>> = hams
            .iter_mut()
            .map(|ham| {
                ham.republish();
                ham.published_handle()
            })
            .collect();
        ShardedHam {
            published,
            shards: hams
                .into_iter()
                .enumerate()
                .map(|(k, ham)| ShardCell {
                    ham: Mutex::new(ham),
                    name: SHARD_NAMES[k],
                })
                .collect(),
            commit_seq,
            next_context: Mutex::new(next_context),
            cross_log: Mutex::new(CrossLog::default()),
            txn: Mutex::new(None),
            next_txn: AtomicU64::new(next_txn),
            directory,
            project_id,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The store's project id (shard 0's — the root store).
    pub fn project_id(&self) -> ProjectId {
        self.project_id
    }

    /// The store's root directory.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// The home shard of `context`.
    pub fn shard_of(&self, context: ContextId) -> usize {
        (context.0 % self.shards.len() as u64) as usize
    }

    // =====================================================================
    // Locking
    // =====================================================================

    /// Lock shard `index` (rank `lockcheck::shard(index)`).
    pub fn lock_shard(&self, index: usize) -> ShardGuard<'_> {
        let cell = &self.shards[index];
        let held = neptune_obs::lockcheck::acquire(neptune_obs::lockcheck::shard(index), cell.name);
        let guard = cell.ham.lock().unwrap_or_else(PoisonError::into_inner);
        ShardGuard { guard, _held: held }
    }

    /// Lock `context`'s home shard. If an explicit transaction is open and
    /// this shard has not joined it yet, a per-shard transaction is begun
    /// so the shard's operations commit (or abort) with the logical one.
    pub fn lock_home(&self, context: ContextId) -> Result<ShardGuard<'_>> {
        let index = self.shard_of(context);
        let mut guard = self.lock_shard(index);
        self.join_txn(index, &mut guard)?;
        Ok(guard)
    }

    /// Join shard `index` (already locked by the caller, its machine at
    /// `guard`) to the open explicit transaction, if any: the first time
    /// the logical transaction touches a shard, a per-shard transaction is
    /// begun on it so the shard's operations defer and then commit (or
    /// abort) with the logical one. Returns whether a transaction is open.
    ///
    /// Brief txn-state peek *after* the caller took the shard lock; the
    /// commit path never waits on a shard lock while holding the txn
    /// state, so this ordering cannot deadlock.
    fn join_txn(&self, index: usize, guard: &mut Ham) -> Result<bool> {
        let mut txn = self.txn.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(state) = txn.as_mut() else {
            return Ok(false);
        };
        if state.shards.insert(index) {
            guard.begin_transaction()?;
        }
        Ok(true)
    }

    /// Lock several shards deadlock-free: ascending index order is
    /// ascending lockcheck rank.
    fn lock_ascending(&self, indices: &BTreeSet<usize>) -> Vec<(usize, ShardGuard<'_>)> {
        indices.iter().map(|&k| (k, self.lock_shard(k))).collect()
    }

    // =====================================================================
    // Context operations (the machine-level ops the server routes here)
    // =====================================================================

    /// Fork a new context from `from`. The id is allocated globally, so
    /// the child's home shard is `id % nshards` — usually a different
    /// shard than the parent's, which is what spreads independent work
    /// across independent commit paths.
    pub fn create_context(&self, from: ContextId) -> Result<ContextId> {
        let parent_shard = self.shard_of(from);
        let id = {
            let mut next = self
                .next_context
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let id = ContextId(*next);
            *next += 1;
            id
        };
        let child_shard = self.shard_of(id);
        if child_shard == parent_shard {
            let mut guard = self.lock_home(from)?;
            guard.create_context_as(id, from)?;
            count_shard_commit(parent_shard);
            return Ok(id);
        }
        // Cross-shard fork: export the parent graph under both locks, then
        // adopt it on the child shard. Only the child shard commits, so no
        // cross-log entry is needed — there is no pair to tear.
        let locks: BTreeSet<usize> = [parent_shard, child_shard].into_iter().collect();
        let mut guards = self.lock_ascending(&locks);
        let (graph, fork_time) = {
            let parent = guards
                .iter()
                .find(|(k, _)| *k == parent_shard)
                .expect("parent shard locked");
            parent.1.export_graph(from)?
        };
        let child = guards
            .iter_mut()
            .find(|(k, _)| *k == child_shard)
            .expect("child shard locked");
        // Join the open explicit transaction, if any. Only the child shard
        // writes (the parent is just read), so only it joins — the adopted
        // context then commits or rolls back with the logical transaction,
        // exactly as a fork inside a transaction does on the unsharded
        // machine. The commit counters move to commit_transaction in that
        // case, where the deferred work actually becomes durable.
        let deferred = self.join_txn(child_shard, &mut child.1)?;
        child.1.adopt_context(id, from, fork_time, graph)?;
        if !deferred {
            count_metric("neptune_ham_cross_shard_txns_total");
            count_shard_commit(child_shard);
        }
        Ok(id)
    }

    /// Merge `child` back into its parent. Same-shard pairs take the
    /// single-machine path; cross-shard pairs run the two-phase protocol:
    /// both shards locked in rank order, one forced commit sequence, the
    /// pair noted in the cross log before either half commits. Inside an
    /// open explicit transaction, a cross-shard pair instead joins the
    /// transaction (both halves defer), so the logical commit/abort
    /// resolves the merge with everything else.
    pub fn merge_context(&self, child: ContextId, policy: ConflictPolicy) -> Result<MergeReport> {
        let child_shard = self.shard_of(child);
        let (parent, fork_time) = {
            let guard = self.lock_shard(child_shard);
            guard
                .context_forked_from(child)?
                .ok_or(HamError::TransactionState {
                    reason: "cannot merge the main context",
                })?
        };
        let parent_shard = self.shard_of(parent);
        if parent_shard == child_shard {
            let mut guard = self.lock_home(child)?;
            let report = guard.merge_context(child, policy)?;
            count_shard_commit(child_shard);
            return Ok(report);
        }
        let locks: BTreeSet<usize> = [parent_shard, child_shard].into_iter().collect();
        let mut guards = self.lock_ascending(&locks);
        // Re-read under both locks: a concurrent merge may have advanced
        // the fork time between the peek above and taking the locks. The
        // parent context itself can never change (merges re-fork from the
        // same parent), so the lock set stays valid.
        let (_, fork_time) = {
            let child_g = guards
                .iter()
                .find(|(k, _)| *k == child_shard)
                .expect("child shard locked");
            let from = child_g.1.context_forked_from(child)?;
            let _ = fork_time;
            from.ok_or(HamError::TransactionState {
                reason: "cannot merge the main context",
            })?
        };
        let child_export = {
            let child_g = guards
                .iter()
                .find(|(k, _)| *k == child_shard)
                .expect("child shard locked");
            child_g.1.export_graph(child)?.0
        };
        // An open explicit transaction absorbs the merge instead of the
        // immediate two-phase commit below: both shards join it, the two
        // halves defer into their per-shard transactions, and
        // commit_transaction later stamps one shared sequence (plus the
        // cross-log entry) for the whole logical transaction — so
        // abort_transaction rolls the merge back atomically, matching the
        // unsharded machine.
        let mut deferred = false;
        for (k, guard) in guards.iter_mut() {
            deferred = self.join_txn(*k, guard)?;
        }
        if deferred {
            let report = {
                let parent_g = guards
                    .iter_mut()
                    .find(|(k, _)| *k == parent_shard)
                    .expect("parent shard locked");
                parent_g
                    .1
                    .merge_foreign(parent, &child_export, fork_time, policy)?
            };
            let new_fork = {
                let parent_g = guards
                    .iter()
                    .find(|(k, _)| *k == parent_shard)
                    .expect("parent shard locked");
                parent_g.1.graph(parent)?.now()
            };
            let child_g = guards
                .iter_mut()
                .find(|(k, _)| *k == child_shard)
                .expect("child shard locked");
            child_g.1.set_fork_point(child, parent, new_fork)?;
            return Ok(report);
        }
        let seq = self.commit_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mask = (1u64 << parent_shard) | (1u64 << child_shard);
        self.push_cross_entry(CrossEntry { seq, mask });

        // Phase 1: the parent folds the child in.
        let parent_result: Result<(MergeReport, Time)> = {
            let parent_g = guards
                .iter_mut()
                .find(|(k, _)| *k == parent_shard)
                .expect("parent shard locked");
            (|| {
                parent_g.1.begin_transaction()?;
                let report =
                    match parent_g
                        .1
                        .merge_foreign(parent, &child_export, fork_time, policy)
                    {
                        Ok(r) => r,
                        Err(e) => {
                            let _ = parent_g.1.abort_transaction();
                            return Err(e);
                        }
                    };
                parent_g.1.force_commit_seq(seq);
                parent_g.1.commit_transaction()?;
                let new_fork = parent_g.1.graph(parent)?.now();
                Ok((report, new_fork))
            })()
        };
        let (report, new_fork) = match parent_result {
            Ok(v) => v,
            Err(e) => {
                // Nothing committed anywhere: retract the pair.
                self.remove_cross_entry(seq);
                return Err(e);
            }
        };

        // Phase 2: the child re-forks from the merge point.
        let child_result: Result<()> = {
            let child_g = guards
                .iter_mut()
                .find(|(k, _)| *k == child_shard)
                .expect("child shard locked");
            (|| {
                child_g.1.begin_transaction()?;
                if let Err(e) = child_g.1.set_fork_point(child, parent, new_fork) {
                    let _ = child_g.1.abort_transaction();
                    return Err(e);
                }
                child_g.1.force_commit_seq(seq);
                child_g.1.commit_transaction()?;
                Ok(())
            })()
        };
        if let Err(e) = child_result {
            // The parent half is durable; the pair is now two independent
            // transactions (the child still forks from the old point, which
            // remains valid history on the parent). Stop advertising the
            // sequence as a pair so readers do not spin on it.
            self.remove_cross_entry(seq);
            return Err(e);
        }
        count_metric("neptune_ham_cross_shard_txns_total");
        count_shard_commit(parent_shard);
        count_shard_commit(child_shard);
        Ok(report)
    }

    /// Destroy `id` on its home shard. Children forked from it on other
    /// shards become partitioned — the same observable state the unsharded
    /// machine reports after destroying a forked parent.
    pub fn destroy_context(&self, id: ContextId) -> Result<()> {
        let shard = self.shard_of(id);
        let mut guard = self.lock_home(id)?;
        guard.destroy_context(id)?;
        count_shard_commit(shard);
        Ok(())
    }

    /// All live contexts across every shard, read from published views.
    pub fn contexts(&self) -> Vec<ContextId> {
        self.multi_view().contexts()
    }

    /// All live contexts read from the *live* machines (shards locked in
    /// rank order) — includes contexts created inside an open explicit
    /// transaction, which published views cannot show yet. The server's
    /// read-your-writes `ListContexts` path.
    pub fn live_contexts(&self) -> Vec<ContextId> {
        let mut ids: Vec<ContextId> = Vec::new();
        for k in 0..self.shards.len() {
            let guard = self.lock_shard(k);
            ids.extend(
                guard
                    .contexts()
                    .into_iter()
                    // Non-zero shards' own MAIN graphs are vestigial
                    // bootstrap state, not user-visible contexts.
                    .filter(|id| !(k != 0 && *id == MAIN_CONTEXT)),
            );
        }
        ids.sort_unstable_by_key(|id| id.0);
        ids
    }

    // =====================================================================
    // Explicit transactions
    // =====================================================================

    /// Begin an explicit transaction. Shards join lazily as
    /// [`ShardedHam::lock_home`] routes operations to them. Writers must
    /// be externally serialized while one is open (the server's gate).
    ///
    /// Returns the logical transaction id: a dedicated monotonic counter
    /// (mirroring the unsharded [`Ham::begin_transaction`]), *not* the
    /// commit sequence the transaction will eventually stamp — that is
    /// only chosen at commit time.
    pub fn begin_transaction(&self) -> Result<u64> {
        let mut txn = self.txn.lock().unwrap_or_else(PoisonError::into_inner);
        if txn.is_some() {
            return Err(HamError::TransactionState {
                reason: "transaction already active",
            });
        }
        *txn = Some(TxnState::default());
        Ok(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Commit the active explicit transaction on every shard it touched.
    /// Multi-shard transactions stamp one shared sequence and are noted in
    /// the cross log, like the internal two-phase ops.
    pub fn commit_transaction(&self) -> Result<()> {
        // Take the shard set and release the txn state *before* touching
        // any shard lock (the deadlock rule lock_home relies on).
        let state = {
            let mut txn = self.txn.lock().unwrap_or_else(PoisonError::into_inner);
            txn.take().ok_or(HamError::TransactionState {
                reason: "no active transaction",
            })?
        };
        if state.shards.is_empty() {
            return Ok(());
        }
        let mut guards = self.lock_ascending(&state.shards);
        let cross = state.shards.len() > 1;
        let mut entry_seq = None;
        if cross {
            let seq = self.commit_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let mask = state.shards.iter().fold(0u64, |m, &k| m | (1u64 << k));
            self.push_cross_entry(CrossEntry { seq, mask });
            entry_seq = Some(seq);
        }
        let mut first_err = None;
        for (k, guard) in guards.iter_mut() {
            if first_err.is_some() {
                // An earlier shard's commit failed (and rolled itself
                // back): abort this shard's half so the logical transaction
                // fails whole on every not-yet-committed shard
                // (already-committed shards stay durable — the cross-shard
                // atomicity limit documented above).
                let _ = guard.abort_transaction();
                continue;
            }
            if let Some(seq) = entry_seq {
                guard.force_commit_seq(seq);
            }
            match guard.commit_transaction() {
                Ok(()) => count_shard_commit(*k),
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            if let Some(seq) = entry_seq {
                self.remove_cross_entry(seq);
            }
            return Err(e);
        }
        if cross {
            count_metric("neptune_ham_cross_shard_txns_total");
        }
        Ok(())
    }

    /// Abort the active explicit transaction on every shard it touched.
    pub fn abort_transaction(&self) -> Result<()> {
        let state = {
            let mut txn = self.txn.lock().unwrap_or_else(PoisonError::into_inner);
            txn.take().ok_or(HamError::TransactionState {
                reason: "no active transaction",
            })?
        };
        let mut guards = self.lock_ascending(&state.shards);
        let mut first_err = None;
        for (_, guard) in guards.iter_mut() {
            if let Err(e) = guard.abort_transaction() {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Checkpoint every shard (ascending, one at a time — shards fold
    /// their WALs independently).
    pub fn checkpoint(&self) -> Result<()> {
        for k in 0..self.shards.len() {
            let mut guard = self.lock_shard(k);
            guard.checkpoint()?;
        }
        Ok(())
    }

    // =====================================================================
    // Reads
    // =====================================================================

    /// The published view of `context`'s home shard — the single-shard
    /// lock-free read path, identical to the unsharded one: one epoch
    /// check, no machine lock.
    pub fn read_view(&self, context: ContextId) -> Arc<CommittedView> {
        self.published[self.shard_of(context)].load()
    }

    /// The publication handle for shard `index` (lock-free loads).
    pub fn published_handle(&self, index: usize) -> Arc<Published<CommittedView>> {
        Arc::clone(&self.published[index])
    }

    /// Load every shard's published view — no machine lock.
    fn published_views(&self) -> Vec<Arc<CommittedView>> {
        self.published.iter().map(|p| p.load()).collect()
    }

    /// Assemble a consistent cross-shard snapshot: per-shard published
    /// views such that every cross-log pair is either fully visible or
    /// fully invisible. Bounded retry on skew (counted), then a full-lock
    /// fallback (counted) that cannot observe a half-published pair
    /// because publishes happen under the shard locks it holds.
    pub fn multi_view(&self) -> MultiView {
        let mut views = self.published_views();
        for _ in 0..SKEW_RETRIES {
            let lagging = self.torn_shards(&views);
            if lagging == 0 {
                return MultiView { views };
            }
            count_metric("neptune_ham_view_skew_retries_total");
            for (k, view) in views.iter_mut().enumerate() {
                if lagging & (1u64 << k) != 0 {
                    *view = self.published[k].load();
                }
            }
        }
        // Fallback: with every shard lock held, no cross-shard commit can
        // be between its two halves' publishes.
        count_metric("neptune_ham_multiview_fallbacks_total");
        let all: BTreeSet<usize> = (0..self.shards.len()).collect();
        let guards = self.lock_ascending(&all);
        let views: Vec<Arc<CommittedView>> =
            guards.iter().map(|(_, g)| g.committed_view()).collect();
        if self.torn_shards(&views) != 0 {
            // Defensive: must be unreachable. Metrics-proof tests assert
            // this counter stays zero.
            count_metric("neptune_ham_multiview_torn_total");
        }
        MultiView { views }
    }

    /// Bitmask of shards lagging behind some cross-log pair partially
    /// visible in `views` (0 = consistent).
    fn torn_shards(&self, views: &[Arc<CommittedView>]) -> u64 {
        let log = self
            .cross_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut lagging = 0u64;
        for entry in &log.entries {
            let mut seen = false;
            let mut missing = 0u64;
            for (k, view) in views.iter().enumerate() {
                if entry.mask & (1u64 << k) == 0 {
                    continue;
                }
                if view.commit_seq() >= entry.seq {
                    seen = true;
                } else {
                    missing |= 1u64 << k;
                }
            }
            if seen && missing != 0 {
                lagging |= missing;
            }
        }
        lagging
    }

    fn push_cross_entry(&self, entry: CrossEntry) {
        let mut log = self
            .cross_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        log.entries.push_back(entry);
        if log.entries.len() > CROSS_LOG_CAP {
            // Evict only pairs every participant has published: dropping an
            // unpublished pair would let a torn read through undetected, so
            // the log grows past the cap instead. Published seqs come from
            // the lock-free slots — this path runs while holding shard
            // locks, so it must not take any itself.
            let views: Vec<u64> = self
                .published
                .iter()
                .map(|p| p.load().commit_seq())
                .collect();
            while log.entries.len() > CROSS_LOG_CAP {
                let Some(front) = log.entries.front().copied() else {
                    break;
                };
                let fully_published = (0..views.len())
                    .filter(|k| front.mask & (1u64 << k) != 0)
                    .all(|k| views[k] >= front.seq);
                if fully_published {
                    log.entries.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn remove_cross_entry(&self, seq: u64) {
        let mut log = self
            .cross_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        log.entries.retain(|e| e.seq != seq);
    }

    // =====================================================================
    // Integrity, demons, caches
    // =====================================================================

    /// Full cross-shard integrity check: every shard's graphs plus the
    /// *merged* fork topology — the check each shard must skip for foreign
    /// parents runs here over the union of all shards' threads.
    pub fn violations(&self) -> Vec<Violation> {
        let views = self.published_views();
        let mut merged = HashMap::new();
        for (k, view) in views.iter().enumerate() {
            for (id, thread) in view.threads() {
                if k != 0 && *id == MAIN_CONTEXT {
                    continue; // vestigial per-shard main graph
                }
                merged.insert(*id, thread.clone());
            }
        }
        thread_violations(&merged, (0, 1))
    }

    /// Register a demon callback on every shard (contexts live anywhere).
    pub fn register_demon_callback<F>(&self, name: impl Into<String>, callback: F)
    where
        F: Fn(&DemonFireInfo) + Clone + Send + Sync + 'static,
    {
        let name = name.into();
        for k in 0..self.shards.len() {
            let mut guard = self.lock_shard(k);
            guard.register_demon_callback(name.clone(), callback.clone());
        }
    }

    /// Aggregate version-cache statistics across shards.
    pub fn version_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for k in 0..self.shards.len() {
            let s = self.lock_shard(k).version_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
            total.bytes += s.bytes;
        }
        total
    }

    /// Enable or disable every shard's version cache.
    pub fn set_version_cache_enabled(&self, enabled: bool) {
        for k in 0..self.shards.len() {
            self.lock_shard(k).set_version_cache_enabled(enabled);
        }
    }

    /// Configure every shard's version cache bounds.
    pub fn configure_version_cache(&self, max_entries: usize, max_bytes: u64) {
        for k in 0..self.shards.len() {
            self.lock_shard(k)
                .configure_version_cache(max_entries, max_bytes);
        }
    }

    /// The last commit sequence handed out (monotonic across all shards).
    pub fn last_commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Relaxed)
    }
}

/// Read `shards.meta` (absent ⇒ 1 — v1 stores and unsharded creates).
pub fn read_shard_count(vfs: &dyn Vfs, directory: &Path) -> Result<usize> {
    let path = directory.join(SHARDS_FILE);
    if !vfs.exists(&path) {
        return Ok(1);
    }
    let bytes = read_snapshot_with(vfs, path)?;
    let mut r = Reader::new(&bytes);
    let n = r.get_u64()? as usize;
    if n == 0 || n > MAX_SHARDS {
        return Err(HamError::Storage(
            neptune_storage::StorageError::BadFileHeader {
                context: "shards.meta: shard count out of range",
            },
        ));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Time;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Fork enough contexts that at least one lands on every shard.
    fn fork_onto_every_shard(ham: &ShardedHam) -> Vec<ContextId> {
        let n = ham.shard_count();
        let mut ctxs = Vec::new();
        while {
            let covered: BTreeSet<usize> = ctxs.iter().map(|c| ham.shard_of(*c)).collect();
            covered.len() < n
        } {
            ctxs.push(ham.create_context(MAIN_CONTEXT).unwrap());
        }
        ctxs
    }

    #[test]
    fn contexts_spread_across_shards_and_commit_independently() {
        let dir = tmpdir("spread");
        let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
        let ctxs = fork_onto_every_shard(&ham);
        for &ctx in &ctxs {
            let mut guard = ham.lock_home(ctx).unwrap();
            let (node, t) = guard.add_node(ctx, true).unwrap();
            guard
                .modify_node(ctx, node, t, b"shard-local\n".to_vec(), &[])
                .unwrap();
        }
        let all = ham.contexts();
        assert!(all.contains(&MAIN_CONTEXT));
        for ctx in &ctxs {
            assert!(all.contains(ctx), "missing {ctx:?} in {all:?}");
        }
        assert_eq!(ham.violations(), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_shard_merge_folds_child_changes_into_parent() {
        let dir = tmpdir("xmerge");
        let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
        // Find a context whose home differs from the main context's shard 0.
        let child = loop {
            let c = ham.create_context(MAIN_CONTEXT).unwrap();
            if ham.shard_of(c) != 0 {
                break c;
            }
        };
        let (node, t) = {
            let mut guard = ham.lock_home(child).unwrap();
            let (node, t) = guard.add_node(child, true).unwrap();
            guard
                .modify_node(child, node, t, b"born on a far shard\n".to_vec(), &[])
                .unwrap();
            (node, t)
        };
        let _ = t;
        let report = ham.merge_context(child, ConflictPolicy::Fail).unwrap();
        assert!(report.conflicts.is_empty());
        // The node is now visible in the main context on shard 0.
        let main = ham.lock_home(MAIN_CONTEXT).unwrap();
        let opened = main
            .read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap();
        assert_eq!(&opened.contents[..], b"born on a far shard\n");
        drop(main);
        // The child re-forked from the merge point; full topology is clean.
        assert_eq!(ham.violations(), Vec::new());
        // Readers assemble a consistent pair.
        let mv = ham.multi_view();
        let (p, t) = mv
            .view_for(child)
            .context_forked_from(child)
            .unwrap()
            .unwrap();
        assert_eq!(p, MAIN_CONTEXT);
        let parent_now = mv.view_for(MAIN_CONTEXT).context_now(MAIN_CONTEXT).unwrap();
        assert!(
            t <= parent_now,
            "fork time {t:?} beyond parent clock {parent_now:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_store_recovers_after_reopen() {
        let dir = tmpdir("reopen");
        let seq_before;
        let ctxs;
        {
            let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
            ctxs = fork_onto_every_shard(&ham);
            for &ctx in &ctxs {
                let mut guard = ham.lock_home(ctx).unwrap();
                let (node, t) = guard.add_node(ctx, true).unwrap();
                guard
                    .modify_node(ctx, node, t, format!("ctx {}\n", ctx.0).into_bytes(), &[])
                    .unwrap();
            }
            // One cross-shard merge so a forced sequence is on disk too.
            let far = ctxs
                .iter()
                .find(|c| ham.shard_of(**c) != 0)
                .copied()
                .unwrap();
            ham.merge_context(far, ConflictPolicy::Fail).unwrap();
            seq_before = ham.last_commit_seq();
        }
        let (ham, main, _) = ShardedHam::open(&dir).unwrap();
        assert_eq!(main, MAIN_CONTEXT);
        assert_eq!(ham.shard_count(), 4);
        let all = ham.contexts();
        for ctx in &ctxs {
            assert!(all.contains(ctx), "missing {ctx:?} after reopen");
        }
        // The global sequence resumes at (at least) where it left off.
        assert!(ham.last_commit_seq() >= seq_before);
        // New contexts don't collide with recovered ids.
        let fresh = ham.create_context(MAIN_CONTEXT).unwrap();
        assert!(!all.contains(&fresh));
        assert_eq!(ham.violations(), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_store_opens_as_single_shard() {
        let dir = tmpdir("v1");
        let node;
        {
            let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
            let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
            ham.modify_node(MAIN_CONTEXT, n, t, b"plain store\n".to_vec(), &[])
                .unwrap();
            node = n;
        }
        let (ham, _, _) = ShardedHam::open(&dir).unwrap();
        assert_eq!(ham.shard_count(), 1);
        let guard = ham.lock_home(MAIN_CONTEXT).unwrap();
        let opened = guard
            .read_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
            .unwrap();
        assert_eq!(&opened.contents[..], b"plain store\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_transaction_spans_shards_and_aborts_whole() {
        let dir = tmpdir("txn");
        let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
        let ctxs = fork_onto_every_shard(&ham);
        let before: Vec<_> = ctxs
            .iter()
            .map(|&c| ham.read_view(c).context_now(c).unwrap())
            .collect();
        ham.begin_transaction().unwrap();
        for &ctx in &ctxs {
            let mut guard = ham.lock_home(ctx).unwrap();
            guard.add_node(ctx, true).unwrap();
        }
        ham.abort_transaction().unwrap();
        for (&ctx, &t) in ctxs.iter().zip(&before) {
            assert_eq!(
                ham.read_view(ctx).context_now(ctx).unwrap(),
                t,
                "abort must rewind {ctx:?} on its shard"
            );
        }
        // And a committed one lands everywhere with one shared sequence.
        ham.begin_transaction().unwrap();
        for &ctx in &ctxs {
            let mut guard = ham.lock_home(ctx).unwrap();
            guard.add_node(ctx, true).unwrap();
        }
        ham.commit_transaction().unwrap();
        let seqs: BTreeSet<u64> = ctxs
            .iter()
            .map(|&c| ham.read_view(c).commit_seq())
            .collect();
        assert_eq!(seqs.len(), 1, "all shards must publish the same sequence");
        assert_eq!(ham.violations(), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_shard_context_ops_join_explicit_transaction() {
        let dir = tmpdir("txncross");
        let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
        let child = loop {
            let c = ham.create_context(MAIN_CONTEXT).unwrap();
            if ham.shard_of(c) != 0 {
                break c;
            }
        };
        {
            let mut guard = ham.lock_home(child).unwrap();
            let (node, t) = guard.add_node(child, true).unwrap();
            guard
                .modify_node(child, node, t, b"txn fodder\n".to_vec(), &[])
                .unwrap();
        }
        let contexts_before = ham.contexts();
        let main_before = ham
            .read_view(MAIN_CONTEXT)
            .context_now(MAIN_CONTEXT)
            .unwrap();
        let fork_before = ham
            .read_view(child)
            .context_forked_from(child)
            .unwrap()
            .unwrap();

        // Abort: the cross-shard fork and both halves of the cross-shard
        // merge must roll back atomically, as on the unsharded machine.
        ham.begin_transaction().unwrap();
        let forked = loop {
            let c = ham.create_context(MAIN_CONTEXT).unwrap();
            if ham.shard_of(c) != 0 {
                break c;
            }
        };
        assert_ne!(ham.shard_of(forked), 0);
        ham.merge_context(child, ConflictPolicy::PreferChild)
            .unwrap();
        ham.abort_transaction().unwrap();
        assert_eq!(
            ham.live_contexts(),
            contexts_before,
            "contexts forked inside the aborted transaction must roll back"
        );
        assert_eq!(
            ham.read_view(MAIN_CONTEXT)
                .context_now(MAIN_CONTEXT)
                .unwrap(),
            main_before,
            "the parent half of the merge must roll back"
        );
        assert_eq!(
            ham.read_view(child)
                .context_forked_from(child)
                .unwrap()
                .unwrap(),
            fork_before,
            "the child's fork point must roll back"
        );
        assert_eq!(ham.violations(), Vec::new());

        // Commit: the same ops land, both merge halves publishing one
        // shared sequence like any multi-shard logical transaction.
        ham.begin_transaction().unwrap();
        let kept = loop {
            let c = ham.create_context(MAIN_CONTEXT).unwrap();
            if ham.shard_of(c) != 0 {
                break c;
            }
        };
        ham.merge_context(child, ConflictPolicy::PreferChild)
            .unwrap();
        ham.commit_transaction().unwrap();
        assert!(ham.contexts().contains(&kept));
        assert!(
            ham.read_view(MAIN_CONTEXT)
                .context_now(MAIN_CONTEXT)
                .unwrap()
                > main_before
        );
        let seqs: BTreeSet<u64> = [MAIN_CONTEXT, child]
            .iter()
            .map(|&c| ham.read_view(c).commit_seq())
            .collect();
        assert_eq!(
            seqs.len(),
            1,
            "both merge halves must publish the same forced sequence"
        );
        assert_eq!(ham.violations(), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_failure_aborts_remaining_shards() {
        use neptune_storage::fault::{FaultKind, FaultVfs};
        let dir = tmpdir("txnfail");
        let vfs = FaultVfs::new();
        let (ham, _, _) =
            ShardedHam::create_with(Arc::new(vfs.clone()), &dir, Protections::DEFAULT, 4).unwrap();
        let ctxs = fork_onto_every_shard(&ham);
        let before: Vec<Time> = ctxs
            .iter()
            .map(|&c| ham.read_view(c).context_now(c).unwrap())
            .collect();
        ham.begin_transaction().unwrap();
        for &ctx in &ctxs {
            let mut guard = ham.lock_home(ctx).unwrap();
            guard.add_node(ctx, true).unwrap();
        }
        // The commit's first WAL append (the lowest-ranked shard's Begin
        // record) fails: that shard rolls back, and the remaining shards
        // must be *aborted*, not durably committed behind the error the
        // caller receives.
        vfs.arm(FaultKind::FailWrite, 0);
        let err = ham.commit_transaction();
        vfs.disarm();
        assert!(err.is_err(), "commit must surface the injected failure");
        assert!(vfs.injected() > 0, "the armed fault must actually fire");
        for (&ctx, &t) in ctxs.iter().zip(&before) {
            assert_eq!(
                ham.read_view(ctx).context_now(ctx).unwrap(),
                t,
                "no shard may durably commit a failed logical transaction ({ctx:?})"
            );
        }
        assert!(!ham.in_transaction());
        // The aborted shards hold no dangling per-shard transaction: a new
        // logical transaction can join (and commit on) them again. The
        // failing shard's WAL poisoned itself, so the new work stays off
        // shard 0.
        ham.begin_transaction().unwrap();
        let far = ctxs
            .iter()
            .find(|c| ham.shard_of(**c) != 0)
            .copied()
            .unwrap();
        {
            let mut guard = ham.lock_home(far).unwrap();
            guard.add_node(far, true).unwrap();
        }
        ham.commit_transaction().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transaction_ids_are_dedicated_monotonic_counters() {
        let dir = tmpdir("txnid");
        let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 2).unwrap();
        let a = ham.begin_transaction().unwrap();
        {
            let mut guard = ham.lock_home(MAIN_CONTEXT).unwrap();
            guard.add_node(MAIN_CONTEXT, true).unwrap();
        }
        ham.commit_transaction().unwrap();
        let b = ham.begin_transaction().unwrap();
        ham.abort_transaction().unwrap();
        let c = ham.begin_transaction().unwrap();
        ham.commit_transaction().unwrap();
        // A real identifier — distinct and monotonic per transaction, not
        // a prediction of whatever commit sequence the transaction might
        // end up stamping.
        assert!(a < b && b < c, "txn ids must be monotonic: {a} {b} {c}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_view_is_internally_consistent() {
        let dir = tmpdir("mview");
        let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
        let child = loop {
            let c = ham.create_context(MAIN_CONTEXT).unwrap();
            if ham.shard_of(c) != 0 {
                break c;
            }
        };
        for _ in 0..5 {
            {
                let mut guard = ham.lock_home(child).unwrap();
                let (node, t) = guard.add_node(child, true).unwrap();
                guard
                    .modify_node(child, node, t, b"tick\n".to_vec(), &[])
                    .unwrap();
            }
            ham.merge_context(child, ConflictPolicy::PreferChild)
                .unwrap();
            let mv = ham.multi_view();
            let (p, t) = mv
                .view_for(child)
                .context_forked_from(child)
                .unwrap()
                .unwrap();
            let parent_now = mv.view_for(p).context_now(p).unwrap();
            assert!(
                t <= parent_now,
                "torn read: fork {t:?} > parent clock {parent_now:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
