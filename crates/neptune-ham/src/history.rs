//! Time-indexed versioned cells.
//!
//! The HAM keeps *"a complete version history of the hypergraph"* and can
//! answer any query *at a Time*: attribute values, link attachment offsets,
//! demons, even whether a node existed. [`Versioned<T>`] is the building
//! block: an append-only series of `(Time, Option<T>)` entries, where `None`
//! records a deletion. Queries binary-search for the newest entry at or
//! before the asked time.

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::error::Result as StorageResult;

use crate::types::Time;

/// An append-only, time-indexed value history.
///
/// Invariants: entry times strictly increase; `get_at(Time::CURRENT)` is the
/// newest entry; a `None` entry means "deleted as of this time".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned<T> {
    entries: Vec<(Time, Option<T>)>,
}

impl<T> Default for Versioned<T> {
    fn default() -> Self {
        Versioned {
            entries: Vec::new(),
        }
    }
}

impl<T> Versioned<T> {
    /// An empty history: the value exists at no time.
    pub fn new() -> Self {
        Self::default()
    }

    /// A history with a single initial entry.
    pub fn with_initial(time: Time, value: T) -> Self {
        Versioned {
            entries: vec![(time, Some(value))],
        }
    }

    /// Record `value` as of `time`.
    ///
    /// `time` must be ≥ every existing entry's time (the graph's version
    /// clock guarantees this). Setting at an existing newest time replaces
    /// that entry — several updates inside one clock tick coalesce.
    pub fn set(&mut self, time: Time, value: T) {
        self.put(time, Some(value));
    }

    /// Record a deletion as of `time`.
    pub fn delete(&mut self, time: Time) {
        self.put(time, None);
    }

    fn put(&mut self, time: Time, value: Option<T>) {
        debug_assert!(!time.is_current(), "cannot write at the CURRENT marker");
        match self.entries.last_mut() {
            Some((t, v)) if *t == time => *v = value,
            Some((t, _)) => {
                debug_assert!(*t < time, "versioned writes must be in time order");
                self.entries.push((time, value));
            }
            None => self.entries.push((time, value)),
        }
    }

    /// The value in effect at `time` (`CURRENT` = newest). `None` if the
    /// value did not exist (never set, or deleted) at that time.
    pub fn get_at(&self, time: Time) -> Option<&T> {
        self.entry_at(time).and_then(|e| e.as_ref())
    }

    /// The newest value, if it exists.
    pub fn current(&self) -> Option<&T> {
        self.get_at(Time::CURRENT)
    }

    /// Whether a (non-deleted) value exists at `time`.
    pub fn exists_at(&self, time: Time) -> bool {
        self.get_at(time).is_some()
    }

    /// The time of the entry in effect at `time`, if any.
    pub fn effective_time(&self, time: Time) -> Option<Time> {
        let idx = self.index_at(time)?;
        Some(self.entries[idx].0)
    }

    fn entry_at(&self, time: Time) -> Option<&Option<T>> {
        let idx = self.index_at(time)?;
        Some(&self.entries[idx].1)
    }

    fn index_at(&self, time: Time) -> Option<usize> {
        self.index_at_counted(time).0
    }

    /// [`Versioned::get_at`] plus the number of entries the lookup probed —
    /// the instrumented variant behind the attribute read path, so metrics
    /// can prove point-gets stay O(log n) as histories deepen.
    pub(crate) fn get_at_counted(&self, time: Time) -> (Option<&T>, u32) {
        let (idx, probes) = self.index_at_counted(time);
        (idx.and_then(|i| self.entries[i].1.as_ref()), probes)
    }

    /// Index of the newest entry at or before `time`, with a probe count.
    /// Hand-rolled binary search (identical result to
    /// `binary_search_by_key` + `Err` adjustment) so each comparison is
    /// observable; `CURRENT` resolves in zero probes.
    fn index_at_counted(&self, time: Time) -> (Option<usize>, u32) {
        if self.entries.is_empty() {
            return (None, 0);
        }
        if time.is_current() {
            return (Some(self.entries.len() - 1), 0);
        }
        // partition point of `entry.0 <= time`, counting comparisons.
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        let mut probes = 0u32;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            if self.entries[mid].0 <= time {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            (None, probes)
        } else {
            (Some(lo - 1), probes)
        }
    }

    /// All `(time, value)` change entries, oldest first (deletions included).
    pub fn entries(&self) -> impl Iterator<Item = (Time, Option<&T>)> {
        self.entries.iter().map(|(t, v)| (*t, v.as_ref()))
    }

    /// Times at which the value changed, oldest first.
    pub fn change_times(&self) -> Vec<Time> {
        self.entries.iter().map(|(t, _)| *t).collect()
    }

    /// Time of the newest change, if any — O(1), unlike
    /// `change_times().last()`, which materializes the whole history.
    pub fn last_change_time(&self) -> Option<Time> {
        self.entries.last().map(|(t, _)| *t)
    }

    /// Number of recorded changes.
    pub fn change_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove every entry with time strictly greater than `time`.
    ///
    /// This is the primitive behind transaction rollback: aborting a
    /// transaction truncates all versioned state back to the transaction's
    /// start time. Returns true if anything was removed.
    pub fn truncate_after(&mut self, time: Time) -> bool {
        let keep = self.entries.partition_point(|(t, _)| *t <= time);
        if keep < self.entries.len() {
            self.entries.truncate(keep);
            true
        } else {
            false
        }
    }
}

/// A derived creation-time index over the graph's nodes and links: two
/// time-sorted lists of `(created, id)` pairs. Because the graph's version
/// clock is monotone, an object created after `t` cannot exist at `t`, so
/// whole-graph historical reads (`getGraphQuery`, attribute queries at time
/// `t`) can restrict themselves to the `created <= t` prefix instead of
/// probing every archive ever created — the graph-level half of the
/// temporal index (DeltaGraph-style retrieval; the per-archive half lives
/// in `neptune_storage::archive`).
///
/// The index is *conservative*: it may list an object that does not exist
/// at `t` (deleted, or an id reused across a forced re-insert), but never
/// misses one that does. Consumers still filter with `exists_at`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TemporalIndex {
    nodes_by_created: Vec<(Time, u64)>,
    links_by_created: Vec<(Time, u64)>,
}

fn insert_sorted(list: &mut Vec<(Time, u64)>, time: Time, id: u64) {
    match list.last() {
        // Normal case: the clock is monotone, so records append.
        Some(&(last, _)) if last > time => {
            let pos = list.partition_point(|&(t, _)| t <= time);
            list.insert(pos, (time, id));
        }
        _ => list.push((time, id)),
    }
}

/// Ids in the `created <= time` prefix of a sorted list.
fn created_by(list: &[(Time, u64)], time: Time) -> Vec<u64> {
    let end = if time.is_current() {
        list.len()
    } else {
        list.partition_point(|&(t, _)| t <= time)
    };
    list[..end].iter().map(|&(_, id)| id).collect()
}

impl TemporalIndex {
    /// An empty index.
    pub fn new() -> TemporalIndex {
        TemporalIndex::default()
    }

    /// Rebuild from unsorted `(created, id)` records (snapshot decode,
    /// rollback recovery).
    pub fn from_records(mut nodes: Vec<(Time, u64)>, mut links: Vec<(Time, u64)>) -> TemporalIndex {
        nodes.sort_unstable();
        links.sort_unstable();
        TemporalIndex {
            nodes_by_created: nodes,
            links_by_created: links,
        }
    }

    /// Record a node creation.
    pub fn record_node(&mut self, time: Time, id: u64) {
        insert_sorted(&mut self.nodes_by_created, time, id);
    }

    /// Record a link creation.
    pub fn record_link(&mut self, time: Time, id: u64) {
        insert_sorted(&mut self.links_by_created, time, id);
    }

    /// Ids of every node created at or before `time` (unordered by id; may
    /// contain duplicates when an id was reused across a rollback).
    pub fn nodes_created_by(&self, time: Time) -> Vec<u64> {
        created_by(&self.nodes_by_created, time)
    }

    /// Ids of every link created at or before `time`.
    pub fn links_created_by(&self, time: Time) -> Vec<u64> {
        created_by(&self.links_by_created, time)
    }

    /// Total recorded creations, `(nodes, links)`.
    pub fn len(&self) -> (usize, usize) {
        (self.nodes_by_created.len(), self.links_by_created.len())
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes_by_created.is_empty() && self.links_by_created.is_empty()
    }

    /// Drop every record newer than `time` (rollback support).
    pub fn truncate_after(&mut self, time: Time) {
        self.nodes_by_created.retain(|&(t, _)| t <= time);
        self.links_by_created.retain(|&(t, _)| t <= time);
    }

    /// Clear the index.
    pub fn clear(&mut self) {
        self.nodes_by_created.clear();
        self.links_by_created.clear();
    }
}

impl<T: Encode> Encode for Versioned<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.entries.len() as u64);
        for (t, v) in &self.entries {
            t.encode(w);
            v.encode(w);
        }
    }
}

impl<T: Decode> Decode for Versioned<T> {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let count = r.get_u64()? as usize;
        let mut entries = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            let t = Time::decode(r)?;
            let v = Option::<T>::decode(r)?;
            entries.push((t, v));
        }
        Ok(Versioned { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_has_no_value() {
        let v: Versioned<u64> = Versioned::new();
        assert!(v.current().is_none());
        assert!(!v.exists_at(Time(5)));
        assert!(v.is_empty());
    }

    #[test]
    fn values_are_visible_from_their_time_onward() {
        let mut v = Versioned::new();
        v.set(Time(10), "first");
        v.set(Time(20), "second");
        assert_eq!(v.get_at(Time(9)), None);
        assert_eq!(v.get_at(Time(10)), Some(&"first"));
        assert_eq!(v.get_at(Time(15)), Some(&"first"));
        assert_eq!(v.get_at(Time(20)), Some(&"second"));
        assert_eq!(v.get_at(Time(99)), Some(&"second"));
        assert_eq!(v.current(), Some(&"second"));
    }

    #[test]
    fn deletion_is_part_of_history() {
        let mut v = Versioned::new();
        v.set(Time(1), 100u64);
        v.delete(Time(5));
        v.set(Time(9), 200);
        assert_eq!(v.get_at(Time(1)), Some(&100));
        assert_eq!(v.get_at(Time(4)), Some(&100));
        assert_eq!(v.get_at(Time(5)), None);
        assert_eq!(v.get_at(Time(8)), None);
        assert_eq!(v.get_at(Time(9)), Some(&200));
        assert!(!v.exists_at(Time(6)));
        assert!(v.exists_at(Time::CURRENT));
    }

    #[test]
    fn same_tick_updates_coalesce() {
        let mut v = Versioned::new();
        v.set(Time(3), 1u64);
        v.set(Time(3), 2);
        assert_eq!(v.change_count(), 1);
        assert_eq!(v.current(), Some(&2));
    }

    #[test]
    fn effective_time_reports_the_entry_in_force() {
        let mut v = Versioned::new();
        v.set(Time(10), 'a');
        v.set(Time(20), 'b');
        assert_eq!(v.effective_time(Time(15)), Some(Time(10)));
        assert_eq!(v.effective_time(Time(20)), Some(Time(20)));
        assert_eq!(v.effective_time(Time::CURRENT), Some(Time(20)));
        assert_eq!(v.effective_time(Time(5)), None);
    }

    #[test]
    fn truncate_after_rolls_back() {
        let mut v = Versioned::new();
        v.set(Time(1), 1u64);
        v.set(Time(5), 2);
        v.set(Time(9), 3);
        assert!(v.truncate_after(Time(5)));
        assert_eq!(v.current(), Some(&2));
        assert_eq!(v.change_count(), 2);
        assert!(!v.truncate_after(Time(5)));
        assert!(v.truncate_after(Time(0)) || v.is_empty() || v.change_count() == 0);
    }

    #[test]
    fn truncate_to_time_zero_empties() {
        let mut v = Versioned::new();
        v.set(Time(1), 1u64);
        v.truncate_after(Time(0));
        assert!(v.is_empty());
    }

    #[test]
    fn codec_roundtrip() {
        let mut v: Versioned<String> = Versioned::new();
        v.set(Time(2), "x".into());
        v.delete(Time(4));
        v.set(Time(6), "y".into());
        let decoded = Versioned::<String>::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(decoded, v);
    }

    #[test]
    fn with_initial_constructor() {
        let v = Versioned::with_initial(Time(3), 7u64);
        assert_eq!(v.get_at(Time(3)), Some(&7));
        assert_eq!(v.get_at(Time(2)), None);
    }

    #[test]
    fn temporal_index_prefixes_by_creation_time() {
        let mut ix = TemporalIndex::new();
        ix.record_node(Time(2), 1);
        ix.record_node(Time(5), 2);
        ix.record_link(Time(7), 1);
        ix.record_node(Time(9), 3);
        assert_eq!(ix.nodes_created_by(Time(1)), Vec::<u64>::new());
        assert_eq!(ix.nodes_created_by(Time(5)), vec![1, 2]);
        assert_eq!(ix.nodes_created_by(Time::CURRENT), vec![1, 2, 3]);
        assert_eq!(ix.links_created_by(Time(6)), Vec::<u64>::new());
        assert_eq!(ix.links_created_by(Time(8)), vec![1]);
    }

    #[test]
    fn temporal_index_tolerates_out_of_order_and_truncates() {
        let mut ix = TemporalIndex::new();
        ix.record_node(Time(5), 2);
        // Forced WAL replays can insert behind the newest record; the
        // index must stay sorted.
        ix.record_node(Time(2), 1);
        assert_eq!(ix.nodes_created_by(Time(3)), vec![1]);
        ix.record_node(Time(9), 3);
        ix.truncate_after(Time(5));
        assert_eq!(ix.nodes_created_by(Time::CURRENT), vec![1, 2]);
        ix.clear();
        assert!(ix.is_empty());
    }

    #[test]
    fn entries_iterator_includes_deletions() {
        let mut v = Versioned::new();
        v.set(Time(1), 1u64);
        v.delete(Time(2));
        let entries: Vec<_> = v.entries().collect();
        assert_eq!(entries, vec![(Time(1), Some(&1)), (Time(2), None)]);
    }
}
