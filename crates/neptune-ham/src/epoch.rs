//! Epoch-published immutable values.
//!
//! [`Published<T>`] is the publication point for committed snapshots: a
//! writer installs a new `Arc<T>` with [`Published::publish`], and any
//! thread grabs the current one with [`Published::load`] — without touching
//! the HAM `RwLock` or the transaction gate.
//!
//! The workspace is `#![forbid(unsafe_code)]` with no external crates, so
//! this is not a hazard-pointer/RCU structure: the slot itself is a
//! `Mutex<Arc<T>>`, and the steady-state read cost is hidden by an epoch
//! counter plus a per-thread cache. `load()` issues **one atomic load** of
//! the epoch; if the thread has already seen this epoch it returns its
//! cached `Arc` clone and never touches the mutex. Only the *first* load
//! after a publish (per thread) takes the slot mutex, for the duration of
//! one `Arc` clone — a few instructions, never held across user code.
//! Memory reclamation is plain `Arc` refcounting: a superseded view lives
//! exactly as long as the last reader holding it.
//!
//! Per-thread epoch caching also gives each thread monotonic reads (a
//! thread never observes an older view after a newer one) and gives the
//! publishing thread read-your-writes (it observes its own epoch bump).

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Process-wide id source so per-thread caches can tell instances apart.
static NEXT_HANDLE_ID: AtomicU64 = AtomicU64::new(1);

/// A thread's last load: `(handle id, epoch, value)`.
type CachedLoad = (u64, u64, Arc<dyn Any + Send + Sync>);

thread_local! {
    /// One [`CachedLoad`] per thread. A single slot suffices: a server
    /// thread only ever loads one `Published` (its HAM's committed view);
    /// pathological multi-handle use just degrades to taking the slot
    /// mutex per load.
    static LAST_LOAD: RefCell<Option<CachedLoad>> = const { RefCell::new(None) };
}

/// An atomically swapped, epoch-versioned `Arc<T>`. See the module docs for
/// the cost model.
#[derive(Debug)]
pub struct Published<T> {
    id: u64,
    epoch: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T: Send + Sync + 'static> Published<T> {
    /// Create a handle whose initial value is `value` at epoch 1.
    pub fn new(value: T) -> Self {
        Published {
            id: NEXT_HANDLE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(1),
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// The current epoch; bumped by every [`Published::publish`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Load the current value. One atomic load when this thread has
    /// already seen the current epoch; a brief slot-mutex lock (one `Arc`
    /// clone long) otherwise.
    pub fn load(&self) -> Arc<T> {
        // The epoch is read *before* the slot. If a publish lands between
        // the two, the cache is tagged with the older epoch while holding
        // the newer value — the next load refreshes; it never serves a
        // value older than its tag.
        let epoch = self.epoch.load(Ordering::Acquire);
        let cached = LAST_LOAD.with(|slot| {
            let slot = slot.borrow();
            let (id, seen, value) = slot.as_ref()?;
            if *id == self.id && *seen == epoch {
                Arc::clone(value).downcast::<T>().ok()
            } else {
                None
            }
        });
        if let Some(hit) = cached {
            return hit;
        }
        let fresh = self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        LAST_LOAD.with(|slot| {
            *slot.borrow_mut() = Some((
                self.id,
                epoch,
                Arc::clone(&fresh) as Arc<dyn Any + Send + Sync>,
            ));
        });
        fresh
    }

    /// Install `value` as the new current value, returning the new epoch.
    /// Readers that already hold the previous `Arc` keep it; new loads see
    /// this value.
    pub fn publish(&self, value: T) -> u64 {
        let arc = Arc::new(value);
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = arc;
        // Release-bump *after* the slot holds the new value, inside the
        // lock so concurrent publishers serialize value-vs-epoch pairs.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_publish() {
        let p = Published::new(1u32);
        assert_eq!(*p.load(), 1);
        assert_eq!(p.epoch(), 1);
        let e = p.publish(2);
        assert_eq!(e, 2);
        assert_eq!(*p.load(), 2);
        // Repeated loads hit the thread cache and stay correct.
        assert_eq!(*p.load(), 2);
        p.publish(3);
        assert_eq!(*p.load(), 3);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let p = Published::new(vec![1, 2, 3]);
        let old = p.load();
        p.publish(vec![9]);
        assert_eq!(*old, vec![1, 2, 3], "held Arc must not change");
        assert_eq!(*p.load(), vec![9]);
    }

    #[test]
    fn two_handles_do_not_cross_pollinate() {
        let a = Published::new(10u64);
        let b = Published::new(20u64);
        assert_eq!(*a.load(), 10);
        assert_eq!(*b.load(), 20);
        a.publish(11);
        assert_eq!(*a.load(), 11);
        assert_eq!(*b.load(), 20);
    }

    #[test]
    fn concurrent_loads_are_monotonic() {
        let p = Arc::new(Published::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let v = *p.load();
                        assert!(v >= last, "went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=500u64 {
            p.publish(v);
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*p.load(), 500);
    }
}
