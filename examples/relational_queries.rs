//! The hypertext × relational synergy (paper §5).
//!
//! "It could be very beneficial to combine the advantages that hypertext
//! provides with those provided by a relational data base. For example,
//! given such fine grained information as a symbol table, one might want
//! to find all references to a variable, not only in the code, but in all
//! the documentation as well."
//!
//! Builds a CASE project plus its documentation in one graph, then runs
//! exactly that query relationally.
//!
//! Run with: `cargo run --example relational_queries`

use neptune::prelude::*;
use neptune::relational::{build_xref, links_relation, nodes_relation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-rel-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT)?;

    // ---- Code: two Modula-2 modules -----------------------------------------
    let project = CaseProject::new(MAIN_CONTEXT);
    let lists = parse_module(
        "DEFINITION MODULE Lists;\nPROCEDURE Insert;\nEND Insert;\nPROCEDURE Remove;\nEND Remove;\nEND Lists.\n",
    )?;
    let editor = parse_module(
        "MODULE Editor;\nIMPORT Lists;\nPROCEDURE Paste;\n  Lists.Insert;\nEND Paste;\nEND Editor.\n",
    )?;
    let lists_nodes = project.ingest_module(&mut ham, &lists)?;
    let editor_nodes = project.ingest_module(&mut ham, &editor)?;
    project.link_imports(
        &mut ham,
        &[(&lists, lists_nodes.module), (&editor, editor_nodes.module)],
    )?;

    // ---- Documentation mentioning the same symbols ---------------------------
    let doc = Document::create(&mut ham, MAIN_CONTEXT, "design", "Design Notes")?;
    doc.add_section(
        &mut ham,
        doc.root,
        10,
        "List invariants",
        "Insert must keep the list sorted; Remove may not.\n",
    )?;
    doc.add_section(
        &mut ham,
        doc.root,
        20,
        "Editor",
        "Paste calls into Lists.\n",
    )?;

    // ---- Plain relational views over the hypertext ----------------------------
    println!("== nodes with their contentType ==\n");
    let nodes = nodes_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["contentType"])?;
    print!("{}", nodes.render());

    println!("\n== structural links (relation attribute) ==\n");
    let links = links_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["relation"])?;
    print!(
        "{}",
        links
            .select_eq("relation", &Value::str("isPartOf"))?
            .render()
    );

    // ---- The paper's query ------------------------------------------------------
    println!("\n== all references to 'Insert' — code AND documentation ==\n");
    let xref = build_xref(&mut ham, MAIN_CONTEXT, Time::CURRENT)?;
    print!("{}", xref.references_to("Insert")?.render());

    println!("\n== the same, joined with each referrer's document attribute ==\n");
    let with_doc =
        xref.references_with_context(&ham, MAIN_CONTEXT, Time::CURRENT, "Insert", &["document"])?;
    print!("{}", with_doc.render());

    // ---- Composition: which documents reference symbols defined in Lists? ------
    println!("\n== documents touching anything Lists defines ==\n");
    // Join defs with refs on `symbol`, keeping documentation referrers.
    let doc_refs = xref
        .refs
        .select_eq("kind", &Value::str("documentation"))?
        .rename("node", "referrer")?;
    let hits = xref.defs.rename("node", "definer")?.join(&doc_refs)?;
    print!("{}", hits.project(&["symbol", "referrer"])?.render());
    Ok(())
}
