//! A CASE project over the HAM (paper §4.2).
//!
//! Parses a small Modula-2 program into hypertext, installs the §5
//! recompile demon, runs the incremental compiler, demonstrates that a
//! body edit recompiles one module while an interface edit cascades to
//! importers, and freezes a release with version-pinned links.
//!
//! Run with: `cargo run --example case_project`

use neptune::case::{checkout, create_release, dirty_sources, model};
use neptune::prelude::*;

const LISTS_DEF: &str = "\
DEFINITION MODULE Lists;
PROCEDURE Insert;
END Insert;
PROCEDURE Length;
END Length;
END Lists.
";

const STORAGE_IMP: &str = "\
IMPLEMENTATION MODULE Storage;
IMPORT Lists;
PROCEDURE Allocate;
  PROCEDURE Grow;
  BEGIN
  END Grow;
BEGIN
END Allocate;
END Storage.
";

const MAIN_MOD: &str = "\
MODULE Editor;
IMPORT Lists, Storage;
PROCEDURE Run;
BEGIN
END Run;
END Editor.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-case-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT)?;
    let project = CaseProject::new(MAIN_CONTEXT);

    // ---- Ingest the program as hypertext -----------------------------------
    let lists = parse_module(LISTS_DEF)?;
    let storage = parse_module(STORAGE_IMP)?;
    let editor = parse_module(MAIN_MOD)?;
    let lists_nodes = project.ingest_module(&mut ham, &lists)?;
    let storage_nodes = project.ingest_module(&mut ham, &storage)?;
    let editor_nodes = project.ingest_module(&mut ham, &editor)?;
    let imports = project.link_imports(
        &mut ham,
        &[
            (&lists, lists_nodes.module),
            (&storage, storage_nodes.module),
            (&editor, editor_nodes.module),
        ],
    )?;
    println!(
        "ingested 3 modules ({} procedure nodes) and {} import links",
        lists_nodes.procedures.len()
            + storage_nodes.procedures.len()
            + editor_nodes.procedures.len(),
        imports
    );

    // ---- Demon-driven compilation -------------------------------------------
    install_recompile_demon(&mut ham, MAIN_CONTEXT)?;
    let dirty_attr = ham.get_attribute_index(MAIN_CONTEXT, model::DIRTY)?;
    for node in [
        lists_nodes.module,
        storage_nodes.module,
        editor_nodes.module,
    ] {
        ham.set_node_attribute_value(MAIN_CONTEXT, node, dirty_attr, Value::Bool(true))?;
    }
    let build = compile_pass(&mut ham, &project)?;
    println!(
        "\ninitial build: compiled {} node(s) in {} round(s)",
        build.compiled.len(),
        build.rounds
    );

    // ---- Body edit: only Storage recompiles -----------------------------------
    edit(
        &mut ham,
        storage_nodes.module,
        b"(* refactor internals *)\n",
    )?;
    println!(
        "\nafter body edit, dirty queue: {:?}",
        dirty_sources(&ham, MAIN_CONTEXT)?
    );
    let pass = compile_pass(&mut ham, &project)?;
    println!("body edit recompiled: {:?}", pass.compiled);

    // ---- Interface edit: importers cascade --------------------------------------
    edit(
        &mut ham,
        lists_nodes.module,
        b"PROCEDURE Reverse;\nEND Reverse;\n",
    )?;
    let pass = compile_pass(&mut ham, &project)?;
    println!(
        "interface edit recompiled {} module(s) over {} round(s): {:?}",
        pass.compiled.len(),
        pass.rounds,
        pass.compiled
    );

    // ---- Configuration management ------------------------------------------------
    let release = create_release(
        &mut ham,
        MAIN_CONTEXT,
        "v1.0",
        &[
            lists_nodes.module,
            storage_nodes.module,
            editor_nodes.module,
        ],
    )?;
    // The program keeps evolving after the release...
    edit(
        &mut ham,
        editor_nodes.module,
        b"(* post-release change *)\n",
    )?;
    compile_pass(&mut ham, &project)?;
    // ...but the release still checks out the frozen versions.
    let members = checkout(&mut ham, MAIN_CONTEXT, release)?;
    println!("\nrelease v1.0 checks out {} member(s):", members.len());
    for m in &members {
        let first_line = String::from_utf8_lossy(&m.contents);
        let first_line = first_line.lines().next().unwrap_or("");
        println!(
            "  node {} @ version {} :: {first_line}",
            m.node.0, m.version.0
        );
        assert!(!String::from_utf8_lossy(&m.contents).contains("post-release"));
    }

    // The demon journal shows every firing with its §5 parameters.
    println!("\ndemon journal: {} firing(s)", ham.demon_journal().len());
    if let Some(last) = ham.demon_journal().last() {
        println!(
            "  last: demon '{}' on {} at {:?} (node {:?})",
            last.demon, last.info.event, last.info.time, last.info.node
        );
    }
    Ok(())
}

/// Append text to a module node through `modifyNode` (which triggers the
/// dirty-marking demon).
fn edit(
    ham: &mut Ham,
    node: neptune::ham::NodeIndex,
    suffix: &[u8],
) -> Result<(), Box<dyn std::error::Error>> {
    let opened = ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])?;
    let mut text = opened.contents.to_vec();
    text.extend_from_slice(suffix);
    ham.modify_node(
        MAIN_CONTEXT,
        node,
        opened.current_time,
        text,
        &opened.link_pts,
    )?;
    Ok(())
}
