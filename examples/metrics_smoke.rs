//! CI smoke test for the observability layer.
//!
//! Starts a server, runs a small scripted workload over the wire, fetches
//! the `Metrics` RPC, and **exits non-zero** if the exposition is empty or
//! any required metric family shows no activity. The snapshot is written to
//! the path named by `NEPTUNE_METRICS_OUT` (default `METRICS_snapshot.prom`)
//! so CI can upload it as an artifact.
//!
//! Run with: `cargo run --example metrics_smoke`

use neptune::prelude::*;

/// Does any series of `family` (with or without labels/suffixes) report a
/// value greater than zero?
fn family_active(exposition: &str, family: &str) -> bool {
    exposition.lines().any(|line| {
        let Some(rest) = line.strip_prefix(family) else {
            return false;
        };
        // Accept `family 3`, `family{...} 3`, `family_count{...} 3` — but
        // not a different family that merely shares the prefix.
        if !rest.starts_with([' ', '{', '_']) {
            return false;
        }
        let Some((_, value)) = line.rsplit_once(' ') else {
            return false;
        };
        value
            .trim()
            .parse::<f64>()
            .map(|v| v > 0.0)
            .unwrap_or(false)
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-metrics-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT)?;
    let server = serve(ham, "127.0.0.1:0")?;
    let mut c = Client::connect(server.addr())?;

    // Scripted workload touching every layer: node/link edits (WAL traffic,
    // transaction commits), a historical read (version cache), a query, and
    // an explicit transaction.
    c.ping()?;
    let (a, t0) = c.add_node(MAIN_CONTEXT, true)?;
    let t1 = c.modify_node(MAIN_CONTEXT, a, t0, b"first draft\n".to_vec(), vec![])?;
    c.modify_node(MAIN_CONTEXT, a, t1, b"second draft\n".to_vec(), vec![])?;
    let (b, _) = c.add_node(MAIN_CONTEXT, true)?;
    c.add_link(MAIN_CONTEXT, LinkPt::current(a, 0), LinkPt::current(b, 0))?;
    for _ in 0..3 {
        c.open_node(MAIN_CONTEXT, a, Time::CURRENT, vec![])?;
    }
    c.open_node(MAIN_CONTEXT, a, t1, vec![])?; // historical: hits (writes warm the cache)
    c.open_node(MAIN_CONTEXT, a, t0, vec![])?; // the initial version is never warm-inserted: a miss
    c.get_graph_query(MAIN_CONTEXT, Time::CURRENT, "true", "true", vec![], vec![])?;
    c.begin_transaction()?;
    c.add_node(MAIN_CONTEXT, true)?;
    c.commit_transaction()?;

    // Deep history: enough versions to cross a 16-version skip boundary, so
    // historical opens exercise the archive's hierarchical temporal index.
    // Opening the (empty) initial version lands on the anchor the eager
    // skip build left behind — an exact index hit.
    let (d, t_first) = c.add_node(MAIN_CONTEXT, true)?;
    let mut td = t_first;
    let mut deep_times = Vec::new();
    for i in 0..24 {
        let contents = format!("deep draft {i}\n").into_bytes();
        td = c.modify_node(MAIN_CONTEXT, d, td, contents, vec![])?;
        deep_times.push(td);
    }
    c.open_node(MAIN_CONTEXT, d, t_first, vec![])?;

    // Cold restart: checkpoint persists the skip ladder, then a fresh Ham
    // (empty version cache, empty anchor cache) serves a mid-history read
    // by descending the *persisted* ladder — which caches a non-empty
    // boundary anchor, so the occupancy gauge is live at scrape time.
    c.checkpoint()?;
    drop(c);
    server.stop();
    let (ham, _, _) = Ham::open_existing(&dir)?;
    let server = serve(ham, "127.0.0.1:0")?;
    let mut c = Client::connect(server.addr())?;
    c.open_node(MAIN_CONTEXT, d, deep_times[2], vec![])?;

    let exposition = c.metrics()?;
    server.stop();

    let out = std::env::var("NEPTUNE_METRICS_OUT")
        .unwrap_or_else(|_| "METRICS_snapshot.prom".to_string());
    std::fs::write(&out, &exposition)?;
    println!("wrote {out} ({} bytes)", exposition.len());

    if exposition.trim().is_empty() {
        eprintln!("FAIL: Metrics RPC returned an empty exposition");
        std::process::exit(1);
    }
    // One required family per layer, plus the layer counters the workload
    // must have moved. The obs families prove the causal tracer ran: every
    // RPC above finalized a trace into the flight recorder.
    let required = [
        "neptune_server_rpc_ns",
        "neptune_ham_op_ns",
        "neptune_storage_op_ns",
        "neptune_ham_txn_commits_total",
        "neptune_storage_vcache_misses_total",
        "neptune_storage_index_hits_total",
        "neptune_storage_index_levels_depth",
        "neptune_storage_index_anchor_bytes",
        "neptune_obs_traces_recorded_total",
        "neptune_obs_trace_ns",
        "neptune_obs_trace_spans_total",
    ];
    let mut failed = false;
    for family in required {
        if family_active(&exposition, family) {
            println!("ok: {family} is active");
        } else {
            eprintln!("FAIL: required family {family} missing or all-zero");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("metrics smoke passed");
    Ok(())
}
