//! Reproduce the paper's Figures 1–3.
//!
//! Builds the Neptune paper itself as a hyperdocument (the same document
//! the original figures browse), then renders the textual analogues of:
//!
//! * Figure 1 — the graph browser's pictorial view,
//! * Figure 2 — the document browser's miller-column panes,
//! * Figure 3 — the node browser with inline link icons,
//! * plus the node-differences browser described alongside them.
//!
//! Run with: `cargo run --example paper_browsers`

use neptune::document::{diffview, view_node, DocumentBrowser, GraphBrowser};
use neptune::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-figures-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT)?;

    // ---- Build the paper as a hyperdocument --------------------------------
    let doc = Document::create(&mut ham, MAIN_CONTEXT, "sigmod-paper", "SIGMOD Paper")?;
    let intro = doc.add_section(
        &mut ham,
        doc.root,
        10,
        "Introduction",
        "Traditional databases have certain weaknesses for CAD...\n",
    )?;
    let hypertext = doc.add_section(
        &mut ham,
        doc.root,
        20,
        "Hypertext",
        "Hypertext in its essence is non-linear text.\n",
    )?;
    doc.add_section(
        &mut ham,
        hypertext,
        1,
        "Existing Systems",
        "memex, NLS/Augment, Xanadu...\n",
    )?;
    doc.add_section(
        &mut ham,
        hypertext,
        2,
        "Properties",
        "editing, traversal, multimedia...\n",
    )?;
    let overview = doc.add_section(
        &mut ham,
        doc.root,
        30,
        "Overview of Neptune",
        "A layered architecture.\n",
    )?;
    doc.add_section(
        &mut ham,
        doc.root,
        40,
        "Hypertext-based CAD",
        "CASE over the HAM.\n",
    )?;
    doc.add_section(
        &mut ham,
        doc.root,
        50,
        "Conclusions",
        "Contexts and demons ahead.\n",
    )?;
    // A cross-reference from the introduction to the overview.
    doc.add_reference(&mut ham, intro, 20, overview)?;
    // An annotation, to give the node browser an inline icon to show.
    neptune::document::annotate(
        &mut ham,
        MAIN_CONTEXT,
        intro,
        12,
        "cite Katz & Lehman here\n",
    )?;

    // ---- Figure 1: the graph browser ---------------------------------------
    println!("============ Figure 1: Graph Browser ============\n");
    let graph_browser = GraphBrowser::with_predicates("document = \"sigmod-paper\"", "true");
    print!(
        "{}",
        graph_browser.render(&ham, MAIN_CONTEXT, Time::CURRENT)?
    );

    // ---- Figure 2: the document browser -------------------------------------
    println!("\n============ Figure 2: Document Browser ============\n");
    let mut outline = DocumentBrowser::new("document = \"sigmod-paper\"");
    // Select the root in pane 1, then "Hypertext" in pane 2 (as the paper's
    // screenshot does).
    let view = outline.view(&mut ham, MAIN_CONTEXT, Time::CURRENT)?;
    let root_idx = view.panes[0]
        .iter()
        .position(|(n, _, _)| *n == doc.root)
        .expect("root in query pane");
    outline.select(0, root_idx);
    outline.select(1, 1); // "Hypertext" is the second child
    print!("{}", outline.render(&mut ham, MAIN_CONTEXT, Time::CURRENT)?);

    // ---- Figure 3: the node browser ------------------------------------------
    println!("\n============ Figure 3: Node Browser ============\n");
    let node_view = view_node(&mut ham, MAIN_CONTEXT, intro, Time::CURRENT)?;
    println!("+-- Node Browser: node {} ----", node_view.node.0);
    for line in node_view.text.lines() {
        println!("| {line}");
    }
    println!("| links: {}", node_view.links.len());
    for l in &node_view.links {
        println!("|   @{} -> node {} ({})", l.offset, l.target.0, l.icon);
    }

    // ---- The node-differences browser ----------------------------------------
    println!("\n============ Node Differences Browser ============\n");
    let opened = ham.open_node(MAIN_CONTEXT, overview, Time::CURRENT, &[])?;
    let old_time = opened.current_time;
    ham.modify_node(
        MAIN_CONTEXT,
        overview,
        old_time,
        b"Overview of Neptune\nA layered architecture: HAM, applications, UI.\n".to_vec(),
        &opened.link_pts,
    )?;
    print!(
        "{}",
        diffview::render(&ham, MAIN_CONTEXT, overview, old_time, Time::CURRENT)?
    );

    // ---- Hardcopy via linearizeGraph ------------------------------------------
    println!("\n============ Hardcopy (linearizeGraph) ============\n");
    print!(
        "{}",
        neptune::document::hardcopy(&mut ham, &doc, Time::CURRENT)?
    );
    Ok(())
}
