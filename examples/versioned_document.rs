//! Version histories and private worlds.
//!
//! Demonstrates the two version-control pillars of the paper: the complete
//! version history ("it is possible to see *any* version of the
//! hyperdocument back to its beginning", §2.2) and the §5 extension of
//! multiple version threads — fork a private context, diverge, and merge
//! the chosen design back.
//!
//! Run with: `cargo run --example versioned_document`

use neptune::ham::context::ConflictPolicy;
use neptune::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-versions-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT)?;

    // ---- Grow a document over "time" ---------------------------------------
    let doc = Document::create(&mut ham, MAIN_CONTEXT, "design", "Design Notes")?;
    let arch = doc.add_section(&mut ham, doc.root, 10, "Architecture", "One big process.\n")?;
    let t_draft = ham.graph(MAIN_CONTEXT)?.now();

    // Revise the architecture section twice.
    for revision in [
        "Architecture\nTwo processes: UI and HAM.\n",
        "Architecture\nUI, application layers, and a transaction-based HAM server.\n",
    ] {
        let opened = ham.open_node(MAIN_CONTEXT, arch, Time::CURRENT, &[])?;
        ham.modify_node(
            MAIN_CONTEXT,
            arch,
            opened.current_time,
            revision.as_bytes().to_vec(),
            &opened.link_pts,
        )?;
    }
    doc.add_section(
        &mut ham,
        doc.root,
        20,
        "Storage",
        "Backward deltas like RCS.\n",
    )?;

    // ---- Time travel ---------------------------------------------------------
    println!("--- hardcopy as of the first draft (time {t_draft:?}) ---\n");
    print!("{}", hardcopy(&mut ham, &doc, t_draft)?);
    println!("--- hardcopy now ---\n");
    print!("{}", hardcopy(&mut ham, &doc, Time::CURRENT)?);

    let (major, minor) = ham.get_node_versions(MAIN_CONTEXT, arch)?;
    println!(
        "architecture node: {} major version(s), {} minor version(s)",
        major.len(),
        minor.len()
    );
    for v in &major {
        println!("  @ {:>3}  {}", v.time.0, v.explanation);
    }

    // ---- A private world (context) --------------------------------------------
    let private = ham.create_context(MAIN_CONTEXT)?;
    println!("\nforked private context {private:?}");

    // Tentative design in the private world.
    let opened = ham.open_node(private, arch, Time::CURRENT, &[])?;
    ham.modify_node(
        private,
        arch,
        opened.current_time,
        b"Architecture\nTentative: move demons into a rules engine?\n".to_vec(),
        &opened.link_pts,
    )?;
    let experiments = doc
        .add_section(&mut ham, doc.root, 30, "Experiments", "")
        .err()
        .map(|_| ());
    let _ = experiments; // documents stay on main; section API targets main ctx

    // Main context is untouched.
    let main_view = ham.open_node(MAIN_CONTEXT, arch, Time::CURRENT, &[])?;
    assert!(!String::from_utf8_lossy(&main_view.contents).contains("Tentative"));
    println!("main context unchanged while the private world diverges");

    // Merge the chosen design back.
    let report = ham.merge_context(private, ConflictPolicy::Fail)?;
    println!(
        "merged: {} node(s) modified, {} added, {} conflict(s)",
        report.nodes_modified.len(),
        report.nodes_added.len(),
        report.conflicts.len()
    );
    let merged = ham.open_node(MAIN_CONTEXT, arch, Time::CURRENT, &[])?;
    println!(
        "main now reads:\n{}",
        String::from_utf8_lossy(&merged.contents)
    );

    // ---- Conflicting worlds ------------------------------------------------------
    let risky = ham.create_context(MAIN_CONTEXT)?;
    let opened = ham.open_node(risky, arch, Time::CURRENT, &[])?;
    ham.modify_node(
        risky,
        arch,
        opened.current_time,
        b"risky edit\n".to_vec(),
        &opened.link_pts,
    )?;
    let opened = ham.open_node(MAIN_CONTEXT, arch, Time::CURRENT, &[])?;
    ham.modify_node(
        MAIN_CONTEXT,
        arch,
        opened.current_time,
        b"Architecture\nmainline edit\n".to_vec(),
        &opened.link_pts,
    )?;
    match ham.merge_context(risky, ConflictPolicy::Fail) {
        Err(e) => println!("\nconflicting merge correctly refused: {e}"),
        Ok(_) => unreachable!("both threads edited the same node"),
    }
    let report = ham.merge_context(risky, ConflictPolicy::PreferParent)?;
    println!(
        "retried with PreferParent: {} conflict(s) resolved",
        report.conflicts.len()
    );
    ham.destroy_context(risky)?;

    // The full history — including everything above — is still addressable.
    let (major, _) = ham.get_node_versions(MAIN_CONTEXT, arch)?;
    println!(
        "\narchitecture node now has {} major versions; the first is still:",
        major.len()
    );
    let first = ham.open_node(MAIN_CONTEXT, arch, major[1].time, &[])?;
    println!("  {}", String::from_utf8_lossy(&first.contents).trim_end());
    Ok(())
}
