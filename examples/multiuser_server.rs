//! Multi-person, distributed access (paper §2.2).
//!
//! Starts the central Neptune server on a loopback socket and drives it
//! with several concurrent clients: joint authorship of one hyperdocument,
//! transaction isolation, and recovery of the server's graph after a
//! restart.
//!
//! Run with: `cargo run --example multiuser_server`

use neptune::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-server-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (ham, project, _) = Ham::create_graph(&dir, Protections::DEFAULT)?;
    let server = serve(ham, "127.0.0.1:0")?;
    println!("Neptune server listening on {}", server.addr());

    // ---- Joint authorship: four clients write simultaneously ---------------
    let addr = server.addr();
    let authors: Vec<_> = ["norm", "mayer", "amy", "raj"]
        .into_iter()
        .map(|author| {
            std::thread::spawn(move || -> Result<usize, String> {
                let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                let owner = c
                    .get_attribute_index(MAIN_CONTEXT, "responsible")
                    .map_err(|e| e.to_string())?;
                let mut created = 0;
                for i in 0..5 {
                    let (node, t) = c.add_node(MAIN_CONTEXT, true).map_err(|e| e.to_string())?;
                    c.modify_node(
                        MAIN_CONTEXT,
                        node,
                        t,
                        format!("section {i} drafted by {author}\n").into_bytes(),
                        vec![],
                    )
                    .map_err(|e| e.to_string())?;
                    c.set_node_attribute_value(MAIN_CONTEXT, node, owner, Value::str(author))
                        .map_err(|e| e.to_string())?;
                    created += 1;
                }
                Ok(created)
            })
        })
        .collect();
    let mut total = 0;
    for a in authors {
        total += a.join().expect("author thread")?;
    }
    println!("{total} sections written by 4 concurrent clients");

    // ---- Per-author queries -----------------------------------------------
    let mut reader = Client::connect(addr)?;
    for author in ["norm", "mayer", "amy", "raj"] {
        let sg = reader.get_graph_query(
            MAIN_CONTEXT,
            Time::CURRENT,
            &format!("responsible = {author}"),
            "true",
            vec![],
            vec![],
        )?;
        println!("  {author}: {} section(s)", sg.nodes.len());
        assert_eq!(sg.nodes.len(), 5);
    }

    // ---- Transaction isolation ----------------------------------------------
    let mut txn_client = Client::connect(addr)?;
    let (shared, t) = txn_client.add_node(MAIN_CONTEXT, true)?;
    txn_client.modify_node(MAIN_CONTEXT, shared, t, b"agreed text\n".to_vec(), vec![])?;

    txn_client.begin_transaction()?;
    let t = txn_client.get_node_time_stamp(MAIN_CONTEXT, shared)?;
    txn_client.modify_node(
        MAIN_CONTEXT,
        shared,
        t,
        b"half-finished rewrite\n".to_vec(),
        vec![],
    )?;
    println!("\nclient A holds an open transaction with an uncommitted edit...");
    txn_client.abort_transaction()?;
    let seen = reader.open_node(MAIN_CONTEXT, shared, Time::CURRENT, vec![])?;
    println!(
        "...after abort, everyone still reads: {:?}",
        String::from_utf8_lossy(&seen.contents).trim_end()
    );

    // ---- Restart: the hyperdocument survives -----------------------------------
    reader.checkpoint()?;
    server.stop();
    println!("\nserver stopped; restarting from the graph directory...");
    let (ham, _) = Ham::open_graph(project, &Machine::local(), &dir)?;
    let server = serve(ham, "127.0.0.1:0")?;
    let mut c = Client::connect(server.addr())?;
    let sg = c.get_graph_query(
        MAIN_CONTEXT,
        Time::CURRENT,
        "exists(responsible)",
        "true",
        vec![],
        vec![],
    )?;
    println!(
        "after restart, {} authored sections are still there",
        sg.nodes.len()
    );
    assert_eq!(sg.nodes.len(), 20);
    server.stop();
    Ok(())
}
