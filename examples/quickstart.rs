//! Quickstart: the HAM in five minutes.
//!
//! Creates a graph, builds a tiny hyperdocument, exercises version
//! history, attributes, predicates, differences, and crash-safe reopening.
//!
//! Run with: `cargo run --example quickstart`

use neptune::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("neptune-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- createGraph -----------------------------------------------------
    let (mut ham, project, created) = Ham::create_graph(&dir, Protections::DEFAULT)?;
    println!(
        "created graph {project:?} at {created:?} in {}",
        dir.display()
    );

    // --- nodes and versions ----------------------------------------------
    let (spec, t0) = ham.add_node(MAIN_CONTEXT, true)?; // archive node
    let t1 = ham.modify_node(
        MAIN_CONTEXT,
        spec,
        t0,
        b"The system SHALL store hypertext.\n".to_vec(),
        &[],
    )?;
    let t2 = ham.modify_node(
        MAIN_CONTEXT,
        spec,
        t1,
        b"The system SHALL store versioned hypertext.\nIt SHALL recover from crashes.\n".to_vec(),
        &[],
    )?;
    println!("\nnode {spec:?} now has versions at {t1:?} and {t2:?}");

    // Any version remains readable — the paper's "complete version history".
    let v1 = ham.open_node(MAIN_CONTEXT, spec, t1, &[])?;
    println!(
        "version @ {t1:?}: {}",
        String::from_utf8_lossy(&v1.contents).trim_end()
    );
    let diffs = ham.get_node_differences(MAIN_CONTEXT, spec, t1, Time::CURRENT)?;
    println!("differences v1 -> current: {} change(s)", diffs.len());
    for d in &diffs {
        println!("  - {}", d.kind_name());
    }

    // --- links and annotations --------------------------------------------
    let note = neptune::document::annotate(
        &mut ham,
        MAIN_CONTEXT,
        spec,
        11,
        "Is SHALL the right word here?\n",
    )?;
    println!("\nannotated {spec:?} at offset 11 -> node {:?}", note.node);

    // --- attributes and queries --------------------------------------------
    let doc = ham.get_attribute_index(MAIN_CONTEXT, "document")?;
    let status = ham.get_attribute_index(MAIN_CONTEXT, "status")?;
    ham.set_node_attribute_value(MAIN_CONTEXT, spec, doc, Value::str("requirements"))?;
    ham.set_node_attribute_value(MAIN_CONTEXT, spec, status, Value::str("draft"))?;

    let pred = Predicate::parse("document = requirements and status = draft")?;
    let hits = ham.get_graph_query(
        MAIN_CONTEXT,
        Time::CURRENT,
        &pred,
        &Predicate::True,
        &[doc],
        &[],
    )?;
    println!("\nquery '{pred}': {} node(s)", hits.nodes.len());

    // --- transactions -------------------------------------------------------
    ham.begin_transaction()?;
    let (doomed, _) = ham.add_node(MAIN_CONTEXT, true)?;
    ham.abort_transaction()?;
    assert!(ham
        .open_node(MAIN_CONTEXT, doomed, Time::CURRENT, &[])
        .is_err());
    println!("\naborted transaction rolled back node {doomed:?} completely");

    // --- durability ----------------------------------------------------------
    drop(ham); // simulate process exit without checkpoint
    let (mut ham, _ctx) = Ham::open_graph(project, &Machine::local(), &dir)?;
    let reopened = ham.open_node(MAIN_CONTEXT, spec, Time::CURRENT, &[])?;
    println!(
        "reopened graph; node {spec:?} current contents intact ({} bytes), history depth {}",
        reopened.contents.len(),
        ham.get_node_versions(MAIN_CONTEXT, spec)?.0.len(),
    );

    Ok(())
}
