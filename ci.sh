#!/bin/sh
# Full local CI: formatting, lints, the tier-1 build+test gate, and the
# strict-invariant instrumentation run. Mirrors .github/workflows/ci.yml.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 gate: release build plus the whole workspace test suite.
cargo build --release
cargo test --workspace

# The commit-path invariant hooks only exist under this feature; run the
# neptune-ham suite with them armed so a violated invariant fails CI.
cargo test -p neptune-ham --features strict-invariants --lib

# Fault-injection sweep, second seed. The workspace run above already
# sweeps every fault kind across every I/O step of a 220-op workload at
# the default seed; this pass rotates the seed with a bounded op count so
# CI covers two workloads per run without doubling the cost. Every
# failure message prints the seed — reproduce any cell locally with:
#   NEPTUNE_FAULT_SEED=<seed> NEPTUNE_FAULT_OPS=<n> \
#       cargo test -p neptune-check --test crash_consistency <test_name>
NEPTUNE_FAULT_SEED=0x5EED5 NEPTUNE_FAULT_OPS=120 \
    cargo test -p neptune-check --test crash_consistency

# Smoke-run the read-scaling bench (cache + zero-copy reads + concurrent
# readers): proves the bench paths work and leaves BENCH_read_scaling.json
# at the repo root. NEPTUNE_BENCH_GUARD arms the regression floors (cache
# speedup >= 10x; 8-vs-1 reader scaling >= 2x on multi-core runners, batch
# amortization >= 1.1x on single-core ones).
NEPTUNE_BENCH_SMOKE=1 NEPTUNE_BENCH_GUARD=1 \
    NEPTUNE_BENCH_OUT="$PWD/BENCH_read_scaling.json" \
    cargo bench -p neptune-bench --bench read_scaling

# Observability smoke: scripted workload over the wire, then a Metrics RPC.
# Exits non-zero if the exposition is empty or a required family never
# moved; leaves METRICS_snapshot.prom at the repo root.
NEPTUNE_METRICS_OUT="$PWD/METRICS_snapshot.prom" \
    cargo run --example metrics_smoke

echo "ci: all green"
