#!/bin/sh
# Full local CI: formatting, lints, the tier-1 build+test gate, and the
# strict-invariant instrumentation run. Mirrors .github/workflows/ci.yml.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Architecture lint: the named invariant rules (vfs-bypass, lock-order,
# panic-path, metric hygiene — DESIGN.md §13) over every crate's source.
# Runs before the test gate so violations fail fast; suppress intentional
# exceptions with `// neptune-lint: allow(rule): reason`.
cargo run -q -p neptune-lint

# Tier-1 gate: release build plus the whole workspace test suite. The
# flight-recorder dump path is exported for the whole gate: any test that
# installs the panic hook (the fault sweep does) writes the last traces to
# TRACE_dump.json on failure, which CI uploads as an artifact.
NEPTUNE_TRACE_DUMP="$PWD/TRACE_dump.json"
export NEPTUNE_TRACE_DUMP
cargo build --release
cargo test --workspace

# The commit-path invariant hooks only exist under this feature; run the
# neptune-ham suite with them armed so a violated invariant fails CI.
cargo test -p neptune-ham --features strict-invariants --lib

# Fault-injection sweep, second seed. The workspace run above already
# sweeps every fault kind across every I/O step of a 220-op workload at
# the default seed; this pass rotates the seed with a bounded op count so
# CI covers two workloads per run without doubling the cost. Every
# failure message prints the seed — reproduce any cell locally with:
#   NEPTUNE_FAULT_SEED=<seed> NEPTUNE_FAULT_OPS=<n> \
#       cargo test -p neptune-check --test crash_consistency <test_name>
NEPTUNE_FAULT_SEED=0x5EED5 NEPTUNE_FAULT_OPS=120 \
    cargo test -p neptune-check --test crash_consistency

# Smoke-run the read-scaling bench (cache + zero-copy reads + concurrent
# readers + lock-free reads under a foreign transaction): proves the bench
# paths work and leaves BENCH_read_scaling.json at the repo root.
# NEPTUNE_BENCH_GUARD arms the regression floors (cache speedup >= 10x;
# 8-vs-1 reader scaling >= min(cores,8)/2 x on multi-core runners — 4x on
# 8 cores now that snapshot reads removed the single-RwLock ceiling —
# batch amortization >= 1.1x on single-core ones; pipelined reads under
# an open foreign transaction >= 0.90x lockstep reads at every reader
# count — the PR 7 floor of 1.0 minus the 5% causal-tracing allowance
# from DESIGN.md §10 and smoke-run jitter, since the bench now runs with
# the tracer on; and traced-vs-untraced cost on the lock-free read path
# <= 1.15x). The measured overhead lands in the JSON under
# "tracing_overhead", alongside two exemplar traces.
NEPTUNE_BENCH_SMOKE=1 NEPTUNE_BENCH_GUARD=1 \
    NEPTUNE_BENCH_OUT="$PWD/BENCH_read_scaling.json" \
    cargo bench -p neptune-bench --bench read_scaling

# Smoke-run the history-depth bench (hierarchical skip ladder over deep
# version histories): leaves BENCH_history_depth.json at the repo root.
# NEPTUNE_BENCH_GUARD arms the sublinear-checkout floors: cold checkout at
# depth 10^5 within 4x of depth 10^3 in both wall time and mean replay
# depth on the same run, absolute mean replay depth at 10^5 <= 150 deltas
# (linear would be ~10^5), the uncached linear baseline >= 10x worse than
# the ladder, and the anchor-cache byte gauge within its per-archive
# budget under the adversarial access stride.
NEPTUNE_BENCH_SMOKE=1 NEPTUNE_BENCH_GUARD=1 \
    NEPTUNE_BENCH_OUT="$PWD/BENCH_history_depth.json" \
    cargo bench -p neptune-bench --bench history_depth

# Smoke-run the write-scaling bench (parallel commits on disjoint shards
# vs the same writers serialized behind one shard lock): leaves
# BENCH_write_scaling.json at the repo root. NEPTUNE_BENCH_GUARD arms the
# sharding floors: 8 disjoint-shard writers >= 2x the single-shard
# aggregate commit throughput on 4+ core runners (1.2x on 2-3 cores; a
# 0.6x no-regression sanity floor on single-core ones, where there is no
# parallelism to win and the guard only checks that per-shard bookkeeping
# costs noise), and neptune_ham_multiview_torn_total must stay 0 — no
# assembled cross-shard view may expose half of a two-phase commit.
NEPTUNE_BENCH_SMOKE=1 NEPTUNE_BENCH_GUARD=1 \
    NEPTUNE_BENCH_OUT="$PWD/BENCH_write_scaling.json" \
    cargo bench -p neptune-bench --bench write_scaling

# Observability smoke: scripted workload over the wire, then a Metrics RPC.
# Exits non-zero if the exposition is empty or a required family never
# moved; leaves METRICS_snapshot.prom at the repo root.
NEPTUNE_METRICS_OUT="$PWD/METRICS_snapshot.prom" \
    cargo run --example metrics_smoke

# Sanitizer passes — nightly-only, so they run as dedicated jobs in
# .github/workflows/ci.yml and are opt-in here (the default toolchain on
# dev machines is stable). NEPTUNE_CI_NIGHTLY=1 requires a nightly with
# the rust-src and miri components installed.
if [ "${NEPTUNE_CI_NIGHTLY:-0}" = "1" ]; then
    # ThreadSanitizer over the server's concurrency-heavy integration
    # tests (gate contention, batch pipelining, metrics under load).
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
        -p neptune-server --test server_integration --test batch_pipeline \
        --test metrics_rpc --test snapshot_reads
    # TSan over the lock-free snapshot-view property tests: concurrent
    # readers on published views racing fork/merge/rollback on the writer,
    # including the multi-shard fork/merge/destroy property test and the
    # 4-writer/4-reader cross-shard torn-view stress.
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
        -p neptune-ham --test snapshot_view
    # Miri over the pure in-memory codec and framing paths (the rest of
    # the suite does real file and socket I/O, which Miri cannot run).
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p neptune-storage --lib -- codec:: varint::
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p neptune-server --lib -- frame:: proto::
fi

echo "ci: all green"
